//! Quantitative shape checks against the paper's Section 5 claims, at
//! a scale that runs in seconds. Absolute numbers differ (our substrate
//! is a reconstruction), but who wins, roughly by how much, and where
//! the crossovers fall must match — these tests pin that.

use sp_core::experiments::{cluster_sweep, rules, Fidelity};
use sp_core::model::config::{Config, GraphType};
use sp_core::model::trials::{run_trials, TrialOptions};

fn fid() -> Fidelity {
    Fidelity {
        trials: 2,
        seed: 0xABCD,
        max_sources: Some(250),
        threads: 0,
    }
}

fn eval(cfg: &Config) -> sp_core::TrialSummary {
    run_trials(
        cfg,
        &TrialOptions {
            trials: 2,
            seed: 0xABCD,
            max_sources: Some(250),
            threads: 0,
        },
    )
}

/// Rule #1 and the Figure 4 knee: aggregate load falls steeply at small
/// clusters, then flattens — the marginal saving per doubling shrinks
/// by an order of magnitude across the sweep.
#[test]
fn fig4_knee_exists() {
    let n = 2000;
    let sizes = [1usize, 4, 16, 64, 256, 1000];
    let sweep = cluster_sweep::run(
        n,
        &sizes,
        &cluster_sweep::paper_systems()[..1], // strong, TTL 1
        None,
        &fid(),
    );
    let agg: Vec<f64> = (0..sizes.len())
        .map(|i| sweep.cell(i, 0).summary.agg_total_bw.mean)
        .collect();
    // Monotone-ish decrease overall…
    assert!(agg[1] < agg[0] && agg[2] < agg[1]);
    // …with early savings dominating late savings (the knee).
    let early_saving = agg[0] - agg[2]; // cluster 1 → 16
    let late_saving = (agg[3] - agg[5]).max(0.0); // cluster 64 → 1000
    assert!(
        early_saving > 4.0 * late_saving,
        "no knee: early {early_saving} vs late {late_saving}"
    );
}

/// The Figure 5 exception: super-peer incoming bandwidth peaks near
/// cluster = N/2 and *drops* at cluster = N (the f(1−f) effect), while
/// outgoing bandwidth keeps rising.
#[test]
fn fig5_single_cluster_incoming_dip() {
    let n = 2000;
    let mk = |cs: usize| Config {
        graph_type: GraphType::StronglyConnected,
        graph_size: n,
        cluster_size: cs,
        ttl: 1,
        ..Config::default()
    };
    let half = eval(&mk(n / 2));
    let full = eval(&mk(n));
    assert!(
        full.sp_in_bw.mean < 0.5 * half.sp_in_bw.mean,
        "no dip: full {} vs half {}",
        full.sp_in_bw.mean,
        half.sp_in_bw.mean
    );
    assert!(
        full.sp_out_bw.mean > half.sp_out_bw.mean,
        "outgoing should keep rising"
    );
}

/// The Figure 6 upturn: for the strongly connected overlay, individual
/// processing load at cluster size 1 exceeds the mid-range minimum
/// (connection overhead dominates).
#[test]
fn fig6_processing_u_shape() {
    let n = 2000;
    let mk = |cs: usize| Config {
        graph_type: GraphType::StronglyConnected,
        graph_size: n,
        cluster_size: cs,
        ttl: 1,
        ..Config::default()
    };
    let tiny = eval(&mk(1));
    let mid = eval(&mk(50));
    let big = eval(&mk(500));
    assert!(
        tiny.sp_proc.mean > 1.5 * mid.sp_proc.mean,
        "no upturn: cs1 {} vs cs50 {}",
        tiny.sp_proc.mean,
        mid.sp_proc.mean
    );
    assert!(big.sp_proc.mean > mid.sp_proc.mean, "right side of the U");
}

/// Rule #2 magnitudes: at the paper's anchor (strong, cluster 100 —
/// scaled down here), redundancy cuts individual partner bandwidth
/// roughly in half while moving aggregate bandwidth by only a few
/// percent; individual processing drops while aggregate processing
/// rises.
#[test]
fn rule2_magnitudes() {
    let d = rules::rule2(2000, 100, &fid());
    let ind_change =
        (d.redundant.sp_total_bw.mean - d.plain.sp_total_bw.mean) / d.plain.sp_total_bw.mean;
    assert!(
        (-0.65..=-0.30).contains(&ind_change),
        "individual bandwidth change {ind_change} (paper ≈ −0.48)"
    );
    // At this reduced scale joins are ~6% of traffic (vs ~1% at the
    // paper's 10 000 peers), so redundancy's doubled join cost shows up
    // more: the paper's +2.5% becomes up to ~+15% here. The headline
    // claim is that aggregate bandwidth moves *a little* while
    // individual load halves.
    let agg_change =
        (d.redundant.agg_total_bw.mean - d.plain.agg_total_bw.mean) / d.plain.agg_total_bw.mean;
    assert!(
        (-0.05..0.20).contains(&agg_change),
        "aggregate bandwidth change {agg_change} (paper ≈ +0.025 at full scale)"
    );
    assert!(
        d.redundant.sp_proc.mean < d.plain.sp_proc.mean,
        "individual processing must drop"
    );
    assert!(
        d.redundant.agg_proc.mean > d.plain.agg_proc.mean,
        "aggregate processing must rise (twice the partners)"
    );
}

/// Rule #3: denser overlays lower aggregate bandwidth and shorten EPL
/// (paper: 31% bandwidth, EPL 5.4 → 3). The paper's Appendix D runs
/// this at cluster size 100 — with smaller clusters per-cluster result
/// payloads are so small that redundant query copies dominate and the
/// dense overlay loses (exactly the Appendix E caveat).
#[test]
fn rule3_magnitudes() {
    let d = rules::rule3(2000, 100, (3.1, 10.0), &fid());
    assert!(
        d.dense.agg_total_bw.mean < d.sparse.agg_total_bw.mean,
        "dense {} !< sparse {}",
        d.dense.agg_total_bw.mean,
        d.sparse.agg_total_bw.mean
    );
    assert!(
        d.sparse.epl.mean - d.dense.epl.mean > 1.0,
        "EPL drop too small: {} → {}",
        d.sparse.epl.mean,
        d.dense.epl.mean
    );
}

/// Rule #4: at full reach, every extra TTL hop costs aggregate
/// bandwidth (paper: 19% for TTL 4 → 3 at outdegree 20).
#[test]
fn rule4_magnitude() {
    // 200 clusters at outdegree 20: TTL 3 already reaches everyone.
    let d = rules::rule4(2000, 10, 20.0, (3, 5), &fid());
    // Same reach…
    assert!(
        (d.tight.reach_clusters.mean - d.loose.reach_clusters.mean).abs()
            < 0.05 * d.loose.reach_clusters.mean
    );
    // …but the loose TTL pays measurably more incoming bandwidth from
    // dropped duplicate queries (paper: 19% at its 1000-cluster scale;
    // the redundant-edge count shrinks with the overlay, so expect a
    // smaller but solid effect at 200 clusters).
    let waste = (d.loose.agg_in_bw.mean - d.tight.agg_in_bw.mean) / d.loose.agg_in_bw.mean;
    assert!(waste > 0.05, "waste only {waste}");
}

/// Appendix C: with queries:joins ≈ 1, redundancy's aggregate cost is
/// visibly larger than at the default rate (joins are duplicated k×).
#[test]
fn appendix_c_redundancy_join_sensitivity() {
    let base = Config {
        graph_type: GraphType::StronglyConnected,
        graph_size: 1500,
        cluster_size: 50,
        ttl: 1,
        ..Config::default()
    };
    let penalty = |query_rate: f64| {
        let mut cfg = base.clone();
        cfg.query_rate = query_rate;
        let plain = eval(&cfg);
        let red = eval(&cfg.clone().with_redundancy(true));
        (red.agg_total_bw.mean - plain.agg_total_bw.mean) / plain.agg_total_bw.mean
    };
    let at_default = penalty(9.26e-3);
    let at_low = penalty(cluster_sweep::LOW_QUERY_RATE);
    assert!(
        at_low > at_default + 0.03,
        "join-heavy penalty {at_low} not above default {at_default}"
    );
}

/// Appendix C (Figure A-14): at the low query rate, individual incoming
/// bandwidth is maximal at cluster = N (joins dominate), reversing the
/// Figure 5 dip.
#[test]
fn fig_a14_peak_moves_to_full_cluster() {
    let n = 1500;
    let mk = |cs: usize, qr: f64| {
        let mut c = Config {
            graph_type: GraphType::StronglyConnected,
            graph_size: n,
            cluster_size: cs,
            ttl: 1,
            ..Config::default()
        };
        c.query_rate = qr;
        c
    };
    let low = cluster_sweep::LOW_QUERY_RATE;
    let half = eval(&mk(n / 2, low));
    let full = eval(&mk(n, low));
    assert!(
        full.sp_in_bw.mean > half.sp_in_bw.mean,
        "A-14: full {} !> half {}",
        full.sp_in_bw.mean,
        half.sp_in_bw.mean
    );
}

/// Appendix E (Figure A-15): once reach saturates at TTL 2, outdegree
/// 2d loses to outdegree d on individual load.
#[test]
fn fig_a15_too_much_outdegree_hurts() {
    let d = rules::fig_a15(1500, &[10, 30], &[25.0, 50.0], &fid());
    for (i, _) in d.cluster_sizes.iter().enumerate() {
        let lo = d.series[0].1[i].sp_out_bw.mean;
        let hi = d.series[1].1[i].sp_out_bw.mean;
        assert!(hi > lo, "cs idx {i}: {hi} !> {lo}");
    }
}
