//! End-to-end integration: the full pipeline a downstream user would
//! run — configure, analyze, design, simulate, render — across every
//! crate in the workspace.

use sp_core::experiments::{
    cluster_sweep, dynamics, epl_table, outdegree_hist, redesign, rules, Fidelity,
};
use sp_core::{Config, DesignConstraints, DesignGoals, Load, NetworkBuilder};

#[test]
fn builder_analyze_design_simulate_pipeline() {
    // 1. Configure and analyze.
    let builder = NetworkBuilder::new()
        .users(1000)
        .cluster_size(10)
        .avg_outdegree(3.1)
        .ttl(5);
    let analytic = builder.evaluate(2, 11);
    assert!(analytic.agg_total_bw.mean > 0.0);
    assert!(analytic.sp_total_bw.mean > analytic.client_total_bw.mean);

    // 2. Design a better topology under explicit constraints.
    let outcome = builder
        .design(
            &DesignGoals {
                num_users: 1000,
                desired_reach_peers: 300,
            },
            &DesignConstraints {
                max_sp_load: Load {
                    in_bw: 150_000.0,
                    out_bw: 150_000.0,
                    proc: 15e6,
                },
                max_connections: 100.0,
                allow_redundancy: true,
            },
        )
        .expect("feasible design");
    let designed = Load {
        in_bw: outcome.evaluation.sp_in_bw.mean,
        out_bw: outcome.evaluation.sp_out_bw.mean,
        proc: outcome.evaluation.sp_proc.mean,
    };
    assert!(designed.fits_within(&Load {
        in_bw: 150_000.0,
        out_bw: 150_000.0,
        proc: 15e6,
    }));

    // 3. Simulate the designed configuration dynamically.
    let report = NetworkBuilder::from_config(outcome.config.clone()).simulate(900.0, 3);
    assert!(report.queries > 50, "simulated {} queries", report.queries);
    assert!(report.results_per_query > 0.0);
}

#[test]
fn config_is_serializable() {
    // Configurations are persisted by downstream tooling; the derives
    // must stay in place. (No serialization format crate is in the
    // approved dependency set, so this is a compile-time contract check
    // plus structural equality.)
    fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
    assert_serde::<Config>();

    let cfg = NetworkBuilder::new()
        .users(1234)
        .cluster_size(7)
        .redundancy(true)
        .config();
    let copy = cfg.clone();
    assert_eq!(copy, cfg);
    assert_eq!(copy.graph_size, 1234);
    assert_eq!(copy.redundancy_k, 2);
}

#[test]
fn every_experiment_runs_and_renders_at_small_scale() {
    let fid = Fidelity::quick();

    let sweep = cluster_sweep::run(
        400,
        &[5, 40],
        &cluster_sweep::paper_systems()[..2],
        None,
        &fid,
    );
    assert!(sweep.render_fig4().contains("Figure 4"));
    assert!(sweep.render_fig5().contains("Figure 5"));
    assert!(sweep.render_fig6().contains("Figure 6"));

    let hist = outdegree_hist::run(400, 20, &[3.1, 10.0], &fid);
    assert!(hist.render_fig7().contains("Figure 7"));
    assert!(hist.render_fig8().contains("Figure 8"));

    let epl = epl_table::run(&[3.1, 10.0], &[20, 50], 300, 8, 1);
    assert!(epl.render_fig9().contains("Figure 9"));
    assert!(epl.render_appendix_f().contains("Appendix F"));

    let r2 = rules::rule2(400, 20, &fid);
    assert!(r2.render().contains("Rule #2"));

    let r4 = rules::rule4(400, 10, 8.0, (3, 5), &fid);
    assert!(r4.render().contains("Rule #4"));

    let rel = dynamics::reliability_experiment(100, 10, 400.0, 900.0, 2);
    assert!(dynamics::render_reliability(&rel).contains("availability"));
}

#[test]
fn redesign_pipeline_small_scale() {
    let data = redesign::run(
        1500,
        400,
        &redesign::paper_constraints(),
        &Fidelity::quick(),
    )
    .expect("feasible");
    assert_eq!(data.topologies.len(), 3);
    assert!(data.render_fig11().contains("Today"));
    assert!(data.render_fig12().contains("Median"));
    // The designed network must beat today's aggregate bandwidth.
    assert!(
        data.topologies[1].summary.agg_total_bw.mean < data.topologies[0].summary.agg_total_bw.mean
    );
}

#[test]
fn deterministic_across_full_pipeline() {
    let run = || {
        NetworkBuilder::new()
            .users(600)
            .cluster_size(10)
            .ttl(4)
            .evaluate(2, 99)
            .agg_total_bw
            .mean
    };
    assert_eq!(run(), run());
}
