//! Cross-validation: the discrete-event simulator and the mean-value
//! analysis implement the same protocol and cost model through
//! completely different code paths, so their steady-state answers must
//! agree. The simulator adds churn (the analysis assumes a stable
//! population) and samples results instead of taking expectations, so
//! agreement is checked within generous-but-meaningful factors.

use sp_core::model::config::Config;
use sp_core::model::population::PopulationModel;
use sp_core::model::trials::{run_trials, TrialOptions};
use sp_core::sim::scenario::steady_state;

/// Long sessions → low churn → the simulator should track the analytic
/// predictions closely.
fn low_churn_config() -> Config {
    Config {
        graph_size: 600,
        cluster_size: 10,
        avg_outdegree: 3.1,
        ttl: 5,
        population: PopulationModel {
            // Sessions far longer than the simulated window: churn off.
            lifespan_mean_secs: 1e7,
            lifespan_sigma: 0.1,
            ..Default::default()
        },
        ..Config::default()
    }
}

#[test]
fn results_per_query_agree() {
    let cfg = low_churn_config();
    let analytic = run_trials(
        &cfg,
        &TrialOptions {
            trials: 2,
            seed: 5,
            max_sources: None,
            threads: 0,
        },
    );
    let sim = steady_state(&cfg, 3600.0, 5);
    assert!(sim.queries > 1000, "only {} queries simulated", sim.queries);
    let ratio = sim.results_per_query / analytic.results.mean;
    assert!(
        (0.6..1.6).contains(&ratio),
        "results: sim {} vs analytic {} (ratio {ratio})",
        sim.results_per_query,
        analytic.results.mean
    );
}

#[test]
fn super_peer_loads_agree() {
    let cfg = low_churn_config();
    let analytic = run_trials(
        &cfg,
        &TrialOptions {
            trials: 2,
            seed: 7,
            max_sources: None,
            threads: 0,
        },
    );
    let sim = steady_state(&cfg, 3600.0, 7);
    for (name, s, a) in [
        ("sp out bw", sim.sp_load.out_bw, analytic.sp_out_bw.mean),
        ("sp in bw", sim.sp_load.in_bw, analytic.sp_in_bw.mean),
        ("sp proc", sim.sp_load.proc, analytic.sp_proc.mean),
    ] {
        let ratio = s / a;
        assert!(
            (0.5..2.0).contains(&ratio),
            "{name}: sim {s} vs analytic {a} (ratio {ratio})"
        );
    }
}

#[test]
fn client_loads_agree() {
    let cfg = low_churn_config();
    let analytic = run_trials(
        &cfg,
        &TrialOptions {
            trials: 2,
            seed: 9,
            max_sources: None,
            threads: 0,
        },
    );
    let sim = steady_state(&cfg, 3600.0, 9);
    let ratio = sim.client_load.in_bw / analytic.client_in_bw.mean;
    assert!(
        (0.5..2.0).contains(&ratio),
        "client in bw: sim {} vs analytic {} (ratio {ratio})",
        sim.client_load.in_bw,
        analytic.client_in_bw.mean
    );
}

#[test]
fn redundancy_effect_agrees_between_engines() {
    // Both engines must show the rule #2 direction: redundancy lowers
    // individual super-peer bandwidth.
    let cfg = low_churn_config();
    let red = cfg.clone().with_redundancy(true);

    let a_plain = run_trials(
        &cfg,
        &TrialOptions {
            trials: 2,
            seed: 3,
            max_sources: None,
            threads: 0,
        },
    );
    let a_red = run_trials(
        &red,
        &TrialOptions {
            trials: 2,
            seed: 3,
            max_sources: None,
            threads: 0,
        },
    );
    assert!(a_red.sp_total_bw.mean < a_plain.sp_total_bw.mean);

    let s_plain = steady_state(&cfg, 2400.0, 4);
    let s_red = steady_state(&red, 2400.0, 4);
    assert!(
        s_red.sp_load.total_bw() < s_plain.sp_load.total_bw(),
        "sim: red {} !< plain {}",
        s_red.sp_load.total_bw(),
        s_plain.sp_load.total_bw()
    );
}
