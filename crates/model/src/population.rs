//! Per-peer population attributes: shared-file counts and session
//! lifespans.
//!
//! The paper assigns each peer "a number of files and a lifespan
//! according to the distribution of files and lifespans measured by
//! [Saroiu et al.] over Gnutella" (Section 4.1, Step 1). That raw
//! measurement data is not distributable, so this module synthesizes
//! the same qualitative population (DESIGN.md §4 records the
//! substitution):
//!
//! * **File counts** — a fraction of peers are *free riders* sharing
//!   nothing (Adar & Huberman found most Gnutella users share few or no
//!   files); the rest draw from a right-skewed log-normal (median ≈ 100
//!   files, heavy tail into the tens of thousands).
//! * **Lifespans** — log-normal session lengths with mean 1080 s,
//!   chosen so that with the Table 1 query rate each user submits
//!   ~10 queries per session, the queries-to-joins ratio Appendix C
//!   quotes for Gnutella.
//!
//! The join rate of a peer is the inverse of its lifespan: "if the size
//! of the network is stable, when a node leaves the network, another
//! node is joining elsewhere" (Section 4.1, Step 3).

use serde::{Deserialize, Serialize};

use sp_stats::dist::Sampler;
use sp_stats::{BoundedPareto, LogNormal, SpRng};

/// The tail model for sharing peers' file counts.
///
/// The paper's shapes should not hinge on the exact tail family of the
/// synthesized measurement data; the ablation experiments swap the
/// default log-normal for a bounded Pareto (the other family consistent
/// with the Saroiu et al. plots) and re-check the rules of thumb.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FileTail {
    /// Log-normal over sharing peers, parameterized by
    /// [`PopulationModel::files_median`] / [`PopulationModel::files_sigma`].
    LogNormal,
    /// Bounded Pareto on `[1, max_files]` with shape `alpha`.
    BoundedPareto {
        /// Tail exponent (smaller = heavier).
        alpha: f64,
        /// Upper truncation (disk-size bound).
        max_files: f64,
    },
}

/// Population model: how file counts and lifespans are assigned.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PopulationModel {
    /// Fraction of peers sharing zero files.
    pub free_rider_fraction: f64,
    /// Median file count among sharing peers (log-normal tail only).
    pub files_median: f64,
    /// Log-space sigma of the file-count law (higher = heavier tail;
    /// log-normal tail only).
    pub files_sigma: f64,
    /// Which tail family sharing peers draw from.
    pub file_tail: FileTail,
    /// Mean session lifespan, seconds.
    pub lifespan_mean_secs: f64,
    /// Log-space sigma of the lifespan law.
    pub lifespan_sigma: f64,
}

impl Default for PopulationModel {
    fn default() -> Self {
        PopulationModel {
            free_rider_fraction: 0.25,
            files_median: 100.0,
            files_sigma: 1.0,
            file_tail: FileTail::LogNormal,
            lifespan_mean_secs: 1080.0,
            lifespan_sigma: 1.0,
        }
    }
}

impl PopulationModel {
    /// Samples one peer's shared-file count.
    pub fn sample_files(&self, rng: &mut SpRng) -> u32 {
        if rng.chance(self.free_rider_fraction) {
            return 0;
        }
        let raw = match self.file_tail {
            FileTail::LogNormal => {
                LogNormal::from_median_sigma(self.files_median, self.files_sigma).sample(rng)
            }
            FileTail::BoundedPareto { alpha, max_files } => {
                BoundedPareto::new(alpha, 1.0, max_files).sample(rng)
            }
        };
        // Round and cap: no peer shares more than a million files.
        raw.round().clamp(0.0, 1e6) as u32
    }

    /// Samples one peer's session lifespan in seconds (floored at one
    /// minute — measurement studies cannot see shorter sessions, and a
    /// zero lifespan would make the join rate blow up).
    pub fn sample_lifespan(&self, rng: &mut SpRng) -> f64 {
        let d = LogNormal::from_mean_sigma(self.lifespan_mean_secs, self.lifespan_sigma);
        d.sample(rng).max(60.0)
    }

    /// Analytic mean file count per peer (free riders included).
    pub fn mean_files(&self) -> f64 {
        let sharing_mean = match self.file_tail {
            FileTail::LogNormal => {
                LogNormal::from_median_sigma(self.files_median, self.files_sigma).mean()
            }
            FileTail::BoundedPareto { alpha, max_files } => {
                BoundedPareto::new(alpha, 1.0, max_files).mean()
            }
        };
        (1.0 - self.free_rider_fraction) * sharing_mean
    }

    /// Expected queries submitted per session at the given query rate —
    /// the paper's queries-to-joins ratio (≈ 10 at the defaults).
    pub fn queries_per_session(&self, query_rate: f64) -> f64 {
        query_rate * self.lifespan_mean_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_stats::OnlineStats;

    #[test]
    fn defaults_give_paper_ratios() {
        let p = PopulationModel::default();
        // ~10 queries per session at the Table 1 query rate.
        let ratio = p.queries_per_session(9.26e-3);
        assert!((ratio - 10.0).abs() < 0.5, "queries/session = {ratio}");
        // Mean files ≈ 0.75 · 100 · e^{0.5} ≈ 124.
        assert!((p.mean_files() - 123.7).abs() < 1.0, "{}", p.mean_files());
    }

    #[test]
    fn free_riders_share_nothing() {
        let p = PopulationModel {
            free_rider_fraction: 1.0,
            ..Default::default()
        };
        let mut rng = SpRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(p.sample_files(&mut rng), 0);
        }
    }

    #[test]
    fn sampled_files_match_analytic_mean() {
        let p = PopulationModel::default();
        let mut rng = SpRng::seed_from_u64(2);
        let mut s = OnlineStats::new();
        for _ in 0..200_000 {
            s.push(p.sample_files(&mut rng) as f64);
        }
        let rel = (s.mean() - p.mean_files()).abs() / p.mean_files();
        assert!(
            rel < 0.03,
            "sample mean {} vs analytic {}",
            s.mean(),
            p.mean_files()
        );
    }

    #[test]
    fn free_rider_fraction_observed() {
        let p = PopulationModel::default();
        let mut rng = SpRng::seed_from_u64(3);
        let zeros = (0..100_000)
            .filter(|_| p.sample_files(&mut rng) == 0)
            .count();
        let frac = zeros as f64 / 100_000.0;
        // Free riders plus the (tiny) mass of log-normal draws < 0.5.
        assert!((frac - 0.25).abs() < 0.02, "zero fraction {frac}");
    }

    #[test]
    fn pareto_tail_is_sampled_and_has_matching_mean() {
        let p = PopulationModel {
            file_tail: FileTail::BoundedPareto {
                alpha: 1.2,
                max_files: 50_000.0,
            },
            ..Default::default()
        };
        let mut rng = SpRng::seed_from_u64(21);
        let mut s = OnlineStats::new();
        for _ in 0..200_000 {
            s.push(p.sample_files(&mut rng) as f64);
        }
        let rel = (s.mean() - p.mean_files()).abs() / p.mean_files();
        assert!(
            rel < 0.05,
            "sample mean {} vs analytic {}",
            s.mean(),
            p.mean_files()
        );
        // Heavy tail: the max sample is far above the mean.
        assert!(s.max() > 20.0 * s.mean());
    }

    #[test]
    fn lifespans_floored_and_skewed() {
        let p = PopulationModel::default();
        let mut rng = SpRng::seed_from_u64(4);
        let mut s = OnlineStats::new();
        for _ in 0..100_000 {
            let l = p.sample_lifespan(&mut rng);
            assert!(l >= 60.0);
            s.push(l);
        }
        let rel = (s.mean() - 1080.0).abs() / 1080.0;
        assert!(rel < 0.05, "lifespan mean {}", s.mean());
        // Median well below mean (right skew).
        assert!(s.mean() > 1.3 * 655.0);
    }
}
