//! Overlay self-healing policy shared by the simulator and the CLI.
//!
//! The paper's Section 5.3 local rules are not only a load-balancing
//! device: the same client-promotion and partner-recruitment moves are
//! what lets a super-peer network *repair itself* after failures. A
//! [`RepairPolicy`] selects how aggressively a simulation run applies
//! them when fault injection kills super-peers:
//!
//! * [`RepairPolicy::Off`] — the degraded baseline: a cluster whose
//!   partners all crash fails outright, its clients are orphaned and
//!   must rediscover the network on their own, and its overlay edges
//!   disappear with it.
//! * [`RepairPolicy::Promote`] — orphaned clients deterministically
//!   elect a replacement super-peer from among themselves (the
//!   highest-capacity eligible client, i.e. most files shared, ties
//!   broken by lowest peer id); the promoted peer inherits the dead
//!   super-peer's neighbor links and re-indexes the adopted clients at
//!   the paper's per-metadata join cost.
//! * [`RepairPolicy::PromotePartner`] — promotion as above, plus the
//!   repaired cluster immediately recruits a replacement partner with
//!   full index mirroring to restore k-redundancy (the Section 3.2
//!   replacement rule applied proactively after repair rather than
//!   waiting for organic recruitment).
//!
//! The policy lives in `sp_model` (not `sp_sim`) for the same reason
//! [`crate::faults::FaultPlan`] does: configuration types stay
//! engine-agnostic and are consumed identically by the fast and
//! reference engines.

use std::fmt;

/// How a simulation run heals clusters whose super-peers were killed
/// by fault injection.
///
/// Repair only ever engages on *injected* crashes (fault-plan events),
/// never on organic churn departures — so with an empty fault plan
/// every policy is behaviorally identical to [`RepairPolicy::Off`] and
/// the run is bitwise inert with respect to the policy choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RepairPolicy {
    /// No repair: failed clusters dissolve and orphans fend for
    /// themselves (the PR-3 behavior).
    #[default]
    Off,
    /// Orphaned clients elect a replacement super-peer which inherits
    /// the dead peer's neighbor links and re-indexes its clients.
    Promote,
    /// Promotion plus immediate recruitment of a replacement partner
    /// (with full index mirroring) to restore k-redundancy.
    PromotePartner,
}

impl RepairPolicy {
    /// Every policy, in severity order (useful for sweeps and tests).
    pub const ALL: [RepairPolicy; 3] = [
        RepairPolicy::Off,
        RepairPolicy::Promote,
        RepairPolicy::PromotePartner,
    ];

    /// Whether dead super-peers are replaced by client promotion.
    pub fn promotes(self) -> bool {
        !matches!(self, RepairPolicy::Off)
    }

    /// Whether a repaired cluster also recruits a replacement partner
    /// to restore k-redundancy.
    pub fn recruits_partner(self) -> bool {
        matches!(self, RepairPolicy::PromotePartner)
    }

    /// Parses the CLI spelling: `off`, `promote`, or `promote+partner`.
    pub fn parse(s: &str) -> Option<RepairPolicy> {
        match s {
            "off" => Some(RepairPolicy::Off),
            "promote" => Some(RepairPolicy::Promote),
            "promote+partner" => Some(RepairPolicy::PromotePartner),
            _ => None,
        }
    }
}

impl fmt::Display for RepairPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RepairPolicy::Off => "off",
            RepairPolicy::Promote => "promote",
            RepairPolicy::PromotePartner => "promote+partner",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_round_trips() {
        for policy in RepairPolicy::ALL {
            assert_eq!(RepairPolicy::parse(&policy.to_string()), Some(policy));
        }
        assert_eq!(RepairPolicy::parse("off"), Some(RepairPolicy::Off));
        assert_eq!(RepairPolicy::parse("promote"), Some(RepairPolicy::Promote));
        assert_eq!(
            RepairPolicy::parse("promote+partner"),
            Some(RepairPolicy::PromotePartner)
        );
        assert_eq!(RepairPolicy::parse("promote_partner"), None);
        assert_eq!(RepairPolicy::parse("Off"), None, "spellings are exact");
        assert_eq!(RepairPolicy::parse(""), None);
    }

    #[test]
    fn default_is_off() {
        assert_eq!(RepairPolicy::default(), RepairPolicy::Off);
    }

    #[test]
    fn capability_flags_match_policies() {
        assert!(!RepairPolicy::Off.promotes());
        assert!(!RepairPolicy::Off.recruits_partner());
        assert!(RepairPolicy::Promote.promotes());
        assert!(!RepairPolicy::Promote.recruits_partner());
        assert!(RepairPolicy::PromotePartner.promotes());
        assert!(RepairPolicy::PromotePartner.recruits_partner());
    }
}
