//! Deterministic overload-control policy for super-peers.
//!
//! The paper sizes super-peers by capacity and Section 5.3's local
//! rules already call a peer above its utilization threshold
//! "overloaded", but the simulation engines process query load through
//! effectively unbounded queues: a flash crowd makes response latency
//! diverge instead of degrading gracefully. This module is the *policy*
//! half of the overload subsystem — a declarative, validated,
//! JSON-round-trippable description of how a super-peer bounds its work
//! queue, budgets admission per client, sheds load, and degrades flood
//! reach under sustained pressure. The *mechanism* half
//! (`sp_sim::overload`) interprets it identically in all three engines.
//!
//! An [`OverloadPolicy::default`] is **empty**: the runtime must treat
//! it as bitwise inert (no draws, no counters, no behavior change).
//! Activation is keyed on `service_rate > 0`.

use crate::config::Config;
use crate::faults::{Parser, Value};

/// What a super-peer does with an arriving query once its bounded work
/// queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedDiscipline {
    /// Refuse the arriving query outright; queued work is untouched.
    #[default]
    RejectAtAdmission,
    /// Shed the oldest queued query to make room for the arrival
    /// (head-of-line drop — bounds queueing delay).
    DropOldest,
    /// Shed the queued query with the lowest remaining TTL — the one
    /// whose flood has the least residual reach — counting the arrival
    /// itself as a candidate (ties go to the oldest).
    DropLowestTtl,
}

impl ShedDiscipline {
    /// Stable JSON name.
    pub fn name(&self) -> &'static str {
        match self {
            ShedDiscipline::RejectAtAdmission => "reject",
            ShedDiscipline::DropOldest => "drop_oldest",
            ShedDiscipline::DropLowestTtl => "drop_lowest_ttl",
        }
    }

    /// Parses a stable JSON name.
    pub fn parse(name: &str) -> Option<ShedDiscipline> {
        match name {
            "reject" => Some(ShedDiscipline::RejectAtAdmission),
            "drop_oldest" => Some(ShedDiscipline::DropOldest),
            "drop_lowest_ttl" => Some(ShedDiscipline::DropLowestTtl),
            _ => None,
        }
    }
}

/// Brownout mode: when a super-peer's backlog stays above the entry
/// threshold, it degrades flood TTL and fanout (trading coverage for
/// survival, the classic TTL/coverage trade-off) until the backlog
/// stays below the exit threshold. Entry and exit both require the
/// condition to hold for `min_dwell_secs` — hysteresis, so the mode
/// cannot flap on a single-sample spike.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrownoutConfig {
    /// Enter brownout once the queue backlog (depth ÷ service rate, in
    /// seconds of work) has exceeded this for `min_dwell_secs`.
    pub enter_backlog_secs: f64,
    /// Leave brownout once the backlog has stayed below this for
    /// `min_dwell_secs`. Must be strictly below `enter_backlog_secs`.
    pub exit_backlog_secs: f64,
    /// Hysteresis dwell: how long the enter/exit condition must hold
    /// continuously before the mode switches.
    pub min_dwell_secs: f64,
    /// How many hops to subtract from the flood TTL while browned out
    /// (floored at 1 — a browned-out query still searches its own
    /// neighborhood).
    pub ttl_decrement: u16,
    /// Maximum neighbors each flood hop forwards to while browned out.
    pub fanout_limit: u32,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        BrownoutConfig {
            enter_backlog_secs: 1.0,
            exit_backlog_secs: 0.25,
            min_dwell_secs: 5.0,
            ttl_decrement: 2,
            fanout_limit: 3,
        }
    }
}

/// A complete overload-control policy for every super-peer in the
/// overlay. `Copy` and all-scalar by design so it can ride inside the
/// engines' `Copy` option structs and serialize field-by-field.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OverloadPolicy {
    /// Responses a super-peer completes per second — the service rate
    /// of its bounded work queue. `0` disables the whole subsystem
    /// (the empty, bitwise-inert policy).
    pub service_rate: f64,
    /// Maximum queued queries per super-peer. `0` means unbounded —
    /// queue depths and latency are *measured* but nothing is ever
    /// shed, which is the uncontrolled baseline the benchmark compares
    /// against.
    pub queue_capacity: u32,
    /// What to do with an arrival once the queue is full.
    pub discipline: ShedDiscipline,
    /// Per-client admission budget: tokens refill at this rate, one
    /// token per admitted query. `0` disables the budget.
    pub client_tokens_per_sec: f64,
    /// Per-client token-bucket ceiling (burst allowance).
    pub client_token_burst: f64,
    /// Brownout mode; `None` never degrades TTL/fanout.
    pub brownout: Option<BrownoutConfig>,
    /// Consecutive full-queue rejections at one super-peer before the
    /// affected client re-homes to a less-loaded cluster (paying the
    /// Table 2 re-join cost). `0` disables re-homing.
    pub rehome_strikes: u32,
}

/// An overload-policy validation or parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverloadError(pub String);

impl std::fmt::Display for OverloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "overload policy: {}", self.0)
    }
}

impl std::error::Error for OverloadError {}

impl OverloadPolicy {
    /// True when the policy is disabled — the runtime must be bitwise
    /// inert under it.
    pub fn is_empty(&self) -> bool {
        self.service_rate == 0.0
    }

    /// A preset sized from the capacity model: the super-peer serves
    /// its own cluster's expected query load with 2× headroom, so
    /// steady-state traffic never queues but a 10× flash crowd
    /// saturates and must shed. The queue holds about two seconds of
    /// work; the brownout and budget knobs use their defaults.
    pub fn sized_for(config: &Config) -> OverloadPolicy {
        let service_rate = 2.0 * config.cluster_size as f64 * config.query_rate;
        let queue_capacity = ((2.0 * service_rate).ceil() as u32).max(4);
        OverloadPolicy {
            service_rate,
            queue_capacity,
            discipline: ShedDiscipline::DropLowestTtl,
            client_tokens_per_sec: 10.0 * config.query_rate,
            client_token_burst: 5.0,
            brownout: Some(BrownoutConfig::default()),
            rehome_strikes: 8,
        }
    }

    /// The measure-only variant of [`sized_for`](Self::sized_for):
    /// same service rate, unbounded queue, no budget, no brownout, no
    /// re-homing — the uncontrolled baseline whose latency diverges
    /// under a flash crowd.
    pub fn uncontrolled_for(config: &Config) -> OverloadPolicy {
        OverloadPolicy {
            service_rate: 2.0 * config.cluster_size as f64 * config.query_rate,
            queue_capacity: 0,
            ..OverloadPolicy::default()
        }
    }

    /// Checks every field for well-formedness.
    pub fn validate(&self) -> Result<(), OverloadError> {
        if self.is_empty() {
            // The empty policy must be *exactly* empty: a disabled
            // subsystem with stray knobs set is almost certainly a
            // config mistake.
            if *self != OverloadPolicy::default() {
                return Err(OverloadError(
                    "service_rate is 0 (disabled) but other fields are set".into(),
                ));
            }
            return Ok(());
        }
        let finite_min = |label: &str, v: f64, min: f64| -> Result<(), OverloadError> {
            if !v.is_finite() || v < min {
                return Err(OverloadError(format!(
                    "{label} must be finite and >= {min}, got {v}"
                )));
            }
            Ok(())
        };
        finite_min("service_rate", self.service_rate, 0.0)?;
        if self.service_rate <= 0.0 {
            return Err(OverloadError("service_rate must be positive".into()));
        }
        finite_min("client_tokens_per_sec", self.client_tokens_per_sec, 0.0)?;
        if self.client_tokens_per_sec > 0.0 {
            finite_min("client_token_burst", self.client_token_burst, 1.0)?;
        } else if self.client_token_burst != 0.0 {
            return Err(OverloadError(
                "client_token_burst set but client_tokens_per_sec is 0".into(),
            ));
        }
        if let Some(b) = &self.brownout {
            finite_min("brownout.enter_backlog_secs", b.enter_backlog_secs, 0.0)?;
            finite_min("brownout.exit_backlog_secs", b.exit_backlog_secs, 0.0)?;
            finite_min("brownout.min_dwell_secs", b.min_dwell_secs, 0.0)?;
            if b.exit_backlog_secs >= b.enter_backlog_secs {
                return Err(OverloadError(format!(
                    "brownout.exit_backlog_secs {} must be below enter_backlog_secs {}",
                    b.exit_backlog_secs, b.enter_backlog_secs
                )));
            }
            if b.fanout_limit == 0 {
                return Err(OverloadError("brownout.fanout_limit must be >= 1".into()));
            }
        }
        Ok(())
    }

    /// Renders the policy as a JSON object that
    /// [`OverloadPolicy::from_json`] reads back verbatim.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push_str("{\n");
        s.push_str(&format!("  \"service_rate\": {},\n", self.service_rate));
        s.push_str(&format!("  \"queue_capacity\": {},\n", self.queue_capacity));
        s.push_str(&format!(
            "  \"discipline\": \"{}\",\n",
            self.discipline.name()
        ));
        s.push_str(&format!(
            "  \"client_tokens_per_sec\": {},\n",
            self.client_tokens_per_sec
        ));
        s.push_str(&format!(
            "  \"client_token_burst\": {},\n",
            self.client_token_burst
        ));
        if let Some(b) = &self.brownout {
            s.push_str("  \"brownout\": {\n");
            s.push_str(&format!(
                "    \"enter_backlog_secs\": {},\n",
                b.enter_backlog_secs
            ));
            s.push_str(&format!(
                "    \"exit_backlog_secs\": {},\n",
                b.exit_backlog_secs
            ));
            s.push_str(&format!("    \"min_dwell_secs\": {},\n", b.min_dwell_secs));
            s.push_str(&format!("    \"ttl_decrement\": {},\n", b.ttl_decrement));
            s.push_str(&format!("    \"fanout_limit\": {}\n", b.fanout_limit));
            s.push_str("  },\n");
        }
        s.push_str(&format!("  \"rehome_strikes\": {}\n", self.rehome_strikes));
        s.push('}');
        s
    }

    /// Parses a policy from a JSON object and validates it. `{}` is the
    /// empty policy.
    pub fn from_json(text: &str) -> Result<OverloadPolicy, OverloadError> {
        let value = Parser::new(text)
            .parse_document()
            .map_err(|e| OverloadError(e.to_string()))?;
        let policy = parse_policy(&value)?;
        policy.validate()?;
        Ok(policy)
    }
}

/// Parses a policy from an already-parsed JSON value (the embedding
/// hook for scenario plans); does **not** validate.
pub fn parse_policy(value: &Value) -> Result<OverloadPolicy, OverloadError> {
    let err = |m: String| OverloadError(m);
    let obj = value
        .as_object("overload")
        .map_err(|e| err(e.to_string()))?;
    let mut policy = OverloadPolicy::default();
    for (key, val) in obj {
        match key.as_str() {
            "service_rate" => {
                policy.service_rate = val
                    .as_f64("overload.service_rate")
                    .map_err(|e| err(e.to_string()))?
            }
            "queue_capacity" => {
                policy.queue_capacity = val
                    .as_u32("overload.queue_capacity")
                    .map_err(|e| err(e.to_string()))?
            }
            "discipline" => {
                let name = val
                    .as_str("overload.discipline")
                    .map_err(|e| err(e.to_string()))?;
                policy.discipline = ShedDiscipline::parse(&name).ok_or_else(|| {
                    err(format!(
                        "unknown discipline \"{name}\" (expected \"reject\", \
                         \"drop_oldest\", or \"drop_lowest_ttl\")"
                    ))
                })?;
            }
            "client_tokens_per_sec" => {
                policy.client_tokens_per_sec = val
                    .as_f64("overload.client_tokens_per_sec")
                    .map_err(|e| err(e.to_string()))?
            }
            "client_token_burst" => {
                policy.client_token_burst = val
                    .as_f64("overload.client_token_burst")
                    .map_err(|e| err(e.to_string()))?
            }
            "brownout" => {
                let bobj = val
                    .as_object("overload.brownout")
                    .map_err(|e| err(e.to_string()))?;
                let mut b = BrownoutConfig::default();
                for (bkey, bval) in bobj {
                    let ctx = format!("overload.brownout.{bkey}");
                    match bkey.as_str() {
                        "enter_backlog_secs" => {
                            b.enter_backlog_secs =
                                bval.as_f64(&ctx).map_err(|e| err(e.to_string()))?
                        }
                        "exit_backlog_secs" => {
                            b.exit_backlog_secs =
                                bval.as_f64(&ctx).map_err(|e| err(e.to_string()))?
                        }
                        "min_dwell_secs" => {
                            b.min_dwell_secs = bval.as_f64(&ctx).map_err(|e| err(e.to_string()))?
                        }
                        "ttl_decrement" => {
                            b.ttl_decrement =
                                bval.as_u32(&ctx).map_err(|e| err(e.to_string()))? as u16
                        }
                        "fanout_limit" => {
                            b.fanout_limit = bval.as_u32(&ctx).map_err(|e| err(e.to_string()))?
                        }
                        other => {
                            return Err(err(format!("unknown brownout key \"{other}\"")));
                        }
                    }
                }
                policy.brownout = Some(b);
            }
            "rehome_strikes" => {
                policy.rehome_strikes = val
                    .as_u32("overload.rehome_strikes")
                    .map_err(|e| err(e.to_string()))?
            }
            other => {
                return Err(err(format!(
                    "unknown key \"{other}\" (expected \"service_rate\", \
                     \"queue_capacity\", \"discipline\", \"client_tokens_per_sec\", \
                     \"client_token_burst\", \"brownout\", or \"rehome_strikes\")"
                )));
            }
        }
    }
    Ok(policy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_empty_and_valid() {
        let p = OverloadPolicy::default();
        assert!(p.is_empty());
        p.validate().expect("empty policy validates");
    }

    #[test]
    fn sized_preset_round_trips() {
        let config = Config::default();
        for p in [
            OverloadPolicy::sized_for(&config),
            OverloadPolicy::uncontrolled_for(&config),
            OverloadPolicy::default(),
        ] {
            p.validate().expect("preset validates");
            let json = p.to_json();
            let back = OverloadPolicy::from_json(&json).expect("round trip parses");
            assert_eq!(p, back, "round trip changed the policy:\n{json}");
        }
    }

    #[test]
    fn preset_has_flash_crowd_headroom() {
        let config = Config::default();
        let p = OverloadPolicy::sized_for(&config);
        let offered = config.cluster_size as f64 * config.query_rate;
        assert!(p.service_rate > offered, "no steady-state headroom");
        assert!(
            p.service_rate < 10.0 * offered,
            "flash crowd cannot saturate"
        );
        assert!(p.queue_capacity >= 4);
    }

    #[test]
    fn empty_object_parses_empty() {
        let p = OverloadPolicy::from_json("{}").expect("empty object");
        assert!(p.is_empty());
    }

    #[test]
    fn stray_fields_on_disabled_policy_rejected() {
        let p = OverloadPolicy {
            queue_capacity: 5,
            ..OverloadPolicy::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn bad_inputs_rejected_by_name() {
        for (json, needle) in [
            ("{\"discipline\": \"lifo\"}", "unknown discipline"),
            ("{\"mystery\": 1}", "unknown key"),
            ("{\"brownout\": {\"zap\": 1}}", "unknown brownout key"),
            (
                "{\"service_rate\": 1.0, \"brownout\": {\"enter_backlog_secs\": 1.0, \
                  \"exit_backlog_secs\": 2.0}}",
                "must be below",
            ),
            (
                "{\"service_rate\": 1.0, \"brownout\": {\"fanout_limit\": 0, \
                  \"enter_backlog_secs\": 1.0, \"exit_backlog_secs\": 0.5}}",
                "fanout_limit",
            ),
            (
                "{\"service_rate\": 1.0, \"client_token_burst\": 2.0}",
                "client_tokens_per_sec is 0",
            ),
        ] {
            let e = OverloadPolicy::from_json(json).expect_err(json);
            assert!(
                e.to_string().contains(needle),
                "error for {json} missing {needle:?}: {e}"
            );
        }
    }
}
