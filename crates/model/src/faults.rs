//! Fault-injection plans shared by the simulator and the CLI.
//!
//! A [`FaultPlan`] is a declarative description of the failures a
//! simulation run should inject — super-peer crashes, message loss and
//! delay, cluster partitions, and flaky k-redundant partners — plus the
//! [`RetryPolicy`] that governs how clients recover from them. The plan
//! lives in `sp_model` (not `sp_sim`) so that configuration types stay
//! engine-agnostic, mirroring how [`crate::config::Config`] is consumed
//! by both the analysis and simulation layers.
//!
//! Plans round-trip through JSON with a hand-rolled parser and
//! serializer: the vendored `serde` stub provides marker traits only,
//! so — like `RunManifest::to_json` and `repro_bench` — everything here
//! renders and reads JSON by hand.

use std::fmt;

/// How clients retry, back off, and fail over when queries or
/// connection attempts are disrupted by injected faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Seconds a client waits for a query response before retrying.
    pub timeout_secs: f64,
    /// Retries after the first attempt (per partner sequence).
    pub max_retries: u32,
    /// Base of the exponential backoff between retries, seconds.
    pub backoff_base_secs: f64,
    /// Multiplier applied to the backoff after each failed attempt.
    pub backoff_factor: f64,
    /// Connection-protocol attempts an orphaned client makes before
    /// giving up for good.
    pub max_rejoin_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout_secs: 5.0,
            max_retries: 2,
            backoff_base_secs: 1.0,
            backoff_factor: 2.0,
            max_rejoin_attempts: 8,
        }
    }
}

/// One fault to inject during a run.
///
/// Times are simulated seconds. Windowed faults are active on
/// `[from_secs, until_secs)`; instantaneous faults fire once at
/// `at_secs`.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSpec {
    /// Crash every partner of one cluster at `at_secs`. The cluster is
    /// chosen by index into the alive-cluster list at injection time
    /// (wrapped modulo its length), so the spec stays valid under
    /// churn.
    CrashCluster {
        /// Injection time, seconds.
        at_secs: f64,
        /// Index into the alive-cluster list at injection time.
        cluster_index: usize,
    },
    /// Crash the partners of a uniformly chosen `fraction` of alive
    /// clusters at `at_secs` (a "crash storm").
    CrashFraction {
        /// Injection time, seconds.
        at_secs: f64,
        /// Fraction of alive clusters to hit, in `[0, 1]`.
        fraction: f64,
    },
    /// Drop each flood/submission transmission with probability
    /// `drop_prob` while the window is active.
    MessageLoss {
        /// Window start, seconds.
        from_secs: f64,
        /// Window end, seconds.
        until_secs: f64,
        /// Per-transmission drop probability, in `[0, 1]`.
        drop_prob: f64,
    },
    /// Delay each surviving transmission with probability `delay_prob`
    /// by `delay_secs` while the window is active. Delays accrue to the
    /// latency accounting; they do not reorder the flood.
    MessageDelay {
        /// Window start, seconds.
        from_secs: f64,
        /// Window end, seconds.
        until_secs: f64,
        /// Per-transmission delay probability, in `[0, 1]`.
        delay_prob: f64,
        /// Added latency per delayed transmission, seconds.
        delay_secs: f64,
    },
    /// Sever all overlay links into and out of the listed clusters for
    /// the window. Indices address the alive-cluster list at window
    /// start.
    Partition {
        /// Window start, seconds.
        from_secs: f64,
        /// Window end, seconds.
        until_secs: f64,
        /// Alive-list indices of the clusters to isolate.
        clusters: Vec<usize>,
    },
    /// While active, each client query submission to a k≥2 virtual
    /// super-peer finds its round-robin partner unresponsive with
    /// probability `flake_prob`, exercising the failover path.
    FlakyPartners {
        /// Window start, seconds.
        from_secs: f64,
        /// Window end, seconds.
        until_secs: f64,
        /// Per-submission flake probability, in `[0, 1]`.
        flake_prob: f64,
    },
}

impl FaultSpec {
    /// Stable lower-snake-case name, used as the JSON `kind` tag and
    /// as the manifest injection-count key.
    pub fn kind_name(&self) -> &'static str {
        match self {
            FaultSpec::CrashCluster { .. } => "crash_cluster",
            FaultSpec::CrashFraction { .. } => "crash_fraction",
            FaultSpec::MessageLoss { .. } => "message_loss",
            FaultSpec::MessageDelay { .. } => "message_delay",
            FaultSpec::Partition { .. } => "partition",
            FaultSpec::FlakyPartners { .. } => "flaky_partners",
        }
    }

    /// When the fault first takes effect, seconds.
    pub fn start_secs(&self) -> f64 {
        match *self {
            FaultSpec::CrashCluster { at_secs, .. } => at_secs,
            FaultSpec::CrashFraction { at_secs, .. } => at_secs,
            FaultSpec::MessageLoss { from_secs, .. } => from_secs,
            FaultSpec::MessageDelay { from_secs, .. } => from_secs,
            FaultSpec::Partition { from_secs, .. } => from_secs,
            FaultSpec::FlakyPartners { from_secs, .. } => from_secs,
        }
    }

    /// When a windowed fault stops; `None` for instantaneous faults.
    pub fn end_secs(&self) -> Option<f64> {
        match *self {
            FaultSpec::CrashCluster { .. } | FaultSpec::CrashFraction { .. } => None,
            FaultSpec::MessageLoss { until_secs, .. } => Some(until_secs),
            FaultSpec::MessageDelay { until_secs, .. } => Some(until_secs),
            FaultSpec::Partition { until_secs, .. } => Some(until_secs),
            FaultSpec::FlakyPartners { until_secs, .. } => Some(until_secs),
        }
    }

    fn validate(&self, index: usize) -> Result<(), FaultPlanError> {
        let err = |msg: String| Err(FaultPlanError(format!("faults[{index}]: {msg}")));
        let check_time = |label: &str, t: f64| -> Result<(), FaultPlanError> {
            if !t.is_finite() || t < 0.0 {
                return Err(FaultPlanError(format!(
                    "faults[{index}]: {label} must be finite and non-negative, got {t}"
                )));
            }
            Ok(())
        };
        let check_prob = |label: &str, p: f64| -> Result<(), FaultPlanError> {
            if !(0.0..=1.0).contains(&p) {
                return Err(FaultPlanError(format!(
                    "faults[{index}]: {label} must lie in [0, 1], got {p}"
                )));
            }
            Ok(())
        };
        check_time("start time", self.start_secs())?;
        if let Some(end) = self.end_secs() {
            check_time("end time", end)?;
            if end <= self.start_secs() {
                return err(format!(
                    "window must end after it starts ({} >= {end})",
                    self.start_secs()
                ));
            }
        }
        match self {
            FaultSpec::CrashCluster { .. } => Ok(()),
            FaultSpec::CrashFraction { fraction, .. } => check_prob("fraction", *fraction),
            FaultSpec::MessageLoss { drop_prob, .. } => check_prob("drop_prob", *drop_prob),
            FaultSpec::MessageDelay {
                delay_prob,
                delay_secs,
                ..
            } => {
                check_prob("delay_prob", *delay_prob)?;
                check_time("delay_secs", *delay_secs)
            }
            FaultSpec::Partition { clusters, .. } => {
                if clusters.is_empty() {
                    err("partition must list at least one cluster".to_string())
                } else {
                    Ok(())
                }
            }
            FaultSpec::FlakyPartners { flake_prob, .. } => check_prob("flake_prob", *flake_prob),
        }
    }

    pub(crate) fn to_json(&self) -> String {
        match self {
            FaultSpec::CrashCluster {
                at_secs,
                cluster_index,
            } => format!(
                "{{\"kind\": \"crash_cluster\", \"at_secs\": {at_secs}, \"cluster_index\": {cluster_index}}}"
            ),
            FaultSpec::CrashFraction { at_secs, fraction } => format!(
                "{{\"kind\": \"crash_fraction\", \"at_secs\": {at_secs}, \"fraction\": {fraction}}}"
            ),
            FaultSpec::MessageLoss {
                from_secs,
                until_secs,
                drop_prob,
            } => format!(
                "{{\"kind\": \"message_loss\", \"from_secs\": {from_secs}, \"until_secs\": {until_secs}, \"drop_prob\": {drop_prob}}}"
            ),
            FaultSpec::MessageDelay {
                from_secs,
                until_secs,
                delay_prob,
                delay_secs,
            } => format!(
                "{{\"kind\": \"message_delay\", \"from_secs\": {from_secs}, \"until_secs\": {until_secs}, \"delay_prob\": {delay_prob}, \"delay_secs\": {delay_secs}}}"
            ),
            FaultSpec::Partition {
                from_secs,
                until_secs,
                clusters,
            } => {
                let list = clusters
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                format!(
                    "{{\"kind\": \"partition\", \"from_secs\": {from_secs}, \"until_secs\": {until_secs}, \"clusters\": [{list}]}}"
                )
            }
            FaultSpec::FlakyPartners {
                from_secs,
                until_secs,
                flake_prob,
            } => format!(
                "{{\"kind\": \"flaky_partners\", \"from_secs\": {from_secs}, \"until_secs\": {until_secs}, \"flake_prob\": {flake_prob}}}"
            ),
        }
    }
}

/// A complete fault-injection plan: the faults to inject plus the
/// client retry policy that applies while they are active.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Faults to inject, in declaration order.
    pub faults: Vec<FaultSpec>,
    /// Client-side recovery semantics.
    pub retry: RetryPolicy,
}

/// Error raised when a plan fails validation or its JSON is malformed.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlanError(pub String);

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for FaultPlanError {}

impl FaultPlan {
    /// Checks every fault and the retry policy for well-formedness.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        for (i, fault) in self.faults.iter().enumerate() {
            fault.validate(i)?;
        }
        let r = &self.retry;
        let check = |label: &str, v: f64, min: f64| -> Result<(), FaultPlanError> {
            if !v.is_finite() || v < min {
                return Err(FaultPlanError(format!(
                    "retry.{label} must be finite and >= {min}, got {v}"
                )));
            }
            Ok(())
        };
        check("timeout_secs", r.timeout_secs, 0.0)?;
        check("backoff_base_secs", r.backoff_base_secs, 0.0)?;
        check("backoff_factor", r.backoff_factor, 1.0)?;
        Ok(())
    }

    /// True when the plan injects nothing (the retry policy alone has
    /// no observable effect without faults to recover from).
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Renders the plan as a JSON document that [`FaultPlan::from_json`]
    /// reads back verbatim.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push_str("{\n  \"retry\": {\n");
        s.push_str(&format!(
            "    \"timeout_secs\": {},\n",
            self.retry.timeout_secs
        ));
        s.push_str(&format!(
            "    \"max_retries\": {},\n",
            self.retry.max_retries
        ));
        s.push_str(&format!(
            "    \"backoff_base_secs\": {},\n",
            self.retry.backoff_base_secs
        ));
        s.push_str(&format!(
            "    \"backoff_factor\": {},\n",
            self.retry.backoff_factor
        ));
        s.push_str(&format!(
            "    \"max_rejoin_attempts\": {}\n",
            self.retry.max_rejoin_attempts
        ));
        s.push_str("  },\n  \"faults\": [\n");
        for (i, fault) in self.faults.iter().enumerate() {
            let sep = if i + 1 < self.faults.len() { "," } else { "" };
            s.push_str(&format!("    {}{sep}\n", fault.to_json()));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parses a plan from JSON and validates it.
    pub fn from_json(text: &str) -> Result<FaultPlan, FaultPlanError> {
        let value = Parser::new(text).parse_document()?;
        let root = value.as_object("plan")?;
        let mut plan = FaultPlan::default();
        for (key, val) in root {
            match key.as_str() {
                "retry" => plan.retry = parse_retry(val)?,
                "faults" => {
                    let items = val.as_array("faults")?;
                    for (i, item) in items.iter().enumerate() {
                        plan.faults.push(parse_fault(item, i)?);
                    }
                }
                other => {
                    return Err(FaultPlanError(format!(
                        "unknown top-level key \"{other}\" (expected \"retry\" or \"faults\")"
                    )))
                }
            }
        }
        plan.validate()?;
        Ok(plan)
    }
}

pub(crate) fn parse_retry(value: &Value) -> Result<RetryPolicy, FaultPlanError> {
    let obj = value.as_object("retry")?;
    let mut retry = RetryPolicy::default();
    for (key, val) in obj {
        match key.as_str() {
            "timeout_secs" => retry.timeout_secs = val.as_f64("retry.timeout_secs")?,
            "max_retries" => retry.max_retries = val.as_u32("retry.max_retries")?,
            "backoff_base_secs" => {
                retry.backoff_base_secs = val.as_f64("retry.backoff_base_secs")?
            }
            "backoff_factor" => retry.backoff_factor = val.as_f64("retry.backoff_factor")?,
            "max_rejoin_attempts" => {
                retry.max_rejoin_attempts = val.as_u32("retry.max_rejoin_attempts")?
            }
            other => return Err(FaultPlanError(format!("unknown retry key \"{other}\""))),
        }
    }
    Ok(retry)
}

pub(crate) fn parse_fault(value: &Value, index: usize) -> Result<FaultSpec, FaultPlanError> {
    let ctx = format!("faults[{index}]");
    let obj = value.as_object(&ctx)?;
    let kind = obj
        .iter()
        .find(|(k, _)| k == "kind")
        .ok_or_else(|| FaultPlanError(format!("{ctx}: missing \"kind\"")))?
        .1
        .as_str(&format!("{ctx}.kind"))?;
    let f64_field = |name: &str| -> Result<f64, FaultPlanError> {
        obj.iter()
            .find(|(k, _)| k == name)
            .ok_or_else(|| FaultPlanError(format!("{ctx}: missing \"{name}\"")))?
            .1
            .as_f64(&format!("{ctx}.{name}"))
    };
    let usize_field =
        |name: &str| -> Result<usize, FaultPlanError> { Ok(f64_field(name)?.max(0.0) as usize) };
    let known = |allowed: &[&str]| -> Result<(), FaultPlanError> {
        for (k, _) in obj {
            if k != "kind" && !allowed.contains(&k.as_str()) {
                return Err(FaultPlanError(format!(
                    "{ctx}: unknown key \"{k}\" for kind \"{kind}\""
                )));
            }
        }
        Ok(())
    };
    match kind.as_str() {
        "crash_cluster" => {
            known(&["at_secs", "cluster_index"])?;
            Ok(FaultSpec::CrashCluster {
                at_secs: f64_field("at_secs")?,
                cluster_index: usize_field("cluster_index")?,
            })
        }
        "crash_fraction" => {
            known(&["at_secs", "fraction"])?;
            Ok(FaultSpec::CrashFraction {
                at_secs: f64_field("at_secs")?,
                fraction: f64_field("fraction")?,
            })
        }
        "message_loss" => {
            known(&["from_secs", "until_secs", "drop_prob"])?;
            Ok(FaultSpec::MessageLoss {
                from_secs: f64_field("from_secs")?,
                until_secs: f64_field("until_secs")?,
                drop_prob: f64_field("drop_prob")?,
            })
        }
        "message_delay" => {
            known(&["from_secs", "until_secs", "delay_prob", "delay_secs"])?;
            Ok(FaultSpec::MessageDelay {
                from_secs: f64_field("from_secs")?,
                until_secs: f64_field("until_secs")?,
                delay_prob: f64_field("delay_prob")?,
                delay_secs: f64_field("delay_secs")?,
            })
        }
        "partition" => {
            known(&["from_secs", "until_secs", "clusters"])?;
            let list = obj
                .iter()
                .find(|(k, _)| k == "clusters")
                .ok_or_else(|| FaultPlanError(format!("{ctx}: missing \"clusters\"")))?
                .1
                .as_array(&format!("{ctx}.clusters"))?;
            let mut clusters = Vec::with_capacity(list.len());
            for (i, item) in list.iter().enumerate() {
                clusters.push(item.as_f64(&format!("{ctx}.clusters[{i}]"))?.max(0.0) as usize);
            }
            Ok(FaultSpec::Partition {
                from_secs: f64_field("from_secs")?,
                until_secs: f64_field("until_secs")?,
                clusters,
            })
        }
        "flaky_partners" => {
            known(&["from_secs", "until_secs", "flake_prob"])?;
            Ok(FaultSpec::FlakyPartners {
                from_secs: f64_field("from_secs")?,
                until_secs: f64_field("until_secs")?,
                flake_prob: f64_field("flake_prob")?,
            })
        }
        other => Err(FaultPlanError(format!(
            "{ctx}: unknown fault kind \"{other}\""
        ))),
    }
}

// ---------------------------------------------------------------------
// Minimal JSON reader. Supports exactly what the workspace's
// hand-rolled documents need: objects, arrays, numbers, strings (no
// escapes beyond \" \\ \/ \n \t \r), booleans, and null. Key order is
// preserved so error messages can reference the document as written.
// Public (alongside [`Parser`]) so sibling crates reading their own
// canonical JSON documents — e.g. the campaign report for
// `spnet campaign --resume` — share one parser instead of regexes.
// ---------------------------------------------------------------------

/// A parsed JSON value (minimal hand-rolled reader; see module docs).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Object as an ordered key/value list (insertion order kept).
    Object(Vec<(String, Value)>),
    /// Array of values.
    Array(Vec<Value>),
    /// Any JSON number, held as `f64`.
    Number(f64),
    /// String literal.
    String(String),
    /// Boolean literal.
    Bool(bool),
    /// `null`.
    Null,
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Object(_) => "object",
            Value::Array(_) => "array",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Bool(_) => "boolean",
            Value::Null => "null",
        }
    }

    /// The value as an object, or a `{ctx}: expected object` error.
    pub fn as_object(&self, ctx: &str) -> Result<&Vec<(String, Value)>, FaultPlanError> {
        match self {
            Value::Object(fields) => Ok(fields),
            other => Err(FaultPlanError(format!(
                "{ctx}: expected object, got {}",
                other.type_name()
            ))),
        }
    }

    /// The value as an array, or a `{ctx}: expected array` error.
    pub fn as_array(&self, ctx: &str) -> Result<&Vec<Value>, FaultPlanError> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(FaultPlanError(format!(
                "{ctx}: expected array, got {}",
                other.type_name()
            ))),
        }
    }

    /// The value as a number, or a `{ctx}: expected number` error.
    pub fn as_f64(&self, ctx: &str) -> Result<f64, FaultPlanError> {
        match self {
            Value::Number(n) => Ok(*n),
            other => Err(FaultPlanError(format!(
                "{ctx}: expected number, got {}",
                other.type_name()
            ))),
        }
    }

    /// The value as a non-negative integer fitting `u32`.
    pub fn as_u32(&self, ctx: &str) -> Result<u32, FaultPlanError> {
        let n = self.as_f64(ctx)?;
        if n < 0.0 || n.fract() != 0.0 || n > u32::MAX as f64 {
            return Err(FaultPlanError(format!(
                "{ctx}: expected a non-negative integer, got {n}"
            )));
        }
        Ok(n as u32)
    }

    /// The value as a string, or a `{ctx}: expected string` error.
    pub fn as_str(&self, ctx: &str) -> Result<String, FaultPlanError> {
        match self {
            Value::String(s) => Ok(s.clone()),
            other => Err(FaultPlanError(format!(
                "{ctx}: expected string, got {}",
                other.type_name()
            ))),
        }
    }
}

/// Minimal JSON parser over a borrowed document (see [`Value`]).
pub struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    /// Creates a parser over `text`.
    pub fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    /// Parses the whole document into one [`Value`]; trailing
    /// characters are an error.
    pub fn parse_document(&mut self) -> Result<Value, FaultPlanError> {
        let value = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after document"));
        }
        Ok(value)
    }

    fn err(&self, msg: &str) -> FaultPlanError {
        FaultPlanError(format!("json parse error at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), FaultPlanError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, FaultPlanError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.err(&format!("unexpected character '{}'", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Value) -> Result<Value, FaultPlanError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected \"{lit}\"")))
        }
    }

    fn parse_object(&mut self) -> Result<Value, FaultPlanError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, FaultPlanError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, FaultPlanError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    let replacement = match escaped {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        other => {
                            return Err(
                                self.err(&format!("unsupported escape '\\{}'", other as char))
                            )
                        }
                    };
                    out.push(replacement);
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8 in string"))?,
                    );
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, FaultPlanError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err(&format!("invalid number \"{text}\"")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> FaultPlan {
        FaultPlan {
            faults: vec![
                FaultSpec::CrashCluster {
                    at_secs: 100.0,
                    cluster_index: 3,
                },
                FaultSpec::CrashFraction {
                    at_secs: 250.0,
                    fraction: 0.25,
                },
                FaultSpec::MessageLoss {
                    from_secs: 50.0,
                    until_secs: 150.0,
                    drop_prob: 0.1,
                },
                FaultSpec::MessageDelay {
                    from_secs: 60.0,
                    until_secs: 140.0,
                    delay_prob: 0.2,
                    delay_secs: 0.5,
                },
                FaultSpec::Partition {
                    from_secs: 120.0,
                    until_secs: 220.0,
                    clusters: vec![0, 4, 9],
                },
                FaultSpec::FlakyPartners {
                    from_secs: 0.0,
                    until_secs: 300.0,
                    flake_prob: 0.3,
                },
            ],
            retry: RetryPolicy {
                timeout_secs: 4.0,
                max_retries: 3,
                backoff_base_secs: 0.5,
                backoff_factor: 2.0,
                max_rejoin_attempts: 6,
            },
        }
    }

    #[test]
    fn round_trips_every_fault_kind() {
        let plan = sample_plan();
        let json = plan.to_json();
        let reloaded = FaultPlan::from_json(&json).expect("round trip");
        assert_eq!(plan, reloaded);
    }

    #[test]
    fn default_plan_is_empty_and_valid() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        plan.validate().expect("default plan valid");
        let reloaded = FaultPlan::from_json(&plan.to_json()).expect("round trip");
        assert_eq!(plan, reloaded);
    }

    #[test]
    fn missing_retry_fields_take_defaults() {
        let plan = FaultPlan::from_json(
            r#"{"faults": [{"kind": "crash_fraction", "at_secs": 10, "fraction": 0.5}]}"#,
        )
        .expect("parse");
        assert_eq!(plan.retry, RetryPolicy::default());
        assert_eq!(plan.faults.len(), 1);
    }

    #[test]
    fn rejects_bad_probability() {
        let plan = FaultPlan {
            faults: vec![FaultSpec::MessageLoss {
                from_secs: 0.0,
                until_secs: 10.0,
                drop_prob: 1.5,
            }],
            ..FaultPlan::default()
        };
        let err = plan.validate().unwrap_err();
        assert!(err.0.contains("drop_prob"), "got: {err}");
    }

    #[test]
    fn rejects_inverted_window() {
        let err = FaultPlan::from_json(
            r#"{"faults": [{"kind": "message_loss", "from_secs": 10, "until_secs": 5, "drop_prob": 0.1}]}"#,
        )
        .unwrap_err();
        assert!(err.0.contains("end after it starts"), "got: {err}");
    }

    #[test]
    fn rejects_unknown_kind_and_keys() {
        let err = FaultPlan::from_json(r#"{"faults": [{"kind": "meteor_strike", "at_secs": 1}]}"#)
            .unwrap_err();
        assert!(err.0.contains("unknown fault kind"), "got: {err}");
        let err = FaultPlan::from_json(
            r#"{"faults": [{"kind": "crash_cluster", "at_secs": 1, "cluster_index": 0, "oops": 1}]}"#,
        )
        .unwrap_err();
        assert!(err.0.contains("unknown key"), "got: {err}");
    }

    #[test]
    fn parse_errors_are_one_line_and_positioned() {
        let err = FaultPlan::from_json("{\"faults\": [").unwrap_err();
        assert!(!err.0.contains('\n'));
        assert!(err.0.contains("byte"), "got: {err}");
    }

    #[test]
    fn empty_partition_rejected() {
        let err = FaultPlan::from_json(
            r#"{"faults": [{"kind": "partition", "from_secs": 0, "until_secs": 5, "clusters": []}]}"#,
        )
        .unwrap_err();
        assert!(err.0.contains("at least one cluster"), "got: {err}");
    }
}
