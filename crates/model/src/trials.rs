//! Repeated trials (Step 4 of the paper's methodology).
//!
//! "We run analysis over several instances of a configuration and
//! average E[M|I] over these trials … We also calculate 95% confidence
//! intervals." Trials are embarrassingly parallel, so they are fanned
//! out over scoped threads; every trial derives its own RNG split, so
//! results are identical regardless of thread count.
//!
//! A trial run owns a **thread budget** ([`TrialOptions::threads`]):
//! trials claim up to `budget` outer workers, and whatever multiple of
//! the budget is left over is handed to each analysis pass as
//! source-level parallelism ([`AnalysisOptions::threads`]). A 5-trial
//! run on 16 cores therefore runs 5 trial workers × 3 source workers
//! instead of leaving 11 cores idle, and never oversubscribes.

use sp_stats::{ConfidenceInterval, GroupedStats, OnlineStats, SpRng};

use crate::analysis::{analyze, AnalysisOptions, InstanceMetrics};
use crate::config::Config;
use crate::instance::NetworkInstance;
use crate::query_model::QueryModel;

/// Options for a trial run.
#[derive(Debug, Clone, Copy)]
pub struct TrialOptions {
    /// Number of instances to generate and analyze.
    pub trials: usize,
    /// Root seed; trial `t` uses the RNG split `seed → t`.
    pub seed: u64,
    /// Per-analysis source sampling (see
    /// [`AnalysisOptions::max_sources`]).
    pub max_sources: Option<usize>,
    /// Total worker-thread budget for this run; 0 = one per available
    /// core. Split between trial-level and source-level parallelism so
    /// `outer × inner ≤ budget`.
    pub threads: usize,
}

impl Default for TrialOptions {
    fn default() -> Self {
        TrialOptions {
            trials: 5,
            seed: 0xC0FFEE,
            max_sources: None,
            threads: 0,
        }
    }
}

/// Mean ± 95% CI for every headline metric, over the trials.
#[derive(Debug, Clone)]
pub struct TrialSummary {
    /// Aggregate incoming bandwidth (bps) over all peers.
    pub agg_in_bw: ConfidenceInterval,
    /// Aggregate outgoing bandwidth (bps).
    pub agg_out_bw: ConfidenceInterval,
    /// Aggregate processing (Hz).
    pub agg_proc: ConfidenceInterval,
    /// Aggregate total (in+out) bandwidth (bps) — the Figure 4 metric.
    pub agg_total_bw: ConfidenceInterval,
    /// Individual super-peer incoming bandwidth (bps) — Figure 5.
    pub sp_in_bw: ConfidenceInterval,
    /// Individual super-peer outgoing bandwidth (bps).
    pub sp_out_bw: ConfidenceInterval,
    /// Individual super-peer processing (Hz) — Figure 6.
    pub sp_proc: ConfidenceInterval,
    /// Individual super-peer total bandwidth (bps).
    pub sp_total_bw: ConfidenceInterval,
    /// Mean client incoming bandwidth (bps).
    pub client_in_bw: ConfidenceInterval,
    /// Mean client outgoing bandwidth (bps).
    pub client_out_bw: ConfidenceInterval,
    /// Mean client processing (Hz).
    pub client_proc: ConfidenceInterval,
    /// Mean client total bandwidth (bps).
    pub client_total_bw: ConfidenceInterval,
    /// Expected results per query — Figure 8 / Figure 11.
    pub results: ConfidenceInterval,
    /// Expected path length of responses — Figure 9 / Figure 11.
    pub epl: ConfidenceInterval,
    /// Mean reached clusters per query.
    pub reach_clusters: ConfidenceInterval,
    /// Partner outgoing bandwidth by outdegree, merged over trials
    /// (Figure 7).
    pub sp_out_bw_by_outdegree: GroupedStats,
    /// Results per query by source outdegree, merged over trials
    /// (Figure 8).
    pub results_by_outdegree: GroupedStats,
    /// Mean realized overlay outdegree.
    pub mean_outdegree: f64,
    /// Mean peers per instance.
    pub mean_peers: f64,
}

/// Per-trial reduction state.
#[derive(Default)]
struct Reduction {
    agg_in: OnlineStats,
    agg_out: OnlineStats,
    agg_proc: OnlineStats,
    agg_total: OnlineStats,
    sp_in: OnlineStats,
    sp_out: OnlineStats,
    sp_proc: OnlineStats,
    sp_total: OnlineStats,
    cl_in: OnlineStats,
    cl_out: OnlineStats,
    cl_proc: OnlineStats,
    cl_total: OnlineStats,
    results: OnlineStats,
    epl: OnlineStats,
    reach: OnlineStats,
    outdeg: OnlineStats,
    peers: OnlineStats,
    by_outdeg_bw: GroupedStats,
    by_outdeg_results: GroupedStats,
}

impl Reduction {
    fn push(&mut self, m: &InstanceMetrics, bw: &GroupedStats, res: &GroupedStats) {
        self.agg_in.push(m.aggregate.in_bw);
        self.agg_out.push(m.aggregate.out_bw);
        self.agg_proc.push(m.aggregate.proc);
        self.agg_total.push(m.aggregate.total_bw());
        self.sp_in.push(m.sp_mean.in_bw);
        self.sp_out.push(m.sp_mean.out_bw);
        self.sp_proc.push(m.sp_mean.proc);
        self.sp_total.push(m.sp_mean.total_bw());
        self.cl_in.push(m.client_mean.in_bw);
        self.cl_out.push(m.client_mean.out_bw);
        self.cl_proc.push(m.client_mean.proc);
        self.cl_total.push(m.client_mean.total_bw());
        self.results.push(m.results_per_query);
        self.epl.push(m.epl);
        self.reach.push(m.mean_reach_clusters);
        self.outdeg.push(m.mean_outdegree);
        self.peers.push(m.num_peers as f64);
        self.by_outdeg_bw.merge(bw);
        self.by_outdeg_results.merge(res);
    }

    fn merge(&mut self, other: &Reduction) {
        self.agg_in.merge(&other.agg_in);
        self.agg_out.merge(&other.agg_out);
        self.agg_proc.merge(&other.agg_proc);
        self.agg_total.merge(&other.agg_total);
        self.sp_in.merge(&other.sp_in);
        self.sp_out.merge(&other.sp_out);
        self.sp_proc.merge(&other.sp_proc);
        self.sp_total.merge(&other.sp_total);
        self.cl_in.merge(&other.cl_in);
        self.cl_out.merge(&other.cl_out);
        self.cl_proc.merge(&other.cl_proc);
        self.cl_total.merge(&other.cl_total);
        self.results.merge(&other.results);
        self.epl.merge(&other.epl);
        self.reach.merge(&other.reach);
        self.outdeg.merge(&other.outdeg);
        self.peers.merge(&other.peers);
        self.by_outdeg_bw.merge(&other.by_outdeg_bw);
        self.by_outdeg_results.merge(&other.by_outdeg_results);
    }

    fn finish(self) -> TrialSummary {
        TrialSummary {
            agg_in_bw: self.agg_in.ci95(),
            agg_out_bw: self.agg_out.ci95(),
            agg_proc: self.agg_proc.ci95(),
            agg_total_bw: self.agg_total.ci95(),
            sp_in_bw: self.sp_in.ci95(),
            sp_out_bw: self.sp_out.ci95(),
            sp_proc: self.sp_proc.ci95(),
            sp_total_bw: self.sp_total.ci95(),
            client_in_bw: self.cl_in.ci95(),
            client_out_bw: self.cl_out.ci95(),
            client_proc: self.cl_proc.ci95(),
            client_total_bw: self.cl_total.ci95(),
            results: self.results.ci95(),
            epl: self.epl.ci95(),
            reach_clusters: self.reach.ci95(),
            sp_out_bw_by_outdegree: self.by_outdeg_bw,
            results_by_outdegree: self.by_outdeg_results,
            mean_outdegree: self.outdeg.mean(),
            mean_peers: self.peers.mean(),
        }
    }
}

/// Resolves a requested thread count into a concrete budget: `0` means
/// one worker per available core, anything else is taken as-is
/// (clamped to at least 1).
///
/// Shared by every trial runner in the workspace (`run_trials` here,
/// `sp_sim::scenario::run_sim_trials`) so "how many threads does
/// `--threads 0` mean" has exactly one answer.
pub fn resolve_thread_budget(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
    .max(1)
}

/// Partitions `items` sequential indices into `shards` contiguous
/// spans, returning `(start, end)` half-open ranges in shard order.
///
/// Earlier shards get the remainder, so span lengths differ by at most
/// one and every index is covered exactly once. Used by the sharded
/// scale simulator to assign contiguous cluster ranges to shards (the
/// "peer-id prefix" partitioning: cluster ids are peer-id prefixes).
/// `shards` is clamped to `[1, items.max(1)]` so no span is empty.
pub fn shard_spans(items: usize, shards: usize) -> Vec<(usize, usize)> {
    let shards = shards.clamp(1, items.max(1));
    let base = items / shards;
    let extra = items % shards;
    let mut spans = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let len = base + usize::from(s < extra);
        spans.push((start, start + len));
        start += len;
    }
    spans
}

/// Splits a thread budget between `jobs` perfectly independent outer
/// workers and per-job inner parallelism, returning `(outer, inner)`.
///
/// Outer workers are claimed first (independent jobs scale best); the
/// leftover multiple of the budget goes to each job's inner loop.
/// `outer × inner` never exceeds the budget, and both are at least 1.
pub fn split_thread_budget(budget: usize, jobs: usize) -> (usize, usize) {
    let budget = budget.max(1);
    let outer = budget.min(jobs.max(1));
    let inner = (budget / outer).max(1);
    (outer, inner)
}

/// Renders a caught panic payload as a message. `panic!` carries a
/// `&'static str` or a formatted `String`; a payload re-thrown through
/// a nested `catch_unwind` (via `std::panic::panic_any` on the caught
/// box) arrives still boxed, so `Box<String>`, `Box<&str>`, and
/// re-boxed `Box<dyn Any>` payloads unwrap recursively instead of
/// collapsing to "non-string panic payload".
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else if let Some(s) = payload.downcast_ref::<Box<String>>() {
        s
    } else if let Some(s) = payload.downcast_ref::<Box<&'static str>>() {
        s
    } else if let Some(inner) = payload.downcast_ref::<Box<dyn std::any::Any + Send>>() {
        panic_message(inner.as_ref())
    } else {
        "non-string panic payload"
    }
}

/// Runs `opts.trials` independent instances of `config` and summarizes.
///
/// # Panics
///
/// Panics if the configuration is invalid or `opts.trials == 0`.
pub fn run_trials(config: &Config, opts: &TrialOptions) -> TrialSummary {
    config.validate().expect("invalid configuration");
    assert!(opts.trials > 0, "need at least one trial");

    let model = QueryModel::from_config(&config.query_model);
    let root = SpRng::seed_from_u64(opts.seed);
    let budget = resolve_thread_budget(opts.threads);
    // Trials claim outer workers first (they are perfectly independent);
    // the remaining budget multiple parallelizes each trial's source
    // loop. outer × inner never exceeds the budget.
    let (outer, inner) = split_thread_budget(budget, opts.trials);

    let run_trial = |t: usize| -> Reduction {
        let mut rng = root.split(t as u64);
        let inst = NetworkInstance::generate(config, &mut rng).expect("validated config");
        let result = analyze(
            &inst,
            &model,
            &AnalysisOptions {
                max_sources: opts.max_sources,
                threads: inner,
                ..AnalysisOptions::default()
            },
            &mut rng,
        );
        let mut red = Reduction::default();
        red.push(
            &result.metrics,
            &result.sp_out_bw_by_outdegree,
            &result.results_by_outdegree,
        );
        red
    };

    if outer == 1 {
        let mut total = Reduction::default();
        for t in 0..opts.trials {
            total.merge(&run_trial(t));
        }
        return total.finish();
    }

    let reductions = std::thread::scope(|scope| {
        let run_trial = &run_trial;
        let handles: Vec<_> = (0..outer)
            .map(|w| {
                scope.spawn(move || -> Result<Reduction, String> {
                    let mut local = Reduction::default();
                    let mut t = w;
                    while t < opts.trials {
                        // Catch per-trial panics so the propagated
                        // message names the failing trial and seed
                        // instead of a bare worker-join failure.
                        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            run_trial(t)
                        })) {
                            Ok(red) => local.merge(&red),
                            Err(payload) => {
                                return Err(format!(
                                    "trial {t} (root seed {:#x}) panicked: {}",
                                    opts.seed,
                                    panic_message(payload.as_ref())
                                ))
                            }
                        }
                        t += outer;
                    }
                    Ok(local)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(Ok(red)) => red,
                Ok(Err(msg)) => panic!("{msg}"),
                Err(payload) => {
                    panic!("trial worker panicked: {}", panic_message(payload.as_ref()))
                }
            })
            .collect::<Vec<_>>()
    });

    let mut total = Reduction::default();
    for r in &reductions {
        total.merge(r);
    }
    total.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GraphType;

    fn tiny() -> Config {
        Config {
            graph_size: 200,
            cluster_size: 10,
            graph_type: GraphType::StronglyConnected,
            ttl: 1,
            ..Config::default()
        }
    }

    #[test]
    fn summary_has_cis_over_trials() {
        let s = run_trials(
            &tiny(),
            &TrialOptions {
                trials: 4,
                seed: 1,
                ..Default::default()
            },
        );
        assert_eq!(s.agg_total_bw.count, 4);
        assert!(s.agg_total_bw.mean > 0.0);
        assert!(s.agg_total_bw.half_width >= 0.0);
        assert!(s.sp_total_bw.mean > s.client_total_bw.mean);
        assert!((s.reach_clusters.mean - 20.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed_and_independent_of_threads() {
        let opts1 = TrialOptions {
            trials: 4,
            seed: 99,
            threads: 1,
            ..Default::default()
        };
        let opts4 = TrialOptions {
            threads: 4,
            ..opts1
        };
        let a = run_trials(&tiny(), &opts1);
        let b = run_trials(&tiny(), &opts4);
        // Means are identical up to merge-order float reassociation.
        let rel = (a.agg_total_bw.mean - b.agg_total_bw.mean).abs() / a.agg_total_bw.mean;
        assert!(rel < 1e-12, "thread count changed results: {rel}");
        assert!((a.results.mean - b.results.mean).abs() < 1e-9);
    }

    #[test]
    fn different_seeds_vary_results() {
        let a = run_trials(
            &tiny(),
            &TrialOptions {
                trials: 2,
                seed: 1,
                ..Default::default()
            },
        );
        let b = run_trials(
            &tiny(),
            &TrialOptions {
                trials: 2,
                seed: 2,
                ..Default::default()
            },
        );
        assert_ne!(a.agg_total_bw.mean, b.agg_total_bw.mean);
    }

    #[test]
    fn thread_budget_cascade_properties() {
        assert!(resolve_thread_budget(0) >= 1);
        assert_eq!(resolve_thread_budget(3), 3);
        // Budget splits: outer×inner ≤ budget, both ≥ 1.
        for budget in 1..=32 {
            for jobs in 0..=10 {
                let (outer, inner) = split_thread_budget(budget, jobs);
                assert!(outer >= 1 && inner >= 1);
                assert!(outer * inner <= budget, "{budget} {jobs}");
                assert!(outer <= jobs.max(1));
            }
        }
        assert_eq!(split_thread_budget(16, 5), (5, 3));
        assert_eq!(split_thread_budget(4, 8), (4, 1));
        assert_eq!(split_thread_budget(0, 4), (1, 1));
    }

    #[test]
    fn shard_spans_cover_contiguously() {
        for items in 0..=40 {
            for shards in 0..=12 {
                let spans = shard_spans(items, shards);
                assert!(!spans.is_empty());
                assert!(spans.len() <= shards.max(1));
                // Contiguous cover of [0, items), no empty span unless
                // items == 0 (then the single span is (0, 0)).
                let mut cursor = 0;
                for &(start, end) in &spans {
                    assert_eq!(start, cursor, "gap at {items}/{shards}");
                    assert!(end >= start);
                    if items > 0 {
                        assert!(end > start, "empty span at {items}/{shards}");
                    }
                    cursor = end;
                }
                assert_eq!(cursor, items);
                // Balanced: lengths differ by at most one.
                let lens: Vec<_> = spans.iter().map(|(s, e)| e - s).collect();
                let min = lens.iter().min().unwrap();
                let max = lens.iter().max().unwrap();
                assert!(max - min <= 1, "unbalanced at {items}/{shards}: {lens:?}");
            }
        }
        assert_eq!(shard_spans(10, 4), vec![(0, 3), (3, 6), (6, 8), (8, 10)]);
        assert_eq!(shard_spans(4, 1), vec![(0, 4)]);
        assert_eq!(shard_spans(2, 8), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn panic_payloads_render_as_strings() {
        assert_eq!(panic_message(&"boom"), "boom");
        assert_eq!(panic_message(&String::from("kaboom")), "kaboom");
        assert_eq!(panic_message(&42i32), "non-string panic payload");
    }

    #[test]
    fn nested_catch_unwind_payloads_unwrap() {
        // A panic caught and re-thrown with panic_any(payload) arrives
        // as Box<Box<dyn Any>>; the renderer must see through it.
        let rethrown = std::panic::catch_unwind(|| {
            let inner = std::panic::catch_unwind(|| panic!("inner failure {}", 7)).unwrap_err();
            std::panic::panic_any(inner);
        })
        .unwrap_err();
        assert_eq!(panic_message(rethrown.as_ref()), "inner failure 7");
        assert_eq!(
            panic_message(&Box::new(String::from("boxed string"))),
            "boxed string"
        );
        assert_eq!(panic_message(&Box::new("boxed str")), "boxed str");
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        run_trials(
            &tiny(),
            &TrialOptions {
                trials: 0,
                ..Default::default()
            },
        );
    }
}
