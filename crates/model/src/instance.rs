//! Network-instance generation (Step 1 of the paper's methodology).
//!
//! A configuration describes a *distribution* over networks; an
//! instance is one draw: `n = GraphSize / ClusterSize` clusters, a
//! topology over them (strongly connected or PLOD power-law), `k`
//! partner peers per virtual super-peer, `C ~ N(c, 0.2c)` clients per
//! cluster, and per-peer file counts and lifespans from the population
//! model.

use serde::{Deserialize, Serialize};

use sp_graph::generate::{plod, PlodConfig};
use sp_graph::traverse::{flood, message_counts, FloodResult, FloodScratch, MessageCounts};
use sp_graph::{Graph, NodeId};
use sp_stats::dist::Sampler;
use sp_stats::{SpRng, TruncatedDiscreteNormal};

use crate::config::{Config, ConfigError};

/// Peer identifier within one instance.
pub type PeerId = u32;

/// A peer's role in the super-peer network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Role {
    /// A partner of cluster `cluster`'s virtual super-peer (the only
    /// partner when `k = 1`).
    Partner {
        /// Cluster index (= overlay graph node).
        cluster: u32,
    },
    /// A client attached to cluster `cluster`.
    Client {
        /// Cluster index (= overlay graph node).
        cluster: u32,
    },
}

impl Role {
    /// The cluster this peer belongs to.
    pub fn cluster(&self) -> u32 {
        match *self {
            Role::Partner { cluster } | Role::Client { cluster } => cluster,
        }
    }

    /// Whether the peer is a super-peer partner.
    pub fn is_partner(&self) -> bool {
        matches!(self, Role::Partner { .. })
    }
}

/// One peer of an instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Peer {
    /// Role and cluster membership.
    pub role: Role,
    /// Number of shared files.
    pub files: u32,
    /// Session lifespan, seconds (join rate = 1 / lifespan).
    pub lifespan_secs: f64,
}

/// One cluster: a virtual super-peer (k partners) plus its clients.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cluster {
    /// The partner peers (length = `redundancy_k`).
    pub partners: Vec<PeerId>,
    /// The client peers.
    pub clients: Vec<PeerId>,
}

impl Cluster {
    /// Cluster size in the paper's sense: clients + partners.
    pub fn size(&self) -> usize {
        self.partners.len() + self.clients.len()
    }
}

/// The overlay topology over clusters.
///
/// The strongly connected case is kept symbolic: materializing `K_n`
/// for `n = 10 000` clusters would need Θ(n²) memory, and every
/// BFS-derived quantity has a closed form.
#[derive(Debug, Clone, PartialEq)]
pub enum Topology {
    /// Every cluster neighbors every other.
    Complete {
        /// Number of clusters.
        n: usize,
    },
    /// An explicit overlay graph (power-law in the paper).
    Explicit(Graph),
}

impl Topology {
    /// Number of overlay nodes (clusters).
    pub fn num_nodes(&self) -> usize {
        match self {
            Topology::Complete { n } => *n,
            Topology::Explicit(g) => g.num_nodes(),
        }
    }

    /// Outdegree of cluster `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        match self {
            Topology::Complete { n } => n.saturating_sub(1),
            Topology::Explicit(g) => g.degree(v),
        }
    }

    /// Mean outdegree.
    pub fn mean_degree(&self) -> f64 {
        match self {
            Topology::Complete { n } => n.saturating_sub(1) as f64,
            Topology::Explicit(g) => g.mean_degree(),
        }
    }

    /// Floods a query from `src` with `ttl`, returning the BFS result
    /// and the per-cluster query-transmission counts (including
    /// redundant copies).
    ///
    /// Allocates three n-sized vectors per call; the analysis hot loop
    /// uses [`Topology::flood_into`] instead.
    pub fn flood(&self, src: NodeId, ttl: u16) -> (FloodResult, MessageCounts) {
        match self {
            Topology::Explicit(g) => {
                let f = flood(g, src, ttl);
                let mc = message_counts(g, &f);
                (f, mc)
            }
            Topology::Complete { n } => flood_complete(*n, src, ttl),
        }
    }

    /// Allocation-free variant of [`Topology::flood`]: floods into a
    /// reusable [`FloodScratch`] (closed form for the symbolic complete
    /// topology). Produces exactly the same depths, parents, and
    /// message counts.
    pub fn flood_into(&self, scratch: &mut FloodScratch, src: NodeId, ttl: u16) {
        match self {
            Topology::Explicit(g) => scratch.flood(g, src, ttl),
            Topology::Complete { n } => scratch.flood_complete(*n, src, ttl),
        }
    }
}

/// Closed-form flood over `K_n`: every non-source node is at depth 1.
/// With `ttl >= 2`, every depth-1 node forwards to its `n − 2`
/// non-source neighbors and all of those copies are redundant.
fn flood_complete(n: usize, src: NodeId, ttl: u16) -> (FloodResult, MessageCounts) {
    assert!((src as usize) < n, "source {src} out of range");
    let mut depth = vec![sp_graph::traverse::UNREACHED; n];
    let mut parent: Vec<NodeId> = (0..n as NodeId).collect();
    let mut order = Vec::with_capacity(if ttl == 0 { 1 } else { n });
    depth[src as usize] = 0;
    order.push(src);
    let mut sent = vec![0u32; n];
    let mut recv = vec![0u32; n];
    if ttl >= 1 && n > 1 {
        for v in 0..n as NodeId {
            if v == src {
                continue;
            }
            depth[v as usize] = 1;
            parent[v as usize] = src;
            order.push(v);
        }
        sent[src as usize] = (n - 1) as u32;
        let echo = if ttl >= 2 { (n - 2) as u32 } else { 0 };
        for v in 0..n {
            if v as NodeId == src {
                continue;
            }
            recv[v] = 1 + echo;
            sent[v] = echo;
        }
    }
    (
        FloodResult {
            source: src,
            ttl,
            order,
            depth,
            parent,
        },
        MessageCounts { sent, recv },
    )
}

/// One generated network instance.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkInstance {
    /// The configuration the instance was drawn from.
    pub config: Config,
    /// The cluster overlay.
    pub topology: Topology,
    /// All clusters; cluster `i` sits at overlay node `i`.
    pub clusters: Vec<Cluster>,
    /// All peers.
    pub peers: Vec<Peer>,
}

impl NetworkInstance {
    /// Generates an instance of `config` using `rng`.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the configuration is invalid.
    pub fn generate(config: &Config, rng: &mut SpRng) -> Result<Self, ConfigError> {
        config.validate()?;
        let n = config.num_clusters();
        let k = config.redundancy_k;

        let topology = match config.graph_type {
            crate::config::GraphType::StronglyConnected => Topology::Complete { n },
            _ if n == 1 => Topology::Complete { n: 1 },
            family => {
                let mean = config.avg_outdegree.min((n - 1) as f64).max(1.0);
                let graph = match family {
                    crate::config::GraphType::PowerLaw => plod(n, PlodConfig::with_mean(mean), rng),
                    crate::config::GraphType::ErdosRenyi => {
                        sp_graph::generate::erdos_renyi(n, mean, rng)
                    }
                    crate::config::GraphType::RandomRegular => {
                        sp_graph::generate::random_regular(n, mean.round() as usize, rng)
                    }
                    crate::config::GraphType::StronglyConnected => unreachable!("handled above"),
                };
                Topology::Explicit(graph)
            }
        };

        let mean_clients = config.mean_clients();
        let client_dist =
            (mean_clients > 0.0).then(|| TruncatedDiscreteNormal::cluster_size(mean_clients));

        let mut peers = Vec::with_capacity(config.graph_size + n * k);
        let mut clusters = Vec::with_capacity(n);
        for cluster_idx in 0..n as u32 {
            fn sample_peer(
                role: Role,
                peers: &mut Vec<Peer>,
                pop: &crate::population::PopulationModel,
                rng: &mut SpRng,
            ) -> PeerId {
                let id = peers.len() as PeerId;
                peers.push(Peer {
                    role,
                    files: pop.sample_files(rng),
                    lifespan_secs: pop.sample_lifespan(rng),
                });
                id
            }
            let partners: Vec<PeerId> = (0..k)
                .map(|_| {
                    sample_peer(
                        Role::Partner {
                            cluster: cluster_idx,
                        },
                        &mut peers,
                        &config.population,
                        rng,
                    )
                })
                .collect();
            let num_clients = client_dist
                .as_ref()
                .map(|d| d.sample(rng) as usize)
                .unwrap_or(0);
            let clients: Vec<PeerId> = (0..num_clients)
                .map(|_| {
                    sample_peer(
                        Role::Client {
                            cluster: cluster_idx,
                        },
                        &mut peers,
                        &config.population,
                        rng,
                    )
                })
                .collect();
            clusters.push(Cluster { partners, clients });
        }

        Ok(NetworkInstance {
            config: config.clone(),
            topology,
            clusters,
            peers,
        })
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Total number of peers (partners + clients).
    pub fn num_peers(&self) -> usize {
        self.peers.len()
    }

    /// Total files indexed by cluster `i`'s virtual super-peer: the
    /// clients' collections plus every partner's own collection.
    pub fn cluster_files(&self, i: usize) -> u64 {
        let c = &self.clusters[i];
        c.partners
            .iter()
            .chain(c.clients.iter())
            .map(|&p| self.peers[p as usize].files as u64)
            .sum()
    }

    /// Iterator over the file counts of cluster `i`'s member
    /// collections (partners first, then clients) — the `x_i` of
    /// Equation (6).
    pub fn cluster_member_files(&self, i: usize) -> impl Iterator<Item = u32> + '_ {
        let c = &self.clusters[i];
        c.partners
            .iter()
            .chain(c.clients.iter())
            .map(move |&p| self.peers[p as usize].files)
    }

    /// Open connections of a peer.
    ///
    /// * client: one connection per partner (`k`);
    /// * partner of cluster `i`: its clients, plus `k` connections per
    ///   neighboring cluster (every partner connects to every partner
    ///   of every neighbor — this is the k² connection growth of
    ///   Section 3.2), plus its `k − 1` co-partners.
    pub fn connections(&self, peer: PeerId) -> f64 {
        let k = self.config.redundancy_k as f64;
        match self.peers[peer as usize].role {
            Role::Client { .. } => k,
            Role::Partner { cluster } => {
                let c = &self.clusters[cluster as usize];
                let deg = self.topology.degree(cluster) as f64;
                c.clients.len() as f64 + k * deg + (k - 1.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GraphType;

    fn small_config() -> Config {
        Config {
            graph_size: 200,
            cluster_size: 10,
            ..Config::default()
        }
    }

    #[test]
    fn instance_has_expected_structure() {
        let cfg = small_config();
        let mut rng = SpRng::seed_from_u64(1);
        let inst = NetworkInstance::generate(&cfg, &mut rng).unwrap();
        assert_eq!(inst.num_clusters(), 20);
        for c in &inst.clusters {
            assert_eq!(c.partners.len(), 1);
        }
        // Total peers ≈ graph_size (clients are N(9, 1.8) per cluster
        // plus one partner each).
        let total = inst.num_peers();
        assert!((150..=250).contains(&total), "total peers {total}");
        // Roles point back at their clusters.
        for (i, c) in inst.clusters.iter().enumerate() {
            for &p in c.partners.iter().chain(c.clients.iter()) {
                assert_eq!(inst.peers[p as usize].role.cluster() as usize, i);
            }
        }
    }

    #[test]
    fn redundancy_creates_two_partners() {
        let cfg = small_config().with_redundancy(true);
        let mut rng = SpRng::seed_from_u64(2);
        let inst = NetworkInstance::generate(&cfg, &mut rng).unwrap();
        for c in &inst.clusters {
            assert_eq!(c.partners.len(), 2);
            assert!(inst.peers[c.partners[0] as usize].role.is_partner());
        }
    }

    #[test]
    fn pure_network_has_no_clients() {
        let cfg = Config {
            graph_size: 50,
            cluster_size: 1,
            ..Config::default()
        };
        let mut rng = SpRng::seed_from_u64(3);
        let inst = NetworkInstance::generate(&cfg, &mut rng).unwrap();
        assert_eq!(inst.num_clusters(), 50);
        assert_eq!(inst.num_peers(), 50);
        assert!(inst.clusters.iter().all(|c| c.clients.is_empty()));
    }

    #[test]
    fn strongly_connected_topology_is_symbolic() {
        let cfg = Config {
            graph_type: GraphType::StronglyConnected,
            graph_size: 100,
            cluster_size: 10,
            ..Config::default()
        };
        let mut rng = SpRng::seed_from_u64(4);
        let inst = NetworkInstance::generate(&cfg, &mut rng).unwrap();
        assert!(matches!(inst.topology, Topology::Complete { n: 10 }));
        assert_eq!(inst.topology.degree(0), 9);
        assert_eq!(inst.topology.mean_degree(), 9.0);
    }

    #[test]
    fn cluster_files_sums_members() {
        let cfg = small_config();
        let mut rng = SpRng::seed_from_u64(5);
        let inst = NetworkInstance::generate(&cfg, &mut rng).unwrap();
        for i in 0..inst.num_clusters() {
            let direct: u64 = inst.cluster_member_files(i).map(u64::from).sum();
            assert_eq!(direct, inst.cluster_files(i));
        }
    }

    #[test]
    fn connections_count_roles() {
        let cfg = small_config().with_redundancy(true);
        let mut rng = SpRng::seed_from_u64(6);
        let inst = NetworkInstance::generate(&cfg, &mut rng).unwrap();
        let c0 = &inst.clusters[0];
        let client_conns = inst.connections(c0.clients[0]);
        assert_eq!(client_conns, 2.0);
        let p = c0.partners[0];
        let deg = inst.topology.degree(0) as f64;
        let expect = c0.clients.len() as f64 + 2.0 * deg + 1.0;
        assert_eq!(inst.connections(p), expect);
    }

    #[test]
    fn flood_complete_matches_explicit_k5() {
        use sp_graph::generate::complete;
        let g = complete(5);
        for ttl in 0u16..4 {
            let (fc, mc_c) = flood_complete(5, 2, ttl);
            let fe = flood(&g, 2, ttl);
            let mc_e = message_counts(&g, &fe);
            assert_eq!(fc.reach(), fe.reach(), "ttl {ttl}");
            assert_eq!(mc_c.sent, mc_e.sent, "ttl {ttl}");
            assert_eq!(mc_c.recv, mc_e.recv, "ttl {ttl}");
            for v in 0..5u32 {
                assert_eq!(fc.depth[v as usize], fe.depth[v as usize]);
            }
        }
    }

    #[test]
    fn flood_complete_single_node() {
        let (f, mc) = flood_complete(1, 0, 7);
        assert_eq!(f.reach(), 1);
        assert_eq!(mc.sent, vec![0]);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = small_config();
        let a = NetworkInstance::generate(&cfg, &mut SpRng::seed_from_u64(9)).unwrap();
        let b = NetworkInstance::generate(&cfg, &mut SpRng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let cfg = Config {
            graph_size: 0,
            ..Config::default()
        };
        let mut rng = SpRng::seed_from_u64(0);
        assert!(NetworkInstance::generate(&cfg, &mut rng).is_err());
    }
}
