//! Versioned binary snapshot format for deterministic checkpoint /
//! restore.
//!
//! A snapshot captures *full* engine state at a tick boundary — event
//! queues, per-peer counters, RNG stream positions, fault / repair /
//! scenario state — so that restoring at time T and running to the end
//! is **bitwise identical** to the uninterrupted run. The format is a
//! hand-rolled length-prefixed binary container (the workspace has no
//! serialization dependency, and floats must round-trip bit-exactly,
//! which text formats make easy to get wrong):
//!
//! ```text
//! [magic "SPSN"][version u32][engine u8][payload_len u64]
//! [payload bytes…][fnv1a-64 of payload]
//! ```
//!
//! * All integers are little-endian; `f64` travels as `to_bits()`.
//! * `version` is the schema version: a reader rejects any snapshot
//!   whose version it does not understand with a named error rather
//!   than misinterpreting the payload.
//! * `engine` names the producing engine (fast / reference / scale) so
//!   a restore cannot feed one engine's state into another.
//! * The trailing FNV-1a fingerprint detects corruption and
//!   truncation before any field is decoded.
//!
//! Engines own their payload layout; this module owns the container,
//! the primitive encodings ([`SnapWriter`] / [`SnapReader`]), and the
//! error taxonomy ([`SnapshotError`]).

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"SPSN";

/// Current snapshot schema version. Bump on any payload layout change;
/// readers reject snapshots from other versions by name. Version 2
/// added the overload-control policy and runtime state.
pub const SNAPSHOT_VERSION: u32 = 2;

/// Engine tag: the fast churn engine (`sp_sim::engine::Simulation`).
pub const ENGINE_FAST: u8 = 1;
/// Engine tag: the reference churn engine
/// (`sp_sim::reference::ReferenceSimulation`).
pub const ENGINE_REFERENCE: u8 = 2;
/// Engine tag: the sharded scale engine
/// (`sp_sim::shard::ShardedSimulation`).
pub const ENGINE_SCALE: u8 = 3;

/// FNV-1a 64-bit offset basis (shared with the campaign fingerprint).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a hash of a byte slice — the snapshot integrity fingerprint.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Why a snapshot could not be read. Every variant names the problem
/// precisely so an operator can tell a stale file from a damaged one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The data ends before the container (or a payload field) does.
    Truncated {
        /// What the reader was decoding when the bytes ran out.
        context: &'static str,
    },
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The snapshot was written by a schema version this reader does
    /// not understand.
    UnsupportedVersion {
        /// Version recorded in the snapshot header.
        found: u32,
        /// Version this reader supports.
        supported: u32,
    },
    /// The snapshot was produced by a different engine than the one
    /// restoring it.
    WrongEngine {
        /// Engine tag recorded in the header.
        found: u8,
        /// Engine tag the caller expected.
        expected: u8,
    },
    /// The payload fingerprint does not match: corruption.
    Corrupt {
        /// Fingerprint recorded in the snapshot trailer.
        recorded: u64,
        /// Fingerprint recomputed over the payload.
        computed: u64,
    },
    /// The payload decoded, but a field value is impossible (an enum
    /// tag out of range, a length that contradicts another field).
    Malformed(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated { context } => {
                write!(f, "snapshot truncated while reading {context}")
            }
            SnapshotError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot schema version {found} is not supported (this build reads version {supported})"
            ),
            SnapshotError::WrongEngine { found, expected } => write!(
                f,
                "snapshot was written by engine {} but engine {} is restoring it",
                engine_name(*found),
                engine_name(*expected)
            ),
            SnapshotError::Corrupt { recorded, computed } => write!(
                f,
                "snapshot fingerprint mismatch (recorded {recorded:#018x}, computed {computed:#018x}): file is corrupt"
            ),
            SnapshotError::Malformed(msg) => write!(f, "malformed snapshot payload: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Human name for an engine tag (unknown tags print numerically).
pub fn engine_name(tag: u8) -> String {
    match tag {
        ENGINE_FAST => "fast".into(),
        ENGINE_REFERENCE => "reference".into(),
        ENGINE_SCALE => "scale".into(),
        other => format!("unknown({other})"),
    }
}

/// Builds a snapshot payload field by field, then seals it into the
/// versioned, fingerprinted container.
#[derive(Debug, Default)]
pub struct SnapWriter {
    payload: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> SnapWriter {
        SnapWriter::default()
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.payload.push(v);
    }

    /// Appends a `u16` (little-endian).
    pub fn u16(&mut self, v: u16) {
        self.payload.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` (little-endian).
    pub fn u32(&mut self, v: u32) {
        self.payload.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) {
        self.payload.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (sizes must survive 32/64-bit
    /// round trips unchanged).
    pub fn len(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` bit-exactly.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.len(v.len());
        self.payload.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Seals the payload into the full container for `engine`.
    pub fn seal(self, engine: u8) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload.len() + 25);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.push(engine);
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out.extend_from_slice(&fnv1a(&self.payload).to_le_bytes());
        out
    }
}

/// Reads a sealed snapshot: header and fingerprint are validated up
/// front, then payload fields decode in writer order.
#[derive(Debug)]
pub struct SnapReader<'a> {
    payload: &'a [u8],
    pos: usize,
    engine: u8,
}

impl<'a> SnapReader<'a> {
    /// Validates the container (magic, version, length, fingerprint)
    /// and positions the reader at the start of the payload.
    pub fn open(data: &'a [u8]) -> Result<SnapReader<'a>, SnapshotError> {
        if data.len() < 4 {
            return Err(SnapshotError::Truncated { context: "magic" });
        }
        if data[..4] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        if data.len() < 17 {
            return Err(SnapshotError::Truncated { context: "header" });
        }
        let version = u32::from_le_bytes([data[4], data[5], data[6], data[7]]);
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let engine = data[8];
        let len = u64::from_le_bytes([
            data[9], data[10], data[11], data[12], data[13], data[14], data[15], data[16],
        ]) as usize;
        let body_end = 17usize.checked_add(len).ok_or(SnapshotError::Malformed(
            "payload length overflows".to_string(),
        ))?;
        if data.len() < body_end + 8 {
            return Err(SnapshotError::Truncated { context: "payload" });
        }
        let payload = &data[17..body_end];
        let recorded = u64::from_le_bytes(
            data[body_end..body_end + 8]
                .try_into()
                .expect("slice is exactly 8 bytes"),
        );
        let computed = fnv1a(payload);
        if recorded != computed {
            return Err(SnapshotError::Corrupt { recorded, computed });
        }
        Ok(SnapReader {
            payload,
            pos: 0,
            engine,
        })
    }

    /// The engine tag recorded in the header.
    pub fn engine(&self) -> u8 {
        self.engine
    }

    /// Peeks at the engine tag of a sealed snapshot without validating
    /// the payload (for dispatching a restore to the right engine).
    pub fn peek_engine(data: &[u8]) -> Result<u8, SnapshotError> {
        if data.len() < 4 {
            return Err(SnapshotError::Truncated { context: "magic" });
        }
        if data[..4] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        if data.len() < 9 {
            return Err(SnapshotError::Truncated { context: "header" });
        }
        let version = u32::from_le_bytes([data[4], data[5], data[6], data[7]]);
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        Ok(data[8])
    }

    /// Errors unless the header's engine tag is `expected`.
    pub fn expect_engine(&self, expected: u8) -> Result<(), SnapshotError> {
        if self.engine != expected {
            return Err(SnapshotError::WrongEngine {
                found: self.engine,
                expected,
            });
        }
        Ok(())
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.payload.len())
            .ok_or(SnapshotError::Truncated { context })?;
        let slice = &self.payload[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self, context: &'static str) -> Result<u8, SnapshotError> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a `u16`.
    pub fn u16(&mut self, context: &'static str) -> Result<u16, SnapshotError> {
        let b = self.take(2, context)?;
        Ok(u16::from_le_bytes(b.try_into().expect("2-byte slice")))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self, context: &'static str) -> Result<u32, SnapshotError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self, context: &'static str) -> Result<u64, SnapshotError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Reads a length written by [`SnapWriter::len`], bounds-checked
    /// against the remaining payload so a hostile length cannot force
    /// a huge allocation.
    pub fn len(&mut self, context: &'static str) -> Result<usize, SnapshotError> {
        let v = self.u64(context)?;
        if v > self.payload.len() as u64 {
            return Err(SnapshotError::Malformed(format!(
                "{context}: length {v} exceeds payload size"
            )));
        }
        Ok(v as usize)
    }

    /// Reads an `f64` bit-exactly.
    pub fn f64(&mut self, context: &'static str) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    /// Reads a `bool`; any byte other than 0 or 1 is malformed.
    pub fn bool(&mut self, context: &'static str) -> Result<bool, SnapshotError> {
        match self.u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::Malformed(format!(
                "{context}: invalid bool byte {other}"
            ))),
        }
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self, context: &'static str) -> Result<&'a [u8], SnapshotError> {
        let n = self.len(context)?;
        self.take(n, context)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self, context: &'static str) -> Result<&'a str, SnapshotError> {
        std::str::from_utf8(self.bytes(context)?)
            .map_err(|_| SnapshotError::Malformed(format!("{context}: invalid UTF-8")))
    }

    /// Errors unless every payload byte has been consumed — trailing
    /// garbage means writer and reader disagree about the layout.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.pos != self.payload.len() {
            return Err(SnapshotError::Malformed(format!(
                "{} unread byte(s) at end of payload",
                self.payload.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.f64(-0.0);
        w.f64(f64::MAX);
        w.bool(true);
        w.str("snapshot");
        w.bytes(&[1, 2, 3]);
        w.seal(ENGINE_FAST)
    }

    #[test]
    fn round_trips_every_primitive() {
        let data = sample();
        let mut r = SnapReader::open(&data).unwrap();
        assert_eq!(r.engine(), ENGINE_FAST);
        r.expect_engine(ENGINE_FAST).unwrap();
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("c").unwrap(), u64::MAX - 1);
        assert_eq!(r.f64("d").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64("e").unwrap(), f64::MAX);
        assert!(r.bool("f").unwrap());
        assert_eq!(r.str("g").unwrap(), "snapshot");
        assert_eq!(r.bytes("h").unwrap(), &[1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn rejects_bad_magic() {
        let mut data = sample();
        data[0] = b'X';
        assert_eq!(
            SnapReader::open(&data).unwrap_err(),
            SnapshotError::BadMagic
        );
        assert_eq!(
            SnapReader::peek_engine(&data).unwrap_err(),
            SnapshotError::BadMagic
        );
    }

    #[test]
    fn rejects_future_version_by_name() {
        let mut data = sample();
        data[4] = (SNAPSHOT_VERSION + 1) as u8;
        match SnapReader::open(&data).unwrap_err() {
            SnapshotError::UnsupportedVersion { found, supported } => {
                assert_eq!(found, SNAPSHOT_VERSION + 1);
                assert_eq!(supported, SNAPSHOT_VERSION);
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn rejects_wrong_engine() {
        let data = sample();
        let r = SnapReader::open(&data).unwrap();
        let err = r.expect_engine(ENGINE_SCALE).unwrap_err();
        assert_eq!(
            err,
            SnapshotError::WrongEngine {
                found: ENGINE_FAST,
                expected: ENGINE_SCALE
            }
        );
        assert!(err.to_string().contains("scale"));
    }

    #[test]
    fn detects_corruption_of_any_payload_byte() {
        let clean = sample();
        for i in 17..clean.len() - 8 {
            let mut data = clean.clone();
            data[i] ^= 0x40;
            match SnapReader::open(&data).unwrap_err() {
                SnapshotError::Corrupt { .. } => {}
                other => panic!("byte {i}: wrong error {other:?}"),
            }
        }
    }

    #[test]
    fn detects_truncation_at_every_length() {
        let clean = sample();
        for n in 0..clean.len() {
            let err = SnapReader::open(&clean[..n]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. } | SnapshotError::Corrupt { .. }
                ),
                "truncation to {n} bytes gave {err:?}"
            );
        }
    }

    #[test]
    fn field_level_truncation_is_named() {
        let mut w = SnapWriter::new();
        w.u32(5);
        let data = w.seal(ENGINE_SCALE);
        let mut r = SnapReader::open(&data).unwrap();
        assert_eq!(r.u32("first").unwrap(), 5);
        let err = r.u64("missing-field").unwrap_err();
        assert_eq!(
            err,
            SnapshotError::Truncated {
                context: "missing-field"
            }
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = SnapWriter::new();
        w.u64(1);
        w.u64(2);
        let data = w.seal(ENGINE_REFERENCE);
        let mut r = SnapReader::open(&data).unwrap();
        let _ = r.u64("only").unwrap();
        assert!(matches!(r.finish(), Err(SnapshotError::Malformed(_))));
    }

    #[test]
    fn hostile_lengths_cannot_force_allocation() {
        let mut w = SnapWriter::new();
        w.u64(u64::MAX); // a "length" far beyond the payload
        let data = w.seal(ENGINE_FAST);
        let mut r = SnapReader::open(&data).unwrap();
        assert!(matches!(r.len("evil"), Err(SnapshotError::Malformed(_))));
    }

    #[test]
    fn peek_engine_reads_only_the_header() {
        let data = sample();
        assert_eq!(SnapReader::peek_engine(&data).unwrap(), ENGINE_FAST);
        // Corrupt payload: peek still answers (it is for dispatch, the
        // full open() does the integrity work).
        let mut corrupt = data.clone();
        let last = corrupt.len() - 10;
        corrupt[last] ^= 0xFF;
        assert_eq!(SnapReader::peek_engine(&corrupt).unwrap(), ENGINE_FAST);
        assert!(SnapReader::open(&corrupt).is_err());
    }
}
