//! The Appendix B query model (from the authors' earlier hybrid-P2P
//! study, reference \[25\]).
//!
//! The model is defined by two probability functions over a universe of
//! query classes:
//!
//! * `g(j)` — the probability that a random submitted query is query
//!   `q_j` (query popularity);
//! * `f(j)` — the probability that a random file matches `q_j`
//!   (selection power).
//!
//! Matches are independent per file, so for a super-peer `T` indexing
//! `x_tot` files:
//!
//! * `E[N_T | I] = Σ_j g(j)·f(j) · x_tot` — Equation (5);
//! * `P(collection of size x returns nothing) = Σ_j g(j)·(1−f(j))^x`;
//! * `E[K_T | I] = Σ_i (1 − Σ_j g(j)·(1−f(j))^{x_i})` over the
//!   cluster's member collections — Equation (6).
//!
//! The OpenNap distributions used in \[25\] are not available, so `g` is
//! Zipf and `f` follows a correlated power law (popular queries match
//! more files), with the absolute scale **calibrated** so that the
//! match rate per indexed file `Σ_j g(j)f(j)` reproduces the paper's
//! observed result counts: Figure 11 reports 269 expected results at a
//! reach of 3000 single-peer clusters, i.e. ≈ 0.09 expected results per
//! reached peer, which at ~124 files per peer gives
//! `match ≈ 7.25 × 10⁻⁴` per file (DESIGN.md §4).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use sp_stats::dist::Sampler;
use sp_stats::{SpRng, Zipf};

/// Parameters of the synthetic query model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryModelConfig {
    /// Number of query classes in the universe.
    pub num_classes: usize,
    /// Zipf exponent of the popularity law `g(j) ∝ (j+1)^{-s}`.
    pub popularity_exponent: f64,
    /// Power-law exponent of selection power `f(j) ∝ (j+1)^{-t}`
    /// (matches are positively correlated with popularity).
    pub selection_exponent: f64,
    /// Target match rate per indexed file, `Σ_j g(j) f(j)`.
    pub match_per_file: f64,
}

impl Default for QueryModelConfig {
    fn default() -> Self {
        QueryModelConfig {
            num_classes: 1024,
            popularity_exponent: 1.0,
            selection_exponent: 0.75,
            match_per_file: 7.25e-4,
        }
    }
}

/// Materialized query model: popularity pmf, per-class selection
/// powers, and the derived expectations of Appendix B.
#[derive(Debug, Clone)]
pub struct QueryModel {
    g: Zipf,
    /// Selection power per class, each in `[0, 1)`.
    f: Vec<f64>,
    /// `ln(1 − f(j))`, precomputed for the `(1−f)^x` evaluations.
    log1mf: Vec<f64>,
    /// `Σ_j g(j) f(j)`.
    match_rate: f64,
}

impl QueryModel {
    /// Builds the model, calibrating the selection-power scale by
    /// bisection so that `Σ_j g(j)f(j)` hits `cfg.match_per_file`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.num_classes == 0`, the target match rate is not
    /// in `(0, 1)` or is unachievable under the configured exponents
    /// (the per-class clamp at 0.999 bounds `Σ g·f` from above — a
    /// silently mis-calibrated model would corrupt every downstream
    /// result count), or the exponents are negative.
    pub fn from_config(cfg: &QueryModelConfig) -> Self {
        assert!(cfg.num_classes > 0, "need at least one query class");
        assert!(
            cfg.match_per_file > 0.0 && cfg.match_per_file < 1.0,
            "match_per_file must be in (0,1)"
        );
        assert!(
            cfg.popularity_exponent >= 0.0 && cfg.selection_exponent >= 0.0,
            "exponents must be non-negative"
        );
        let g = Zipf::new(cfg.num_classes, cfg.popularity_exponent);
        let shape: Vec<f64> = (0..cfg.num_classes)
            .map(|j| ((j + 1) as f64).powf(-cfg.selection_exponent))
            .collect();
        let rate_for = |f0: f64| -> f64 {
            g.masses()
                .map(|(j, gj)| gj * (f0 * shape[j]).min(0.999))
                .sum()
        };
        // Bisection on the scale factor (monotone in f0).
        let (mut lo, mut hi) = (0.0f64, 1.0f64);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if rate_for(mid) < cfg.match_per_file {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let f0 = 0.5 * (lo + hi);
        let f: Vec<f64> = shape.iter().map(|&s| (f0 * s).min(0.999)).collect();
        let log1mf: Vec<f64> = f.iter().map(|&fj| (1.0 - fj).ln()).collect();
        let match_rate = rate_for(f0);
        assert!(
            (match_rate - cfg.match_per_file).abs() <= 0.01 * cfg.match_per_file,
            "match_per_file {} is unachievable with these exponents \
             (ceiling {:.3e}) — lower the target or flatten selection_exponent",
            cfg.match_per_file,
            rate_for(1.0)
        );
        QueryModel {
            g,
            f,
            log1mf,
            match_rate,
        }
    }

    /// Model with the default (paper-calibrated) parameters.
    pub fn paper_default() -> Self {
        QueryModel::from_config(&QueryModelConfig::default())
    }

    /// The calibrated per-file match rate `Σ_j g(j) f(j)`.
    pub fn match_rate(&self) -> f64 {
        self.match_rate
    }

    /// Number of query classes.
    pub fn num_classes(&self) -> usize {
        self.f.len()
    }

    /// Selection power of class `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn selection_power(&self, j: usize) -> f64 {
        self.f[j]
    }

    /// Popularity of class `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn popularity(&self, j: usize) -> f64 {
        self.g.pmf(j)
    }

    /// `E[N_T | I]`: expected results from an index of `total_files`
    /// files (Equation 5) — linear in the index size.
    pub fn expected_results(&self, total_files: f64) -> f64 {
        self.match_rate * total_files
    }

    /// `P(a collection of x files returns no result for a random
    /// query) = Σ_j g(j)(1−f(j))^x`. Exact; O(num_classes).
    pub fn prob_no_match(&self, files: u32) -> f64 {
        if files == 0 {
            return 1.0;
        }
        let x = files as f64;
        self.g
            .masses()
            .map(|(j, gj)| gj * (x * self.log1mf[j]).exp())
            .sum()
    }

    /// `P(a collection of x files returns at least one result)`.
    pub fn prob_some_match(&self, files: u32) -> f64 {
        (1.0 - self.prob_no_match(files)).max(0.0)
    }

    /// Samples a query class (for the event-driven simulator).
    pub fn sample_query(&self, rng: &mut SpRng) -> usize {
        self.g.sample(rng)
    }

    /// Expected number of matches of query class `j` over `files`
    /// files (used by the simulator to draw result counts).
    pub fn expected_matches_for(&self, j: usize, files: f64) -> f64 {
        self.f[j] * files
    }
}

/// Memo table for [`QueryModel::prob_no_match`], keyed by collection
/// size. Instance analysis evaluates the same file counts thousands of
/// times (cluster index sizes repeat across sources), so the cache
/// turns an O(num_classes) evaluation into a cheap probe. A `BTreeMap`
/// rather than `HashMap` keeps the crate free of randomized-hash
/// containers (sp-lint D1); the tree stays tiny (distinct index sizes),
/// so the O(log n) probe is noise next to the O(num_classes) miss path.
#[derive(Debug, Default)]
pub struct MatchCache {
    memo: BTreeMap<u32, f64>,
}

impl MatchCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cached `prob_no_match(files)`.
    pub fn prob_no_match(&mut self, model: &QueryModel, files: u32) -> f64 {
        *self
            .memo
            .entry(files)
            .or_insert_with(|| model.prob_no_match(files))
    }

    /// Cached `prob_some_match(files)`.
    pub fn prob_some_match(&mut self, model: &QueryModel, files: u32) -> f64 {
        (1.0 - self.prob_no_match(model, files)).max(0.0)
    }

    /// `E[K_T | I]` (Equation 6): expected number of collections, among
    /// the given member collections, that produce at least one result.
    pub fn expected_responding_collections<I>(&mut self, model: &QueryModel, files: I) -> f64
    where
        I: IntoIterator<Item = u32>,
    {
        files
            .into_iter()
            .map(|x| self.prob_some_match(model, x))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_hits_target_match_rate() {
        let m = QueryModel::paper_default();
        let target = QueryModelConfig::default().match_per_file;
        let rel = (m.match_rate() - target).abs() / target;
        assert!(
            rel < 1e-6,
            "match rate {} vs target {target}",
            m.match_rate()
        );
    }

    #[test]
    fn expected_results_reproduce_figure_11() {
        // 3000 reached single-peer clusters × ~124 files each → ≈ 269
        // expected results (the paper's "today's Gnutella" row).
        let m = QueryModel::paper_default();
        let results = m.expected_results(3000.0 * 123.7);
        assert!((results - 269.0).abs() < 3.0, "results {results}");
    }

    #[test]
    fn expected_results_linear_in_files() {
        let m = QueryModel::paper_default();
        let r1 = m.expected_results(1000.0);
        let r2 = m.expected_results(2000.0);
        assert!((r2 - 2.0 * r1).abs() < 1e-9);
        assert_eq!(m.expected_results(0.0), 0.0);
    }

    #[test]
    fn prob_no_match_boundary_cases() {
        let m = QueryModel::paper_default();
        assert_eq!(m.prob_no_match(0), 1.0);
        let p1 = m.prob_no_match(1);
        assert!((p1 - (1.0 - m.match_rate())).abs() < 1e-12);
        // Monotone decreasing in collection size.
        let mut prev = 1.0;
        for x in [1u32, 10, 100, 1000, 10_000, 100_000] {
            let p = m.prob_no_match(x);
            assert!(p <= prev + 1e-15, "x={x}: {p} > {prev}");
            assert!((0.0..=1.0).contains(&p));
            prev = p;
        }
        // A million-file index almost always has a match for the
        // popular queries, but rare queries still miss: p stays well
        // above 0 only if tail selection powers are tiny — just check
        // it keeps shrinking.
        assert!(m.prob_no_match(1_000_000) < m.prob_no_match(1000));
    }

    #[test]
    fn responding_collections_bounded_by_count() {
        let m = QueryModel::paper_default();
        let mut cache = MatchCache::new();
        let files = [0u32, 50, 100, 100, 5000];
        let k = cache.expected_responding_collections(&m, files.iter().copied());
        assert!((0.0..=5.0).contains(&k), "K = {k}");
        // A zero-file collection never responds.
        assert_eq!(cache.prob_some_match(&m, 0), 0.0);
        // Bigger collections respond more often.
        assert!(cache.prob_some_match(&m, 5000) > cache.prob_some_match(&m, 50));
    }

    #[test]
    fn cache_agrees_with_direct_evaluation() {
        let m = QueryModel::paper_default();
        let mut cache = MatchCache::new();
        for x in [0u32, 7, 124, 124, 9999] {
            assert_eq!(cache.prob_no_match(&m, x), m.prob_no_match(x));
        }
    }

    #[test]
    fn popular_queries_match_more() {
        let m = QueryModel::paper_default();
        assert!(m.selection_power(0) > m.selection_power(100));
        assert!(m.popularity(0) > m.popularity(100));
        assert!(m.selection_power(0) < 1.0);
    }

    #[test]
    fn sampler_prefers_popular_classes() {
        let m = QueryModel::paper_default();
        let mut rng = SpRng::seed_from_u64(5);
        let n = 20_000;
        let top = (0..n).filter(|_| m.sample_query(&mut rng) < 10).count() as f64 / n as f64;
        let expect: f64 = (0..10).map(|j| m.popularity(j)).sum();
        assert!((top - expect).abs() < 0.02, "top-10 mass {top} vs {expect}");
    }

    #[test]
    #[should_panic(expected = "match_per_file")]
    fn bad_target_panics() {
        QueryModel::from_config(&QueryModelConfig {
            match_per_file: 1.5,
            ..Default::default()
        });
    }
}
