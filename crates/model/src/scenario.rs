//! Declarative scenario DSL: phased workload programs over a run.
//!
//! The paper evaluates super-peer designs under a steady-state workload
//! (fixed query rate, one churn law, homogeneous peers). Deployed
//! overlays live through *regimes*: flash crowds that multiply query
//! traffic and concentrate it on a few hot keys, churn bursts that
//! shorten sessions across the board, correlated mass departures,
//! overlay splits that heal later, and populations whose peers differ
//! in capacity by orders of magnitude. A [`ScenarioPlan`] composes
//! those regimes — plus a [`FaultPlan`] and a [`RepairPolicy`] — into
//! one validated, JSON-serializable program that both simulation
//! engines execute deterministically (DESIGN.md §16).
//!
//! Like [`crate::faults`], the format is hand-rolled JSON (the
//! approved dependency set has no serde implementation) and every
//! parse error names the offending key or byte. The grammar:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "phases": [
//!     {"kind": "flash_crowd", "from_secs": 300, "until_secs": 900,
//!      "query_rate_mult": 4.0, "hot_shift": 17},
//!     {"kind": "churn_burst", "from_secs": 600, "until_secs": 1200,
//!      "lifespan_mult": 0.25},
//!     {"kind": "mass_leave", "from_secs": 700, "until_secs": 710,
//!      "fraction": 0.3},
//!     {"kind": "split", "from_secs": 400, "until_secs": 800,
//!      "fraction": 0.4}
//!   ],
//!   "capacity_classes": [
//!     {"weight": 3.0, "files_mult": 0.1, "lifespan_mult": 0.5},
//!     {"weight": 1.0, "files_mult": 4.0, "lifespan_mult": 2.0}
//!   ],
//!   "faults": { "faults": [], "retry": {} },
//!   "repair": "promote"
//! }
//! ```
//!
//! Validation rejects zero-duration phases, overlapping phases of the
//! same kind (phases of *different* kinds may overlap — a flash crowd
//! during a split is a legitimate program), non-finite or out-of-range
//! parameters, and any unknown key. An empty plan is the identity: the
//! engines consume no extra randomness and produce bitwise-identical
//! metrics to a plain run.

use std::fmt;

use crate::faults::{parse_fault, parse_retry, FaultPlan, FaultPlanError, Parser, Value};
use crate::overload::{parse_policy, OverloadPolicy};
use crate::repair::RepairPolicy;

/// Version of the scenario JSON grammar this module reads and writes.
///
/// Every rendered plan embeds it as `"schema_version"`, and
/// [`ScenarioPlan::from_json`] rejects documents stamped with a *newer*
/// version by name instead of tripping over an unknown key — so a
/// campaign reproducer written today still fails cleanly (and
/// diagnosably) after a future scenario-DSL change. Documents without
/// the field parse as version 1 (the grammar before the field existed).
/// Version 2 added the per-phase `query_rate_mult` knob and the
/// top-level `overload` policy.
pub const SCENARIO_SCHEMA_VERSION: u32 = 2;

/// A scenario that fails validation or parsing, with the message shown
/// to the user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError(pub String);

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ScenarioError {}

impl From<FaultPlanError> for ScenarioError {
    fn from(e: FaultPlanError) -> Self {
        ScenarioError(e.0)
    }
}

/// What a phase does while its window is active.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PhaseKind {
    /// Query-rate spike concentrated on Zipf-shifted hot keys: every
    /// peer's query inter-arrival rate is multiplied and each sampled
    /// query class is rotated by `hot_shift` (mod the class count), so
    /// the popular head of the Zipf law lands on a different key range.
    FlashCrowd {
        /// Factor applied to the per-peer query rate (> 0; 1.0 = no
        /// spike).
        query_rate_mult: f64,
        /// Rotation applied to each sampled query class.
        hot_shift: u32,
    },
    /// Churn burst: session lifespans sampled while the window is
    /// active are multiplied (a factor < 1 shortens sessions and
    /// accelerates churn).
    ChurnBurst {
        /// Factor applied to sampled lifespans (> 0).
        lifespan_mult: f64,
    },
    /// Correlated mass departure: at the window start, `fraction` of
    /// the currently alive peers leave simultaneously (organic-style
    /// departures — repair does not engage, replenishment arrivals
    /// refill the population). The window end is a no-op; the window
    /// length only spaces it from other phases of the same kind.
    MassLeave {
        /// Fraction of alive peers forced to depart, in [0, 1].
        fraction: f64,
    },
    /// Network split-and-merge: at the window start, `fraction` of the
    /// alive clusters are partitioned from the rest (flood traffic
    /// across the cut is severed, exactly like a fault-plan
    /// partition); the window end merges them back.
    Split {
        /// Fraction of alive clusters isolated, in [0, 1].
        fraction: f64,
    },
}

impl PhaseKind {
    /// The JSON `kind` tag.
    pub fn kind_name(&self) -> &'static str {
        match self {
            PhaseKind::FlashCrowd { .. } => "flash_crowd",
            PhaseKind::ChurnBurst { .. } => "churn_burst",
            PhaseKind::MassLeave { .. } => "mass_leave",
            PhaseKind::Split { .. } => "split",
        }
    }
}

/// One phase: a [`PhaseKind`] active over a `[from_secs, until_secs)`
/// window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseSpec {
    /// Window start (simulated seconds, >= 0).
    pub from_secs: f64,
    /// Window end (simulated seconds, > `from_secs`).
    pub until_secs: f64,
    /// Per-phase query-rate multiplier (> 0; 1.0 = no change): while
    /// the window is active every peer's query inter-arrival rate is
    /// multiplied, on top of whatever the kind itself does — the
    /// flash-crowd intensity knob for overload scenarios. Concurrent
    /// phases multiply. `flash_crowd` phases express their spike
    /// through their own `query_rate_mult` field instead and must
    /// leave this at 1.0.
    pub rate_mult: f64,
    /// What the phase does while active.
    pub kind: PhaseKind,
}

impl PhaseSpec {
    fn validate(&self, index: usize) -> Result<(), ScenarioError> {
        let ctx = format!("phases[{index}]");
        if !self.from_secs.is_finite() || self.from_secs < 0.0 {
            return Err(ScenarioError(format!(
                "{ctx}: from_secs must be finite and >= 0, got {}",
                self.from_secs
            )));
        }
        if !self.until_secs.is_finite() || self.until_secs <= self.from_secs {
            return Err(ScenarioError(format!(
                "{ctx}: until_secs must be > from_secs (zero-duration phases are invalid), \
                 got from_secs {} until_secs {}",
                self.from_secs, self.until_secs
            )));
        }
        let positive = |label: &str, v: f64| -> Result<(), ScenarioError> {
            if !v.is_finite() || v <= 0.0 {
                return Err(ScenarioError(format!(
                    "{ctx}: {label} must be finite and > 0, got {v}"
                )));
            }
            Ok(())
        };
        let fraction = |label: &str, v: f64| -> Result<(), ScenarioError> {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(ScenarioError(format!(
                    "{ctx}: {label} must be in [0, 1], got {v}"
                )));
            }
            Ok(())
        };
        positive("query_rate_mult", self.rate_mult)?;
        if matches!(self.kind, PhaseKind::FlashCrowd { .. }) && self.rate_mult != 1.0 {
            return Err(ScenarioError(format!(
                "{ctx}: a flash_crowd phase expresses its spike through its own \
                 query_rate_mult; the per-phase rate_mult must stay 1.0, got {}",
                self.rate_mult
            )));
        }
        match self.kind {
            PhaseKind::FlashCrowd {
                query_rate_mult, ..
            } => positive("query_rate_mult", query_rate_mult),
            PhaseKind::ChurnBurst { lifespan_mult } => positive("lifespan_mult", lifespan_mult),
            PhaseKind::MassLeave { fraction: f } => fraction("fraction", f),
            PhaseKind::Split { fraction: f } => fraction("fraction", f),
        }
    }

    fn to_json(self) -> String {
        let window = format!(
            "\"from_secs\": {}, \"until_secs\": {}",
            self.from_secs, self.until_secs
        );
        // The per-phase rate knob is serialized only when set, so
        // version-1 documents round-trip byte-identically.
        let rate = if self.rate_mult != 1.0 {
            format!(", \"query_rate_mult\": {}", self.rate_mult)
        } else {
            String::new()
        };
        match self.kind {
            PhaseKind::FlashCrowd {
                query_rate_mult,
                hot_shift,
            } => format!(
                "{{\"kind\": \"flash_crowd\", {window}, \
                 \"query_rate_mult\": {query_rate_mult}, \"hot_shift\": {hot_shift}}}"
            ),
            PhaseKind::ChurnBurst { lifespan_mult } => format!(
                "{{\"kind\": \"churn_burst\", {window}, \
                 \"lifespan_mult\": {lifespan_mult}{rate}}}"
            ),
            PhaseKind::MassLeave { fraction } => {
                format!("{{\"kind\": \"mass_leave\", {window}, \"fraction\": {fraction}{rate}}}")
            }
            PhaseKind::Split { fraction } => {
                format!("{{\"kind\": \"split\", {window}, \"fraction\": {fraction}{rate}}}")
            }
        }
    }
}

/// One peer-capacity class: joining peers are assigned a class by
/// deterministic weighted round-robin (no RNG draw), and the class
/// scales the peer's sampled file count and session lifespan — the
/// Baccelli-style heterogeneous population where a few high-capacity
/// peers share most of the content and stay longest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityClass {
    /// Relative share of peers landing in this class (> 0).
    pub weight: f64,
    /// Factor applied to the sampled file count (> 0).
    pub files_mult: f64,
    /// Factor applied to the sampled session lifespan (> 0).
    pub lifespan_mult: f64,
}

impl CapacityClass {
    fn validate(&self, index: usize) -> Result<(), ScenarioError> {
        let ctx = format!("capacity_classes[{index}]");
        for (label, v) in [
            ("weight", self.weight),
            ("files_mult", self.files_mult),
            ("lifespan_mult", self.lifespan_mult),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(ScenarioError(format!(
                    "{ctx}: {label} must be finite and > 0, got {v}"
                )));
            }
        }
        Ok(())
    }

    fn to_json(self) -> String {
        format!(
            "{{\"weight\": {}, \"files_mult\": {}, \"lifespan_mult\": {}}}",
            self.weight, self.files_mult, self.lifespan_mult
        )
    }
}

/// A validated scenario: phased workload regimes, a heterogeneous
/// capacity population, an embedded fault plan, and the repair policy
/// the run heals with. See the module docs for the JSON grammar.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScenarioPlan {
    /// Phased workload regimes (validated: no zero-duration windows,
    /// no same-kind overlap).
    pub phases: Vec<PhaseSpec>,
    /// Peer capacity classes (empty = homogeneous population).
    pub capacity_classes: Vec<CapacityClass>,
    /// Fault injection running alongside the phases.
    pub faults: FaultPlan,
    /// Overlay self-healing policy for fault-injected crashes.
    pub repair: RepairPolicy,
    /// Super-peer overload-control policy (empty = unbounded queues,
    /// the pre-overload behavior).
    pub overload: OverloadPolicy,
}

impl ScenarioPlan {
    /// Checks every phase, class, and the embedded fault plan.
    ///
    /// Phases of the same kind must not overlap (each kind's modifier
    /// is a single scalar, so two simultaneous windows of one kind
    /// would be ambiguous); phases of different kinds may.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        for (i, phase) in self.phases.iter().enumerate() {
            phase.validate(i)?;
        }
        for (i, a) in self.phases.iter().enumerate() {
            for (j, b) in self.phases.iter().enumerate().skip(i + 1) {
                if a.kind.kind_name() == b.kind.kind_name()
                    && a.from_secs < b.until_secs
                    && b.from_secs < a.until_secs
                {
                    return Err(ScenarioError(format!(
                        "phases[{i}] and phases[{j}] are overlapping \"{}\" windows \
                         ([{}, {}) vs [{}, {}))",
                        a.kind.kind_name(),
                        a.from_secs,
                        a.until_secs,
                        b.from_secs,
                        b.until_secs
                    )));
                }
            }
        }
        for (i, class) in self.capacity_classes.iter().enumerate() {
            class.validate(i)?;
        }
        self.faults.validate()?;
        self.overload
            .validate()
            .map_err(|e| ScenarioError(e.to_string()))?;
        Ok(())
    }

    /// True when the scenario modifies nothing: no phases, a
    /// homogeneous population, and an empty fault plan. An empty
    /// scenario run is bitwise identical to a plain run.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
            && self.capacity_classes.is_empty()
            && self.faults.is_empty()
            && self.overload.is_empty()
    }

    /// Renders the plan as a JSON document that
    /// [`ScenarioPlan::from_json`] reads back verbatim.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push_str(&format!(
            "{{\n  \"schema_version\": {SCENARIO_SCHEMA_VERSION},\n  \"phases\": [\n"
        ));
        for (i, phase) in self.phases.iter().enumerate() {
            let sep = if i + 1 < self.phases.len() { "," } else { "" };
            s.push_str(&format!("    {}{sep}\n", phase.to_json()));
        }
        s.push_str("  ],\n  \"capacity_classes\": [\n");
        for (i, class) in self.capacity_classes.iter().enumerate() {
            let sep = if i + 1 < self.capacity_classes.len() {
                ","
            } else {
                ""
            };
            s.push_str(&format!("    {}{sep}\n", class.to_json()));
        }
        s.push_str("  ],\n  \"faults\": ");
        // Re-indent the embedded fault-plan document two spaces deep.
        let faults = self.faults.to_json();
        for (i, line) in faults.trim_end().lines().enumerate() {
            if i > 0 {
                s.push_str("\n  ");
            }
            s.push_str(line);
        }
        if !self.overload.is_empty() {
            s.push_str(",\n  \"overload\": ");
            let overload = self.overload.to_json();
            for (i, line) in overload.trim_end().lines().enumerate() {
                if i > 0 {
                    s.push_str("\n  ");
                }
                s.push_str(line);
            }
        }
        s.push_str(&format!(",\n  \"repair\": \"{}\"\n}}\n", self.repair));
        s
    }

    /// Parses a plan from JSON and validates it. Every unknown key at
    /// any level is an error.
    pub fn from_json(text: &str) -> Result<ScenarioPlan, ScenarioError> {
        let value = Parser::new(text).parse_document()?;
        let root = value.as_object("scenario")?;
        let mut plan = ScenarioPlan::default();
        for (key, val) in root {
            match key.as_str() {
                "schema_version" => {
                    let version = val.as_u32("schema_version")?;
                    if version > SCENARIO_SCHEMA_VERSION {
                        return Err(ScenarioError(format!(
                            "schema_version {version} is newer than this binary's \
                             {SCENARIO_SCHEMA_VERSION}; regenerate the scenario or \
                             upgrade spnet"
                        )));
                    }
                }
                "phases" => {
                    for (i, item) in val.as_array("phases")?.iter().enumerate() {
                        plan.phases.push(parse_phase(item, i)?);
                    }
                }
                "capacity_classes" => {
                    for (i, item) in val.as_array("capacity_classes")?.iter().enumerate() {
                        plan.capacity_classes.push(parse_class(item, i)?);
                    }
                }
                "faults" => plan.faults = parse_fault_plan(val)?,
                "overload" => {
                    plan.overload = parse_policy(val).map_err(|e| ScenarioError(e.to_string()))?;
                }
                "repair" => {
                    let raw = val.as_str("repair")?;
                    plan.repair = RepairPolicy::parse(&raw).ok_or_else(|| {
                        ScenarioError(format!(
                            "repair: unknown policy {raw:?} \
                             (expected \"off\", \"promote\", or \"promote+partner\")"
                        ))
                    })?;
                }
                other => {
                    return Err(ScenarioError(format!(
                        "unknown top-level key \"{other}\" (expected \"schema_version\", \
                         \"phases\", \"capacity_classes\", \"faults\", \"overload\", \
                         or \"repair\")"
                    )))
                }
            }
        }
        plan.validate()?;
        Ok(plan)
    }
}

/// Parses the embedded fault-plan object with the fault module's own
/// field parsers (same error messages as a standalone fault file).
fn parse_fault_plan(value: &Value) -> Result<FaultPlan, ScenarioError> {
    let root = value.as_object("faults")?;
    let mut plan = FaultPlan::default();
    for (key, val) in root {
        match key.as_str() {
            "retry" => plan.retry = parse_retry(val)?,
            "faults" => {
                for (i, item) in val.as_array("faults.faults")?.iter().enumerate() {
                    plan.faults.push(parse_fault(item, i)?);
                }
            }
            other => {
                return Err(ScenarioError(format!(
                    "faults: unknown key \"{other}\" (expected \"retry\" or \"faults\")"
                )))
            }
        }
    }
    Ok(plan)
}

fn parse_phase(value: &Value, index: usize) -> Result<PhaseSpec, ScenarioError> {
    let ctx = format!("phases[{index}]");
    let obj = value.as_object(&ctx)?;
    let kind = obj
        .iter()
        .find(|(k, _)| k == "kind")
        .ok_or_else(|| ScenarioError(format!("{ctx}: missing \"kind\"")))?
        .1
        .as_str(&format!("{ctx}.kind"))?;
    let f64_field = |name: &str| -> Result<f64, ScenarioError> {
        Ok(obj
            .iter()
            .find(|(k, _)| k == name)
            .ok_or_else(|| ScenarioError(format!("{ctx}: missing \"{name}\"")))?
            .1
            .as_f64(&format!("{ctx}.{name}"))?)
    };
    let u32_field = |name: &str| -> Result<u32, ScenarioError> {
        Ok(obj
            .iter()
            .find(|(k, _)| k == name)
            .ok_or_else(|| ScenarioError(format!("{ctx}: missing \"{name}\"")))?
            .1
            .as_u32(&format!("{ctx}.{name}"))?)
    };
    let known = |allowed: &[&str]| -> Result<(), ScenarioError> {
        for (k, _) in obj {
            if k != "kind"
                && k != "from_secs"
                && k != "until_secs"
                && !allowed.contains(&k.as_str())
            {
                return Err(ScenarioError(format!(
                    "{ctx}: unknown key \"{k}\" for kind \"{kind}\""
                )));
            }
        }
        Ok(())
    };
    // Optional per-phase query-rate knob (non-flash kinds): absent
    // means 1.0 (no change). flash_crowd's mandatory field of the same
    // name expresses the spike there instead.
    let opt_rate_mult = || -> Result<f64, ScenarioError> {
        match obj.iter().find(|(k, _)| k == "query_rate_mult") {
            Some((_, v)) => Ok(v.as_f64(&format!("{ctx}.query_rate_mult"))?),
            None => Ok(1.0),
        }
    };
    let from_secs = f64_field("from_secs")?;
    let until_secs = f64_field("until_secs")?;
    let mut rate_mult = 1.0;
    let kind = match kind.as_str() {
        "flash_crowd" => {
            known(&["query_rate_mult", "hot_shift"])?;
            PhaseKind::FlashCrowd {
                query_rate_mult: f64_field("query_rate_mult")?,
                hot_shift: u32_field("hot_shift")?,
            }
        }
        "churn_burst" => {
            known(&["lifespan_mult", "query_rate_mult"])?;
            rate_mult = opt_rate_mult()?;
            PhaseKind::ChurnBurst {
                lifespan_mult: f64_field("lifespan_mult")?,
            }
        }
        "mass_leave" => {
            known(&["fraction", "query_rate_mult"])?;
            rate_mult = opt_rate_mult()?;
            PhaseKind::MassLeave {
                fraction: f64_field("fraction")?,
            }
        }
        "split" => {
            known(&["fraction", "query_rate_mult"])?;
            rate_mult = opt_rate_mult()?;
            PhaseKind::Split {
                fraction: f64_field("fraction")?,
            }
        }
        other => {
            return Err(ScenarioError(format!(
                "{ctx}: unknown phase kind \"{other}\" (expected \"flash_crowd\", \
                 \"churn_burst\", \"mass_leave\", or \"split\")"
            )))
        }
    };
    Ok(PhaseSpec {
        from_secs,
        until_secs,
        rate_mult,
        kind,
    })
}

fn parse_class(value: &Value, index: usize) -> Result<CapacityClass, ScenarioError> {
    let ctx = format!("capacity_classes[{index}]");
    let obj = value.as_object(&ctx)?;
    let mut class = CapacityClass {
        weight: 1.0,
        files_mult: 1.0,
        lifespan_mult: 1.0,
    };
    for (key, val) in obj {
        let v = val.as_f64(&format!("{ctx}.{key}"))?;
        match key.as_str() {
            "weight" => class.weight = v,
            "files_mult" => class.files_mult = v,
            "lifespan_mult" => class.lifespan_mult = v,
            other => {
                return Err(ScenarioError(format!(
                    "{ctx}: unknown key \"{other}\" \
                     (expected \"weight\", \"files_mult\", or \"lifespan_mult\")"
                )))
            }
        }
    }
    Ok(class)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultSpec;

    fn sample_plan() -> ScenarioPlan {
        ScenarioPlan {
            phases: vec![
                PhaseSpec {
                    rate_mult: 1.0,
                    from_secs: 300.0,
                    until_secs: 900.0,
                    kind: PhaseKind::FlashCrowd {
                        query_rate_mult: 4.0,
                        hot_shift: 17,
                    },
                },
                PhaseSpec {
                    rate_mult: 1.0,
                    from_secs: 600.0,
                    until_secs: 1200.0,
                    kind: PhaseKind::ChurnBurst {
                        lifespan_mult: 0.25,
                    },
                },
                PhaseSpec {
                    rate_mult: 1.0,
                    from_secs: 700.0,
                    until_secs: 710.0,
                    kind: PhaseKind::MassLeave { fraction: 0.3 },
                },
                PhaseSpec {
                    rate_mult: 1.0,
                    from_secs: 400.0,
                    until_secs: 800.0,
                    kind: PhaseKind::Split { fraction: 0.4 },
                },
            ],
            capacity_classes: vec![
                CapacityClass {
                    weight: 3.0,
                    files_mult: 0.1,
                    lifespan_mult: 0.5,
                },
                CapacityClass {
                    weight: 1.0,
                    files_mult: 4.0,
                    lifespan_mult: 2.0,
                },
            ],
            faults: FaultPlan {
                faults: vec![FaultSpec::MessageLoss {
                    from_secs: 100.0,
                    until_secs: 500.0,
                    drop_prob: 0.2,
                }],
                ..Default::default()
            },
            repair: RepairPolicy::Promote,
            overload: OverloadPolicy::default(),
        }
    }

    #[test]
    fn json_round_trips() {
        let plan = sample_plan();
        plan.validate().unwrap();
        let json = plan.to_json();
        let back = ScenarioPlan::from_json(&json).unwrap();
        assert_eq!(plan, back);
        // And the re-rendering is byte-identical (canonical form).
        assert_eq!(json, back.to_json());
    }

    #[test]
    fn schema_version_is_embedded_and_future_versions_rejected() {
        let json = sample_plan().to_json();
        assert!(
            json.contains(&format!("\"schema_version\": {SCENARIO_SCHEMA_VERSION}")),
            "rendered plans must carry the grammar version:\n{json}"
        );
        // Pre-versioning documents (no field) still parse.
        let legacy = "{\"phases\": [], \"repair\": \"off\"}";
        ScenarioPlan::from_json(legacy).expect("version field is optional");
        // A document stamped by a future grammar fails by name, not
        // with an unknown-key or deserialization error.
        let future = format!(
            "{{\"schema_version\": {}, \"phases\": []}}",
            SCENARIO_SCHEMA_VERSION + 1
        );
        let err = ScenarioPlan::from_json(&future).unwrap_err();
        assert!(err.0.contains("newer than this binary"), "{err}");
        assert!(
            err.0
                .contains(&format!("schema_version {}", SCENARIO_SCHEMA_VERSION + 1)),
            "{err}"
        );
    }

    #[test]
    fn empty_plan_round_trips_and_is_empty() {
        let plan = ScenarioPlan::default();
        assert!(plan.is_empty());
        let back = ScenarioPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(plan, back);
        assert!(!sample_plan().is_empty());
    }

    #[test]
    fn zero_duration_phase_rejected() {
        let plan = ScenarioPlan {
            phases: vec![PhaseSpec {
                rate_mult: 1.0,
                from_secs: 100.0,
                until_secs: 100.0,
                kind: PhaseKind::MassLeave { fraction: 0.5 },
            }],
            ..Default::default()
        };
        let err = plan.validate().unwrap_err();
        assert!(err.0.contains("zero-duration"), "{err}");
    }

    #[test]
    fn same_kind_overlap_rejected_cross_kind_allowed() {
        let mk = |from: f64, until: f64, kind: PhaseKind| PhaseSpec {
            rate_mult: 1.0,
            from_secs: from,
            until_secs: until,
            kind,
        };
        let overlapping = ScenarioPlan {
            phases: vec![
                mk(0.0, 500.0, PhaseKind::Split { fraction: 0.2 }),
                mk(400.0, 900.0, PhaseKind::Split { fraction: 0.3 }),
            ],
            ..Default::default()
        };
        let err = overlapping.validate().unwrap_err();
        assert!(err.0.contains("overlapping"), "{err}");
        let cross = ScenarioPlan {
            phases: vec![
                mk(0.0, 500.0, PhaseKind::Split { fraction: 0.2 }),
                mk(
                    400.0,
                    900.0,
                    PhaseKind::FlashCrowd {
                        query_rate_mult: 2.0,
                        hot_shift: 1,
                    },
                ),
            ],
            ..Default::default()
        };
        cross.validate().unwrap();
        // Back-to-back same-kind windows are fine (half-open windows).
        let adjacent = ScenarioPlan {
            phases: vec![
                mk(0.0, 400.0, PhaseKind::Split { fraction: 0.2 }),
                mk(400.0, 900.0, PhaseKind::Split { fraction: 0.3 }),
            ],
            ..Default::default()
        };
        adjacent.validate().unwrap();
    }

    #[test]
    fn out_of_range_parameters_rejected() {
        let base = |kind| ScenarioPlan {
            phases: vec![PhaseSpec {
                rate_mult: 1.0,
                from_secs: 0.0,
                until_secs: 100.0,
                kind,
            }],
            ..Default::default()
        };
        assert!(base(PhaseKind::MassLeave { fraction: 1.5 })
            .validate()
            .is_err());
        assert!(base(PhaseKind::ChurnBurst { lifespan_mult: 0.0 })
            .validate()
            .is_err());
        assert!(base(PhaseKind::FlashCrowd {
            query_rate_mult: -1.0,
            hot_shift: 0
        })
        .validate()
        .is_err());
        let bad_class = ScenarioPlan {
            capacity_classes: vec![CapacityClass {
                weight: 0.0,
                files_mult: 1.0,
                lifespan_mult: 1.0,
            }],
            ..Default::default()
        };
        assert!(bad_class.validate().is_err());
    }

    #[test]
    fn unknown_keys_rejected_at_every_level() {
        let top = r#"{"phases": [], "bogus": 1}"#;
        assert!(ScenarioPlan::from_json(top)
            .unwrap_err()
            .0
            .contains("unknown top-level key"));
        let phase = r#"{"phases": [{"kind": "mass_leave", "from_secs": 0,
                        "until_secs": 10, "fraction": 0.1, "surprise": 2}]}"#;
        assert!(ScenarioPlan::from_json(phase)
            .unwrap_err()
            .0
            .contains("unknown key \"surprise\""));
        let class = r#"{"capacity_classes": [{"weight": 1, "speed": 9}]}"#;
        assert!(ScenarioPlan::from_json(class)
            .unwrap_err()
            .0
            .contains("unknown key \"speed\""));
        let faults = r#"{"faults": {"bogus": []}}"#;
        assert!(ScenarioPlan::from_json(faults)
            .unwrap_err()
            .0
            .contains("unknown key \"bogus\""));
        let kind = r#"{"phases": [{"kind": "earthquake", "from_secs": 0, "until_secs": 10}]}"#;
        assert!(ScenarioPlan::from_json(kind)
            .unwrap_err()
            .0
            .contains("unknown phase kind"));
        let repair = r#"{"repair": "pray"}"#;
        assert!(ScenarioPlan::from_json(repair)
            .unwrap_err()
            .0
            .contains("unknown policy"));
    }

    #[test]
    fn embedded_fault_plan_is_parsed_and_validated() {
        let text = r#"{
            "faults": {
                "retry": {"timeout_secs": 2.0, "max_retries": 1},
                "faults": [
                    {"kind": "crash_fraction", "at_secs": 50.0, "fraction": 0.25}
                ]
            }
        }"#;
        let plan = ScenarioPlan::from_json(text).unwrap();
        assert_eq!(plan.faults.faults.len(), 1);
        assert_eq!(plan.faults.retry.max_retries, 1);
        let invalid = r#"{
            "faults": {"faults": [
                {"kind": "crash_fraction", "at_secs": 50.0, "fraction": 2.0}
            ]}
        }"#;
        assert!(ScenarioPlan::from_json(invalid).is_err());
    }

    #[test]
    fn parse_errors_are_positioned() {
        let err = ScenarioPlan::from_json("{\"phases\": [").unwrap_err();
        assert!(err.0.contains("json parse error at byte"), "{err}");
    }
}
