//! Mean-value load analysis (Steps 2 and 3 of the paper's
//! methodology).
//!
//! For one network instance `I` the engine computes, for every peer
//! `T`, the expected load `E[M_T | I]` of Equation (1): the sum over
//! all action sources `S` of action cost × action rate, for the three
//! macro-actions (query, join, update), along three resources. It also
//! computes the expected results per query `E[R_S | I]` of Equation (2)
//! and the expected path length (EPL) of responses.
//!
//! # How queries are charged
//!
//! For each source cluster `i` the engine floods the overlay
//! (counting redundant transmissions over cycle edges) and charges,
//! per query:
//!
//! 1. **Query propagation** — every transmission costs the sending
//!    cluster an outgoing query message and the receiving cluster an
//!    incoming one (plus packet-multiplex processing on both ends);
//!    redundant copies are received and dropped but still paid for.
//! 2. **Query processing** — every reached cluster probes its index:
//!    `14 + 0.1·E[N_T]` units.
//! 3. **Responses** — every reached cluster `T` responds with
//!    probability `p_T = P(N_T ≥ 1)`; the expected message
//!    (`p_T`-weighted fixed overhead + `28·E[K_T]` address bytes +
//!    `76·E[N_T]` result bytes) travels up the BFS predecessor tree,
//!    charging every intermediate cluster. The per-tree-node subtree
//!    sums are computed in one deepest-first pass
//!    ([`sp_graph::traverse::FloodScratch::accumulate_up`]), so a whole
//!    source's response accounting is O(reach) instead of
//!    O(reach × depth).
//! 4. **Cluster-local legs** — for client-submitted queries, the
//!    client→super-peer submission and the super-peer→client delivery
//!    of every response.
//!
//! All clients of one cluster are exchangeable, and all `k` partners of
//! a virtual super-peer split the cluster's query work evenly
//! (round-robin, Section 3.2), so the engine floods **once per
//! cluster** and scales by user counts and rates.
//!
//! # Engines
//!
//! Two interchangeable implementations of the query-charging loop are
//! provided (selected by [`AnalysisOptions::engine`]):
//!
//! * [`Engine::Fast`] (default) — floods into a reusable
//!   [`sp_graph::FloodScratch`] (zero per-source heap allocation) and
//!   charges propagation by iterating the flood's **touched list**,
//!   making one source O(reach + local edges) instead of O(n). The
//!   source loop is split into a **fixed number of shards**
//!   ([`AnalysisOptions::shards`], independent of the thread count)
//!   that are processed by up to [`AnalysisOptions::threads`] scoped
//!   worker threads, each with its own scratch and accumulators.
//!   Shard accumulators are merged in shard order, so the result is
//!   **bitwise identical for any thread count**; changing the shard
//!   count only reassociates floating-point sums (≤ 1e-12 relative).
//! * [`Engine::Reference`] — the original single-threaded,
//!   allocate-per-source implementation with the O(n) propagation
//!   scan. Kept as the correctness oracle and benchmark baseline; with
//!   `shards: 1` the Fast engine reproduces it bitwise.
//!
//! Join and update loads are charged directly from each peer's own
//! rate (join rate = 1/lifespan; Table 1 update rate) to itself and its
//! cluster's partners; with redundancy each partner receives a full
//! copy of metadata and updates (this is the "aggregate cost of a
//! client join is k times greater" of Section 3.2).

use std::sync::atomic::{AtomicUsize, Ordering};

use sp_graph::FloodScratch;
use sp_stats::{GroupedStats, OnlineStats, SpRng};

use crate::costs::{BITS_PER_BYTE, UNIT_CYCLES};
use crate::instance::{NetworkInstance, Role};
use crate::load::Load;
use crate::query_model::{MatchCache, QueryModel};

/// Default number of source shards for [`Engine::Fast`]. Fixed (not
/// derived from the thread count) so that results are bitwise
/// reproducible on any machine; large enough to keep 32 cores busy
/// with good load balance.
pub const DEFAULT_SHARDS: usize = 32;

/// Which query-charging implementation [`analyze`] runs. See the
/// module docs for the contract between the two.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Engine {
    /// Allocation-free, source-parallel O(total-reach) engine.
    #[default]
    Fast,
    /// Original sequential O(n per source) engine (oracle/baseline).
    Reference,
}

/// Options controlling one analysis pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalysisOptions {
    /// If set and smaller than the number of clusters, only this many
    /// (randomly chosen) source clusters are flooded and all per-query
    /// charges are scaled by `n / sample` — an unbiased estimator of
    /// the **aggregate and per-role-mean** metrics that cuts the O(n²)
    /// source loop for large sweeps. Per-peer outputs (`loads`,
    /// `sp_max`, rank curves) are distorted under sampling — clients of
    /// unsampled clusters miss their query traffic entirely — so use
    /// `None` (exact) for anything that reads individual peers, as the
    /// Figure 12 experiment does.
    pub max_sources: Option<usize>,
    /// Worker threads for the source loop (Fast engine only).
    /// `0` = all available cores. Has **no effect on the numbers**:
    /// results are bitwise identical for every value.
    pub threads: usize,
    /// Number of source shards (Fast engine only). `0` =
    /// [`DEFAULT_SHARDS`]. Part of the determinism contract: the same
    /// shard count gives bitwise-identical results at any thread
    /// count; different shard counts agree to ≤ 1e-12 relative
    /// (float-sum reassociation only). `1` reproduces the Reference
    /// engine bitwise.
    pub shards: usize,
    /// Which charging implementation to run.
    pub engine: Engine,
}

/// Per-instance scalar metrics (the quantities the paper's figures
/// average over trials).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceMetrics {
    /// Aggregate load: the sum over **all** peers (Equation 4).
    pub aggregate: Load,
    /// Mean load over super-peer partners (Equation 3 with Q = the
    /// partners).
    pub sp_mean: Load,
    /// Component-wise maximum partner load.
    pub sp_max: Load,
    /// Mean load over clients.
    pub client_mean: Load,
    /// Expected results per query, averaged over users (Equation 2).
    pub results_per_query: f64,
    /// Expected path length of responses (super-peer hops), weighted by
    /// expected response messages.
    pub epl: f64,
    /// Mean number of clusters reached per query (incl. the source).
    pub mean_reach_clusters: f64,
    /// Clusters in the instance.
    pub num_clusters: usize,
    /// Total peers.
    pub num_peers: usize,
    /// Super-peer partner peers.
    pub num_partners: usize,
    /// Client peers.
    pub num_clients: usize,
    /// Realized mean outdegree of the overlay.
    pub mean_outdegree: f64,
}

/// Full analysis output: per-peer loads plus summary metrics.
#[derive(Debug, Clone)]
pub struct AnalysisResult {
    /// Per-peer expected load, indexed by `PeerId`.
    pub loads: Vec<Load>,
    /// Scalar summary metrics.
    pub metrics: InstanceMetrics,
    /// Partner outgoing bandwidth grouped by cluster outdegree — the
    /// Figure 7 histogram.
    pub sp_out_bw_by_outdegree: GroupedStats,
    /// Results per query grouped by source-cluster outdegree — the
    /// Figure 8 histogram.
    pub results_by_outdegree: GroupedStats,
}

impl AnalysisResult {
    /// Outgoing-bandwidth loads of every peer, for Figure 12 rank
    /// curves.
    pub fn out_bw_loads(&self) -> Vec<f64> {
        self.loads.iter().map(|l| l.out_bw).collect()
    }
}

/// Per-cluster tables precomputed once per instance and shared
/// (read-only) by all source-loop workers.
struct ClusterTables {
    n_results: Vec<f64>, // E[N_T]
    p_respond: Vec<f64>, // P(N_T >= 1)
    resp_b: Vec<f64>,    // expected response bytes
    resp_su: Vec<f64>,   // expected send units
    resp_ru: Vec<f64>,   // expected recv units
    users: Vec<f64>,     // clients + partners
    partner_conn: Vec<f64>,
}

/// Everything the query-charging loop accumulates. One per shard in
/// the Fast engine; merged in fixed shard order.
struct QueryCharges {
    // Cluster-level partner charges, split /k over partners at the end.
    sp_in: Vec<f64>,
    sp_out: Vec<f64>,
    sp_units: Vec<f64>,
    // Per-client charges (each client of cluster i pays these).
    cl_in: Vec<f64>,
    cl_out: Vec<f64>,
    cl_units: Vec<f64>,
    results_stats: OnlineStats,
    results_weight: f64,
    results_weighted_sum: f64,
    epl_num: f64,
    epl_den: f64,
    reach_stats: OnlineStats,
    results_by_outdeg: GroupedStats,
}

impl QueryCharges {
    fn new(n: usize) -> Self {
        QueryCharges {
            sp_in: vec![0.0; n],
            sp_out: vec![0.0; n],
            sp_units: vec![0.0; n],
            cl_in: vec![0.0; n],
            cl_out: vec![0.0; n],
            cl_units: vec![0.0; n],
            results_stats: OnlineStats::new(),
            results_weight: 0.0,
            results_weighted_sum: 0.0,
            epl_num: 0.0,
            epl_den: 0.0,
            reach_stats: OnlineStats::new(),
            results_by_outdeg: GroupedStats::new(),
        }
    }

    fn merge(&mut self, other: &QueryCharges) {
        for (a, b) in self.sp_in.iter_mut().zip(&other.sp_in) {
            *a += b;
        }
        for (a, b) in self.sp_out.iter_mut().zip(&other.sp_out) {
            *a += b;
        }
        for (a, b) in self.sp_units.iter_mut().zip(&other.sp_units) {
            *a += b;
        }
        for (a, b) in self.cl_in.iter_mut().zip(&other.cl_in) {
            *a += b;
        }
        for (a, b) in self.cl_out.iter_mut().zip(&other.cl_out) {
            *a += b;
        }
        for (a, b) in self.cl_units.iter_mut().zip(&other.cl_units) {
            *a += b;
        }
        self.results_stats.merge(&other.results_stats);
        self.results_weight += other.results_weight;
        self.results_weighted_sum += other.results_weighted_sum;
        self.epl_num += other.epl_num;
        self.epl_den += other.epl_den;
        self.reach_stats.merge(&other.reach_stats);
        self.results_by_outdeg.merge(&other.results_by_outdeg);
    }
}

/// Reusable per-worker buffers: the flood scratch plus the four
/// response-accumulation arrays. Allocated once per worker thread,
/// reused for every source — the flood path performs **zero heap
/// allocation per source**.
struct WorkerScratch {
    flood: FloodScratch,
    rb: Vec<f64>,
    su: Vec<f64>,
    ru: Vec<f64>,
    msgs: Vec<f64>,
}

impl WorkerScratch {
    fn new(n: usize) -> Self {
        WorkerScratch {
            flood: FloodScratch::new(),
            rb: vec![0.0; n],
            su: vec![0.0; n],
            ru: vec![0.0; n],
            msgs: vec![0.0; n],
        }
    }
}

/// Charges one shard of sources into `acc` using the allocation-free
/// scratch flood. Per-index charge order matches the Reference engine
/// exactly, so a single-shard run is bitwise identical to it.
fn charge_shard(
    inst: &NetworkInstance,
    t: &ClusterTables,
    sources: &[u32],
    src_weight: f64,
    ws: &mut WorkerScratch,
    acc: &mut QueryCharges,
) {
    let cm = &inst.config.costs;
    let qr = inst.config.query_rate;
    let ttl = inst.config.ttl;
    let client_conn = inst.config.redundancy_k as f64;
    let qbytes = cm.query_bytes();
    let send_q = cm.send_query_units();
    let recv_q = cm.recv_query_units();

    for &i in sources {
        let iu = i as usize;
        inst.topology.flood_into(&mut ws.flood, i, ttl);
        let fs = &ws.flood;
        let num_clients = inst.clusters[iu].clients.len() as f64;
        // Queries per second originating in cluster i (scaled if
        // sources are sampled).
        let w_all = t.users[iu] * qr * src_weight;
        let w_client_total = num_clients * qr * src_weight;

        // 1+2. Query propagation and index probes — O(reach), not
        // O(n): a cluster with zero sent and received copies was not
        // reached, contributes nothing, and is not on the touched
        // list.
        for &v in fs.order() {
            let vu = v as usize;
            let s = fs.sent(v) as f64;
            if s > 0.0 {
                acc.sp_out[vu] += w_all * s * qbytes;
                acc.sp_units[vu] += w_all * s * (send_q + cm.multiplex_units(t.partner_conn[vu]));
            }
            let r = fs.recv(v) as f64;
            if r > 0.0 {
                acc.sp_in[vu] += w_all * r * qbytes;
                acc.sp_units[vu] += w_all * r * (recv_q + cm.multiplex_units(t.partner_conn[vu]));
            }
        }
        for &v in fs.order() {
            acc.sp_units[v as usize] += w_all * cm.process_query_units(t.n_results[v as usize]);
        }

        // 3. Responses up the predecessor tree.
        for &v in fs.order() {
            let vu = v as usize;
            ws.rb[vu] = t.resp_b[vu];
            ws.su[vu] = t.resp_su[vu];
            ws.ru[vu] = t.resp_ru[vu];
            ws.msgs[vu] = t.p_respond[vu];
        }
        fs.accumulate_up(&mut ws.rb);
        fs.accumulate_up(&mut ws.su);
        fs.accumulate_up(&mut ws.ru);
        fs.accumulate_up(&mut ws.msgs);
        for &v in fs.order() {
            let vu = v as usize;
            let mux = cm.multiplex_units(t.partner_conn[vu]);
            if v != i {
                // v forwards its whole subtree's responses to its
                // parent (incl. its own response).
                acc.sp_out[vu] += w_all * ws.rb[vu];
                acc.sp_units[vu] += w_all * (ws.su[vu] + mux * ws.msgs[vu]);
            }
            // v receives its children's subtrees.
            let in_b = ws.rb[vu] - t.resp_b[vu];
            if in_b > 0.0 {
                acc.sp_in[vu] += w_all * in_b;
                acc.sp_units[vu] +=
                    w_all * ((ws.ru[vu] - t.resp_ru[vu]) + mux * (ws.msgs[vu] - t.p_respond[vu]));
            }
        }

        // 4. Cluster-local legs for client-submitted queries. rb[i] is
        // now the total expected response bytes of the whole reach
        // (own cluster included), msgs[i] the total response messages.
        if num_clients > 0.0 {
            let cw = qr * src_weight; // per client
            acc.cl_out[iu] += cw * qbytes;
            acc.cl_units[iu] += cw * (send_q + cm.multiplex_units(client_conn));
            acc.cl_in[iu] += cw * ws.rb[iu];
            acc.cl_units[iu] += cw * (ws.ru[iu] + cm.multiplex_units(client_conn) * ws.msgs[iu]);

            let mux = cm.multiplex_units(t.partner_conn[iu]);
            acc.sp_in[iu] += w_client_total * qbytes;
            acc.sp_units[iu] += w_client_total * (recv_q + mux);
            acc.sp_out[iu] += w_client_total * ws.rb[iu];
            acc.sp_units[iu] += w_client_total * (ws.su[iu] + mux * ws.msgs[iu]);
        }

        // Results, EPL, reach.
        let total_results: f64 = fs.order().iter().map(|&v| t.n_results[v as usize]).sum();
        acc.results_stats.push(total_results);
        acc.results_weighted_sum += t.users[iu] * total_results;
        acc.results_weight += t.users[iu];
        acc.results_by_outdeg
            .push(inst.topology.degree(i) as u64, total_results);
        for &v in fs.order() {
            if v != i {
                let vu = v as usize;
                acc.epl_num += t.users[iu] * t.p_respond[vu] * fs.depth(v) as f64;
                acc.epl_den += t.users[iu] * t.p_respond[vu];
            }
        }
        acc.reach_stats.push(fs.reach() as f64);

        // Clear scratch (only reached indices were written).
        for &v in fs.order() {
            let vu = v as usize;
            ws.rb[vu] = 0.0;
            ws.su[vu] = 0.0;
            ws.ru[vu] = 0.0;
            ws.msgs[vu] = 0.0;
        }
    }
}

/// Fast engine: shard the source list, fan shards over scoped worker
/// threads, merge per-shard accumulators in shard order.
fn charge_queries_fast(
    inst: &NetworkInstance,
    t: &ClusterTables,
    sources: &[u32],
    src_weight: f64,
    opts: &AnalysisOptions,
) -> QueryCharges {
    let n = inst.num_clusters();
    let shards = if opts.shards > 0 {
        opts.shards
    } else {
        DEFAULT_SHARDS
    }
    .min(sources.len().max(1));
    let threads = if opts.threads > 0 {
        opts.threads
    } else {
        std::thread::available_parallelism().map_or(1, |v| v.get())
    }
    .min(shards)
    .max(1);

    // Contiguous shard ranges covering the source list.
    let per = sources.len() / shards;
    let extra = sources.len() % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0usize;
    for s in 0..shards {
        let len = per + usize::from(s < extra);
        ranges.push(start..start + len);
        start += len;
    }

    let mut total = QueryCharges::new(n);
    if threads == 1 {
        // Same shard-by-shard accumulation as the parallel path, so
        // the numbers are bitwise identical at every thread count.
        let mut ws = WorkerScratch::new(n);
        for r in ranges {
            let mut acc = QueryCharges::new(n);
            charge_shard(inst, t, &sources[r], src_weight, &mut ws, &mut acc);
            total.merge(&acc);
        }
        return total;
    }

    let mut slots: Vec<Option<QueryCharges>> = (0..shards).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut ws = WorkerScratch::new(n);
                    let mut done: Vec<(usize, QueryCharges)> = Vec::new();
                    loop {
                        let s = next.fetch_add(1, Ordering::Relaxed);
                        if s >= shards {
                            break;
                        }
                        let mut acc = QueryCharges::new(n);
                        charge_shard(
                            inst,
                            t,
                            &sources[ranges[s].clone()],
                            src_weight,
                            &mut ws,
                            &mut acc,
                        );
                        done.push((s, acc));
                    }
                    done
                })
            })
            .collect();
        for h in handles {
            for (s, acc) in h.join().expect("analysis worker panicked") {
                slots[s] = Some(acc);
            }
        }
    });
    for acc in slots {
        total.merge(&acc.expect("every shard charged exactly once"));
    }
    total
}

/// Reference engine: the original sequential implementation — one
/// fresh allocation set per source and an O(n) propagation scan. Kept
/// verbatim as the oracle the Fast engine is tested against and the
/// baseline the benchmarks measure speedup from.
fn charge_queries_reference(
    inst: &NetworkInstance,
    t: &ClusterTables,
    sources: &[u32],
    src_weight: f64,
) -> QueryCharges {
    let n = inst.num_clusters();
    let cm = &inst.config.costs;
    let qr = inst.config.query_rate;
    let ttl = inst.config.ttl;
    let client_conn = inst.config.redundancy_k as f64;
    let qbytes = cm.query_bytes();
    let send_q = cm.send_query_units();
    let recv_q = cm.recv_query_units();

    let mut acc = QueryCharges::new(n);
    // Response-accumulation scratch, cleared per source via the BFS
    // order.
    let mut rb = vec![0.0f64; n];
    let mut su = vec![0.0f64; n];
    let mut ru = vec![0.0f64; n];
    let mut msgs = vec![0.0f64; n];

    for &i in sources {
        let iu = i as usize;
        let (fl, mc) = inst.topology.flood(i, ttl);
        let num_clients = inst.clusters[iu].clients.len() as f64;
        let w_all = t.users[iu] * qr * src_weight;
        let w_client_total = num_clients * qr * src_weight;

        // 1. Query propagation (including redundant copies).
        for v in 0..n {
            let s = mc.sent[v] as f64;
            if s > 0.0 {
                acc.sp_out[v] += w_all * s * qbytes;
                acc.sp_units[v] += w_all * s * (send_q + cm.multiplex_units(t.partner_conn[v]));
            }
            let r = mc.recv[v] as f64;
            if r > 0.0 {
                acc.sp_in[v] += w_all * r * qbytes;
                acc.sp_units[v] += w_all * r * (recv_q + cm.multiplex_units(t.partner_conn[v]));
            }
        }

        // 2. Index probe at every reached cluster.
        for &v in &fl.order {
            acc.sp_units[v as usize] += w_all * cm.process_query_units(t.n_results[v as usize]);
        }

        // 3. Responses up the predecessor tree.
        for &v in &fl.order {
            let vu = v as usize;
            rb[vu] = t.resp_b[vu];
            su[vu] = t.resp_su[vu];
            ru[vu] = t.resp_ru[vu];
            msgs[vu] = t.p_respond[vu];
        }
        fl.accumulate_up(&mut rb);
        fl.accumulate_up(&mut su);
        fl.accumulate_up(&mut ru);
        fl.accumulate_up(&mut msgs);
        for &v in &fl.order {
            let vu = v as usize;
            let mux = cm.multiplex_units(t.partner_conn[vu]);
            if v != i {
                acc.sp_out[vu] += w_all * rb[vu];
                acc.sp_units[vu] += w_all * (su[vu] + mux * msgs[vu]);
            }
            let in_b = rb[vu] - t.resp_b[vu];
            if in_b > 0.0 {
                acc.sp_in[vu] += w_all * in_b;
                acc.sp_units[vu] +=
                    w_all * ((ru[vu] - t.resp_ru[vu]) + mux * (msgs[vu] - t.p_respond[vu]));
            }
        }

        // 4. Cluster-local legs for client-submitted queries.
        if num_clients > 0.0 {
            let cw = qr * src_weight; // per client
            acc.cl_out[iu] += cw * qbytes;
            acc.cl_units[iu] += cw * (send_q + cm.multiplex_units(client_conn));
            acc.cl_in[iu] += cw * rb[iu];
            acc.cl_units[iu] += cw * (ru[iu] + cm.multiplex_units(client_conn) * msgs[iu]);

            let mux = cm.multiplex_units(t.partner_conn[iu]);
            acc.sp_in[iu] += w_client_total * qbytes;
            acc.sp_units[iu] += w_client_total * (recv_q + mux);
            acc.sp_out[iu] += w_client_total * rb[iu];
            acc.sp_units[iu] += w_client_total * (su[iu] + mux * msgs[iu]);
        }

        // Results, EPL, reach.
        let total_results: f64 = fl.order.iter().map(|&v| t.n_results[v as usize]).sum();
        acc.results_stats.push(total_results);
        acc.results_weighted_sum += t.users[iu] * total_results;
        acc.results_weight += t.users[iu];
        acc.results_by_outdeg
            .push(inst.topology.degree(i) as u64, total_results);
        for &v in &fl.order {
            if v != i {
                let vu = v as usize;
                acc.epl_num += t.users[iu] * t.p_respond[vu] * fl.depth[vu] as f64;
                acc.epl_den += t.users[iu] * t.p_respond[vu];
            }
        }
        acc.reach_stats.push(fl.reach() as f64);

        for &v in &fl.order {
            let vu = v as usize;
            rb[vu] = 0.0;
            su[vu] = 0.0;
            ru[vu] = 0.0;
            msgs[vu] = 0.0;
        }
    }
    acc
}

/// Analyzes one instance. See the module docs for the charging rules.
///
/// `rng` is only used when `opts.max_sources` triggers source
/// sampling.
pub fn analyze(
    inst: &NetworkInstance,
    model: &QueryModel,
    opts: &AnalysisOptions,
    rng: &mut SpRng,
) -> AnalysisResult {
    let n = inst.num_clusters();
    let k = inst.config.redundancy_k;
    let kf = k as f64;
    let cm = &inst.config.costs;
    let ur = inst.config.update_rate;

    // ---- Per-cluster precomputation -------------------------------
    let mut cache = MatchCache::new();
    let mut tables = ClusterTables {
        n_results: vec![0.0; n],
        p_respond: vec![0.0; n],
        resp_b: vec![0.0; n],
        resp_su: vec![0.0; n],
        resp_ru: vec![0.0; n],
        users: vec![0.0; n],
        partner_conn: vec![0.0; n],
    };
    for i in 0..n {
        let files = inst.cluster_files(i) as f64;
        tables.n_results[i] = model.expected_results(files);
        let p = cache.prob_some_match(model, inst.cluster_files(i).min(u64::from(u32::MAX)) as u32);
        tables.p_respond[i] = p;
        let k_addrs = cache.expected_responding_collections(model, inst.cluster_member_files(i));
        let nr = tables.n_results[i];
        tables.resp_b[i] = cm.expected_response_bytes(p, k_addrs, nr);
        tables.resp_su[i] = cm.expected_send_response_units(p, k_addrs, nr);
        tables.resp_ru[i] = cm.expected_recv_response_units(p, k_addrs, nr);
        let cluster = &inst.clusters[i];
        tables.users[i] = (cluster.clients.len() + cluster.partners.len()) as f64;
        tables.partner_conn[i] = inst.connections(cluster.partners[0]);
    }
    let client_conn = kf;

    // ---- Source selection ------------------------------------------
    let all_sources: Vec<u32>;
    let (sources, src_weight): (&[u32], f64) = match opts.max_sources {
        Some(s) if s > 0 && s < n => {
            all_sources = rng
                .sample_distinct(n, s)
                .into_iter()
                .map(|x| x as u32)
                .collect();
            (&all_sources, n as f64 / s as f64)
        }
        _ => {
            all_sources = (0..n as u32).collect();
            (&all_sources, 1.0)
        }
    };

    // ---- Query charges, one flood per source cluster ---------------
    let q = match opts.engine {
        Engine::Fast => charge_queries_fast(inst, &tables, sources, src_weight, opts),
        Engine::Reference => charge_queries_reference(inst, &tables, sources, src_weight),
    };
    let QueryCharges {
        mut sp_in,
        sp_out,
        mut sp_units,
        cl_in,
        cl_out,
        cl_units,
        results_stats,
        results_weight,
        results_weighted_sum,
        epl_num,
        epl_den,
        reach_stats,
        results_by_outdeg,
    } = q;

    // ---- Join and update charges (exact, per peer) ------------------
    // Direct per-peer extras (own-rate costs that differ per peer).
    // Peers only *send* on their own behalf — everything a peer
    // receives is already charged through the cluster-level
    // accumulators — so there is no per-peer incoming buffer.
    let num_peers = inst.num_peers();
    let mut peer_out = vec![0.0f64; num_peers];
    let mut peer_units = vec![0.0f64; num_peers];

    for i in 0..n {
        let cluster = &inst.clusters[i];
        let mux_p = cm.multiplex_units(tables.partner_conn[i]);
        let mux_c = cm.multiplex_units(client_conn);
        for &c in &cluster.clients {
            let peer = &inst.peers[c as usize];
            let x = peer.files as f64;
            let jr = 1.0 / peer.lifespan_secs;
            // Join: metadata to every partner.
            peer_out[c as usize] += jr * kf * cm.join_bytes(x);
            peer_units[c as usize] += jr * kf * (cm.send_join_units(x) + mux_c);
            sp_in[i] += jr * kf * cm.join_bytes(x);
            sp_units[i] += jr * kf * (cm.recv_join_units(x) + cm.process_join_units(x) + mux_p);
            // Updates: one per partner per update.
            peer_out[c as usize] += ur * kf * cm.update_bytes();
            peer_units[c as usize] += ur * kf * (cm.send_update_units() + mux_c);
            sp_in[i] += ur * kf * cm.update_bytes();
            sp_units[i] += ur * kf * (cm.recv_update_units() + cm.process_update_units() + mux_p);
        }
        for &p in &cluster.partners {
            let peer = &inst.peers[p as usize];
            let x = peer.files as f64;
            let jr = 1.0 / peer.lifespan_secs;
            // A (re)joining partner indexes its own collection.
            peer_units[p as usize] += jr * cm.process_join_units(x);
            // Its own updates hit its own index.
            peer_units[p as usize] += ur * cm.process_update_units();
            if k > 1 {
                let co = kf - 1.0;
                // Share own collection metadata with co-partners.
                peer_out[p as usize] += jr * co * cm.join_bytes(x);
                peer_units[p as usize] += jr * co * (cm.send_join_units(x) + mux_p);
                sp_in[i] += jr * co * cm.join_bytes(x);
                sp_units[i] += jr * co * (cm.recv_join_units(x) + cm.process_join_units(x) + mux_p);
                // Propagate own updates to co-partners.
                peer_out[p as usize] += ur * co * cm.update_bytes();
                peer_units[p as usize] += ur * co * (cm.send_update_units() + mux_p);
                sp_in[i] += ur * co * cm.update_bytes();
                sp_units[i] +=
                    ur * co * (cm.recv_update_units() + cm.process_update_units() + mux_p);
            }
        }
    }

    // ---- Distribute cluster-level charges and convert units ---------
    let mut loads = vec![Load::ZERO; num_peers];
    for i in 0..n {
        let cluster = &inst.clusters[i];
        let share = 1.0 / kf;
        for &p in &cluster.partners {
            let pu = p as usize;
            loads[pu].in_bw = sp_in[i] * share * BITS_PER_BYTE;
            loads[pu].out_bw = (peer_out[pu] + sp_out[i] * share) * BITS_PER_BYTE;
            loads[pu].proc = (peer_units[pu] + sp_units[i] * share) * UNIT_CYCLES;
        }
        for &c in &cluster.clients {
            let cu = c as usize;
            loads[cu].in_bw = cl_in[i] * BITS_PER_BYTE;
            loads[cu].out_bw = (peer_out[cu] + cl_out[i]) * BITS_PER_BYTE;
            loads[cu].proc = (peer_units[cu] + cl_units[i]) * UNIT_CYCLES;
        }
    }

    // ---- Summaries ---------------------------------------------------
    let mut aggregate = Load::ZERO;
    let mut sp_sum = Load::ZERO;
    let mut sp_max = Load::ZERO;
    let mut client_sum = Load::ZERO;
    let mut num_partners = 0usize;
    let mut num_clients = 0usize;
    let mut sp_out_bw_by_outdeg = GroupedStats::new();
    for (idx, l) in loads.iter().enumerate() {
        aggregate += *l;
        match inst.peers[idx].role {
            Role::Partner { cluster } => {
                sp_sum += *l;
                sp_max = sp_max.max(l);
                num_partners += 1;
                sp_out_bw_by_outdeg.push(inst.topology.degree(cluster) as u64, l.out_bw);
            }
            Role::Client { .. } => {
                client_sum += *l;
                num_clients += 1;
            }
        }
    }
    let metrics = InstanceMetrics {
        aggregate,
        sp_mean: sp_sum.scaled(1.0 / num_partners.max(1) as f64),
        sp_max,
        client_mean: client_sum.scaled(1.0 / num_clients.max(1) as f64),
        results_per_query: if results_weight > 0.0 {
            results_weighted_sum / results_weight
        } else {
            results_stats.mean()
        },
        epl: if epl_den > 0.0 {
            epl_num / epl_den
        } else {
            0.0
        },
        mean_reach_clusters: reach_stats.mean(),
        num_clusters: n,
        num_peers,
        num_partners,
        num_clients,
        mean_outdegree: inst.topology.mean_degree(),
    };
    AnalysisResult {
        loads,
        metrics,
        sp_out_bw_by_outdegree: sp_out_bw_by_outdeg,
        results_by_outdegree: results_by_outdeg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Config, GraphType};

    fn analyze_config(cfg: &Config, seed: u64) -> AnalysisResult {
        let mut rng = SpRng::seed_from_u64(seed);
        let inst = NetworkInstance::generate(cfg, &mut rng).unwrap();
        let model = QueryModel::from_config(&cfg.query_model);
        analyze(&inst, &model, &AnalysisOptions::default(), &mut rng)
    }

    fn strong_cfg(graph_size: usize, cluster: usize) -> Config {
        Config {
            graph_type: GraphType::StronglyConnected,
            graph_size,
            cluster_size: cluster,
            ttl: 1,
            ..Config::default()
        }
    }

    #[test]
    fn bandwidth_is_conserved() {
        // Every byte sent is a byte received somewhere: aggregate
        // incoming == aggregate outgoing bandwidth.
        for cfg in [
            strong_cfg(200, 10),
            Config {
                graph_size: 300,
                cluster_size: 10,
                ..Config::default()
            },
            Config {
                graph_size: 300,
                cluster_size: 10,
                ..Config::default()
            }
            .with_redundancy(true),
        ] {
            let r = analyze_config(&cfg, 42);
            let rel = (r.metrics.aggregate.in_bw - r.metrics.aggregate.out_bw).abs()
                / r.metrics.aggregate.in_bw;
            assert!(
                rel < 1e-9,
                "in {} vs out {}",
                r.metrics.aggregate.in_bw,
                r.metrics.aggregate.out_bw
            );
        }
    }

    #[test]
    fn strong_ttl1_reaches_everyone_and_epl_is_one() {
        let r = analyze_config(&strong_cfg(200, 10), 1);
        assert!((r.metrics.mean_reach_clusters - 20.0).abs() < 1e-9);
        assert!((r.metrics.epl - 1.0).abs() < 1e-9);
    }

    #[test]
    fn super_peers_carry_far_more_load_than_clients() {
        let r = analyze_config(&strong_cfg(400, 20), 2);
        assert!(
            r.metrics.sp_mean.total_bw() > 20.0 * r.metrics.client_mean.total_bw(),
            "sp {} vs client {}",
            r.metrics.sp_mean.total_bw(),
            r.metrics.client_mean.total_bw()
        );
        assert!(r.metrics.sp_mean.proc > r.metrics.client_mean.proc);
    }

    #[test]
    fn results_match_query_model_linearity() {
        // With full reach, expected results per query = match_rate ×
        // total files in the network, independent of clustering.
        let cfg = strong_cfg(300, 10);
        let mut rng = SpRng::seed_from_u64(7);
        let inst = NetworkInstance::generate(&cfg, &mut rng).unwrap();
        let model = QueryModel::from_config(&cfg.query_model);
        let total_files: f64 = (0..inst.num_clusters())
            .map(|i| inst.cluster_files(i) as f64)
            .sum();
        let r = analyze(&inst, &model, &AnalysisOptions::default(), &mut rng);
        let expect = model.expected_results(total_files);
        assert!(
            (r.metrics.results_per_query - expect).abs() / expect < 1e-9,
            "{} vs {expect}",
            r.metrics.results_per_query
        );
    }

    #[test]
    fn rule_1_cluster_size_tradeoff_on_strong_network() {
        // Rule of thumb #1: larger clusters lower aggregate load but
        // raise individual super-peer load.
        let small = analyze_config(&strong_cfg(1000, 5), 3);
        let large = analyze_config(&strong_cfg(1000, 50), 3);
        assert!(
            large.metrics.aggregate.total_bw() < small.metrics.aggregate.total_bw(),
            "aggregate: large {} vs small {}",
            large.metrics.aggregate.total_bw(),
            small.metrics.aggregate.total_bw()
        );
        assert!(
            large.metrics.sp_mean.total_bw() > small.metrics.sp_mean.total_bw(),
            "individual: large {} vs small {}",
            large.metrics.sp_mean.total_bw(),
            small.metrics.sp_mean.total_bw()
        );
    }

    #[test]
    fn rule_2_redundancy_halves_individual_sp_bandwidth() {
        let base = strong_cfg(1000, 20);
        let plain = analyze_config(&base, 4);
        let red = analyze_config(&base.clone().with_redundancy(true), 4);
        // Individual partner bandwidth drops sharply (paper: ~48% at
        // cluster 100; direction is what matters here).
        assert!(
            red.metrics.sp_mean.total_bw() < 0.75 * plain.metrics.sp_mean.total_bw(),
            "red {} vs plain {}",
            red.metrics.sp_mean.total_bw(),
            plain.metrics.sp_mean.total_bw()
        );
        // Aggregate bandwidth barely moves (paper: +2.5%).
        let rel = (red.metrics.aggregate.total_bw() - plain.metrics.aggregate.total_bw())
            / plain.metrics.aggregate.total_bw();
        assert!(rel.abs() < 0.15, "aggregate moved {rel}");
    }

    #[test]
    fn sampled_sources_approximate_full_analysis() {
        let cfg = Config {
            graph_size: 600,
            cluster_size: 10,
            ..Config::default()
        };
        let mut rng = SpRng::seed_from_u64(9);
        let inst = NetworkInstance::generate(&cfg, &mut rng).unwrap();
        let model = QueryModel::from_config(&cfg.query_model);
        let full = analyze(&inst, &model, &AnalysisOptions::default(), &mut rng);
        let sampled = analyze(
            &inst,
            &model,
            &AnalysisOptions {
                max_sources: Some(30),
                ..AnalysisOptions::default()
            },
            &mut rng,
        );
        let rel = (sampled.metrics.aggregate.total_bw() - full.metrics.aggregate.total_bw())
            / full.metrics.aggregate.total_bw();
        assert!(rel.abs() < 0.25, "sampled aggregate off by {rel}");
    }

    #[test]
    fn ttl_zero_means_local_results_only() {
        let cfg = Config {
            ttl: 0,
            graph_size: 100,
            cluster_size: 10,
            ..Config::default()
        };
        let r = analyze_config(&cfg, 5);
        assert!((r.metrics.mean_reach_clusters - 1.0).abs() < 1e-9);
        assert_eq!(r.metrics.epl, 0.0);
        // Results come only from the own cluster: far fewer than the
        // full network's.
        assert!(r.metrics.results_per_query < 5.0);
    }

    #[test]
    fn pure_network_all_loads_on_super_peers() {
        let cfg = Config {
            graph_size: 100,
            cluster_size: 1,
            ..Config::default()
        };
        let r = analyze_config(&cfg, 6);
        assert_eq!(r.metrics.num_clients, 0);
        assert_eq!(r.metrics.num_partners, 100);
        assert!(r.metrics.aggregate.total_bw() > 0.0);
    }

    #[test]
    fn redundant_queries_make_higher_ttl_cost_more_at_full_reach() {
        // Rule #4: once reach saturates, extra TTL only adds redundant
        // transmissions.
        let lo = analyze_config(
            &Config {
                graph_size: 400,
                cluster_size: 10,
                avg_outdegree: 10.0,
                ttl: 3,
                ..Config::default()
            },
            8,
        );
        let hi = analyze_config(
            &Config {
                graph_size: 400,
                cluster_size: 10,
                avg_outdegree: 10.0,
                ttl: 7,
                ..Config::default()
            },
            8,
        );
        assert!((lo.metrics.mean_reach_clusters - 40.0).abs() < 1.0);
        assert!((hi.metrics.mean_reach_clusters - 40.0).abs() < 1.0);
        assert!(
            hi.metrics.aggregate.total_bw() > lo.metrics.aggregate.total_bw(),
            "ttl 7 {} not above ttl 3 {}",
            hi.metrics.aggregate.total_bw(),
            lo.metrics.aggregate.total_bw()
        );
    }

    #[test]
    fn reference_engine_matches_fast_engine() {
        // The in-crate smoke check; the full matrix lives in
        // tests/engine_determinism.rs.
        let cfg = Config {
            graph_size: 300,
            cluster_size: 10,
            ..Config::default()
        };
        let mut rng = SpRng::seed_from_u64(11);
        let inst = NetworkInstance::generate(&cfg, &mut rng).unwrap();
        let model = QueryModel::from_config(&cfg.query_model);
        let fast = analyze(&inst, &model, &AnalysisOptions::default(), &mut rng);
        let reference = analyze(
            &inst,
            &model,
            &AnalysisOptions {
                engine: Engine::Reference,
                ..AnalysisOptions::default()
            },
            &mut rng,
        );
        let rel = (fast.metrics.aggregate.total_bw() - reference.metrics.aggregate.total_bw())
            .abs()
            / reference.metrics.aggregate.total_bw();
        assert!(rel < 1e-12, "engines disagree: rel {rel}");
    }
}
