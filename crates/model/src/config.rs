//! Configuration parameters (the paper's Table 1).
//!
//! A *configuration* describes both the desired topology and the user
//! behavior; one configuration is analyzed over many stochastic
//! instances. Defaults are the paper's Table 1 defaults.

use serde::{Deserialize, Serialize};

use crate::costs::CostModel;
use crate::population::PopulationModel;
use crate::query_model::QueryModelConfig;

/// The type of super-peer overlay graph (Table 1, "Graph Type").
///
/// The paper studies the first two; the Erdős–Rényi and random-regular
/// families are reproduction extensions used by the topology-ablation
/// experiments to separate the effect of mean degree from the effect of
/// degree *spread* (Figures 7 and 12 are all about spread).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GraphType {
    /// Every super-peer neighbors every other ("strongly connected").
    /// The analysis engine evaluates this case without materializing
    /// the Θ(n²) edge set.
    StronglyConnected,
    /// Power-law outdegrees around the configured average (PLOD).
    PowerLaw,
    /// Erdős–Rényi `G(n, p)` at the configured average outdegree
    /// (Poisson degrees — moderate spread). Extension.
    ErdosRenyi,
    /// Random regular graph at the configured average outdegree
    /// (no spread). Extension.
    RandomRegular,
}

/// One experiment configuration (Table 1), plus the cost/population/
/// query sub-models it is evaluated under.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// The overlay family. Default: power-law.
    pub graph_type: GraphType,
    /// Total number of peers in the network. Default: 10 000.
    pub graph_size: usize,
    /// Nodes per cluster, **including** the super-peer (or both
    /// partners when redundancy is on). Default: 10.
    pub cluster_size: usize,
    /// Number of partners forming each virtual super-peer: 1 = no
    /// redundancy (the paper's default), 2 = the paper's
    /// "super-peer redundancy". Values above 2 are an extension the
    /// paper motivates but does not evaluate (connection count grows as
    /// k²).
    pub redundancy_k: usize,
    /// Average outdegree of the super-peer overlay (power-law graphs
    /// only; ignored for strongly connected). Default: 3.1, the
    /// measured Gnutella average.
    pub avg_outdegree: f64,
    /// Query time-to-live. Default: 7 (the Gnutella default).
    pub ttl: u16,
    /// Expected queries per user per second. Default: 9.26 × 10⁻³.
    pub query_rate: f64,
    /// Expected updates per user per second. Default: 1.85 × 10⁻³
    /// (derived from the OpenNap download rate; the paper notes overall
    /// performance is insensitive to it).
    pub update_rate: f64,
    /// Atomic-action cost model (Table 2).
    pub costs: CostModel,
    /// Per-peer file-count and lifespan model (the Saroiu et al.
    /// stand-in).
    pub population: PopulationModel,
    /// Appendix B query model parameters.
    pub query_model: QueryModelConfig,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            graph_type: GraphType::PowerLaw,
            graph_size: 10_000,
            cluster_size: 10,
            redundancy_k: 1,
            avg_outdegree: 3.1,
            ttl: 7,
            query_rate: 9.26e-3,
            update_rate: 1.85e-3,
            costs: CostModel::default(),
            population: PopulationModel::default(),
            query_model: QueryModelConfig::default(),
        }
    }
}

/// A configuration validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `graph_size` was zero.
    EmptyNetwork,
    /// `cluster_size` was zero or exceeded `graph_size`.
    BadClusterSize,
    /// `redundancy_k` was zero or did not fit in the cluster size.
    BadRedundancy,
    /// A rate or outdegree was negative or non-finite.
    BadNumeric(&'static str),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::EmptyNetwork => write!(f, "graph_size must be positive"),
            ConfigError::BadClusterSize => {
                write!(f, "cluster_size must be in 1..=graph_size")
            }
            ConfigError::BadRedundancy => {
                write!(f, "redundancy_k must be in 1..=cluster_size")
            }
            ConfigError::BadNumeric(field) => {
                write!(f, "{field} must be finite and non-negative")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// The paper's boolean "Redundancy" parameter: on = 2 partners.
    pub fn with_redundancy(mut self, on: bool) -> Self {
        self.redundancy_k = if on { 2 } else { 1 };
        self
    }

    /// Whether any redundancy is configured.
    pub fn has_redundancy(&self) -> bool {
        self.redundancy_k > 1
    }

    /// Number of clusters `n = GraphSize / ClusterSize` (Step 1 of the
    /// analysis), at least one.
    pub fn num_clusters(&self) -> usize {
        (self.graph_size / self.cluster_size).max(1)
    }

    /// Mean number of *clients* per cluster: the cluster size minus the
    /// partners (`c = ClusterSize − 1` without redundancy,
    /// `ClusterSize − 2` with, per Section 4.1 Step 1).
    pub fn mean_clients(&self) -> f64 {
        (self.cluster_size as f64 - self.redundancy_k as f64).max(0.0)
    }

    /// The scale-simulation preset: Table 1 user behavior on an
    /// overlay of `peers` total peers, with the TTL lowered to 3 so a
    /// single flood visits ~tens of clusters instead of saturating the
    /// overlay. At TTL 7 and outdegree 3.1 a power-law flood reaches
    /// most of a small graph, which measures memory bandwidth rather
    /// than event throughput; TTL 3 keeps per-query work constant as
    /// `peers` grows, which is what an events/sec-vs-peers curve needs.
    pub fn scale_preset(peers: usize) -> Self {
        Config {
            graph_size: peers,
            ttl: 3,
            ..Config::default()
        }
    }

    /// Checks parameter sanity.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.graph_size == 0 {
            return Err(ConfigError::EmptyNetwork);
        }
        if self.cluster_size == 0 || self.cluster_size > self.graph_size {
            return Err(ConfigError::BadClusterSize);
        }
        if self.redundancy_k == 0 || self.redundancy_k > self.cluster_size {
            return Err(ConfigError::BadRedundancy);
        }
        for (name, v) in [
            ("avg_outdegree", self.avg_outdegree),
            ("query_rate", self.query_rate),
            ("update_rate", self.update_rate),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(ConfigError::BadNumeric(name));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_1() {
        let c = Config::default();
        assert_eq!(c.graph_type, GraphType::PowerLaw);
        assert_eq!(c.graph_size, 10_000);
        assert_eq!(c.cluster_size, 10);
        assert_eq!(c.redundancy_k, 1);
        assert!((c.avg_outdegree - 3.1).abs() < 1e-12);
        assert_eq!(c.ttl, 7);
        assert!((c.query_rate - 9.26e-3).abs() < 1e-12);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn cluster_arithmetic() {
        let c = Config::default();
        assert_eq!(c.num_clusters(), 1000);
        assert_eq!(c.mean_clients(), 9.0);
        let r = c.clone().with_redundancy(true);
        assert_eq!(r.redundancy_k, 2);
        assert_eq!(r.mean_clients(), 8.0);
        assert!(r.has_redundancy());
    }

    #[test]
    fn pure_network_is_degenerate_super_peer_network() {
        // "A pure P2P network is actually a degenerate super-peer
        // network where cluster size is 1."
        let c = Config {
            cluster_size: 1,
            ..Config::default()
        };
        assert_eq!(c.num_clusters(), 10_000);
        assert_eq!(c.mean_clients(), 0.0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_errors() {
        let cases: Vec<(Config, ConfigError)> = vec![
            (
                Config {
                    graph_size: 0,
                    ..Config::default()
                },
                ConfigError::EmptyNetwork,
            ),
            (
                Config {
                    cluster_size: 0,
                    ..Config::default()
                },
                ConfigError::BadClusterSize,
            ),
            (
                Config {
                    cluster_size: 20_000,
                    ..Config::default()
                },
                ConfigError::BadClusterSize,
            ),
            (
                Config {
                    redundancy_k: 11, // cluster_size is 10
                    ..Config::default()
                },
                ConfigError::BadRedundancy,
            ),
        ];
        for (cfg, err) in cases {
            assert_eq!(cfg.validate(), Err(err));
        }
        let nan = Config {
            query_rate: f64::NAN,
            ..Config::default()
        };
        assert!(matches!(nan.validate(), Err(ConfigError::BadNumeric(_))));
    }

    #[test]
    fn scale_preset_is_valid_at_every_decade() {
        for peers in [4_000, 40_000, 400_000, 1_000_000] {
            let c = Config::scale_preset(peers);
            assert_eq!(c.graph_size, peers);
            assert_eq!(c.ttl, 3);
            assert_eq!(c.cluster_size, 10);
            assert!(c.validate().is_ok());
        }
    }

    #[test]
    fn single_cluster_network() {
        let c = Config {
            graph_size: 100,
            cluster_size: 100,
            ..Config::default()
        };
        assert_eq!(c.num_clusters(), 1);
        assert_eq!(c.mean_clients(), 99.0);
    }

    #[test]
    fn error_messages_name_fields() {
        assert!(ConfigError::BadNumeric("query_rate")
            .to_string()
            .contains("query_rate"));
    }
}
