//! The paper's cost model: Table 2 atomic-action costs, Table 3 general
//! statistics, and the Appendix A packet-multiplex overhead.
//!
//! Bandwidth costs are in **bytes** (message sizes follow the Gnutella
//! protocol: 22-byte Gnutella header + flags + payload + Ethernet and
//! TCP/IP headers). Processing costs are in **units**, where one unit
//! is the cost of sending and receiving an empty Gnutella message —
//! measured by the authors as roughly 7200 cycles on a Pentium III
//! 930 MHz ([`UNIT_CYCLES`]).
//!
//! The published table's decimal points are partially corrupted in the
//! available text; DESIGN.md §4 records the reconstruction used here.
//! All shape results (knees, crossovers, winners) were verified to be
//! insensitive to these constants at the ±50% level.

use serde::{Deserialize, Serialize};

/// Cycles per processing unit: the measured cost of sending and
/// receiving an empty Gnutella message.
pub const UNIT_CYCLES: f64 = 7200.0;

/// Bits per byte, for converting byte costs to the bps loads the paper
/// plots.
pub const BITS_PER_BYTE: f64 = 8.0;

/// General statistics (the paper's Table 3), gathered by the authors
/// over a month of Gnutella observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneralStats {
    /// Expected length of a query string, bytes.
    pub query_length: f64,
    /// Average size of one result record, bytes.
    pub result_record: f64,
    /// Average size of the metadata for a single file, bytes.
    pub metadata_record: f64,
}

impl Default for GeneralStats {
    fn default() -> Self {
        GeneralStats {
            query_length: 12.0,
            result_record: 76.0,
            metadata_record: 72.0,
        }
    }
}

/// Atomic-action cost table (the paper's Table 2 / "Figure 2").
///
/// Each method returns the cost of one atomic action; "macro" actions
/// (query, join, update) are compositions evaluated by the analysis
/// engine. Bandwidth methods return bytes; `*_units` methods return
/// processing units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Message-size and record-size statistics.
    pub stats: GeneralStats,
    /// Per-open-connection processing units added to every message a
    /// node sends or receives (Appendix A: the `select()` scan cost,
    /// ~0.04 units per descriptor amortized over ~4 events per call).
    pub multiplex_per_connection: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            stats: GeneralStats::default(),
            multiplex_per_connection: 0.01,
        }
    }
}

impl CostModel {
    /// Size of a query message: 82 bytes of headers + the query string.
    pub fn query_bytes(&self) -> f64 {
        82.0 + self.stats.query_length
    }

    /// Processing units to send one query message.
    pub fn send_query_units(&self) -> f64 {
        0.44 + 0.003 * self.stats.query_length
    }

    /// Processing units to receive one query message.
    pub fn recv_query_units(&self) -> f64 {
        0.57 + 0.004 * self.stats.query_length
    }

    /// Processing units to evaluate a query over a local index that
    /// yields `results` expected results (index probe startup plus
    /// per-result assembly). No bandwidth cost.
    pub fn process_query_units(&self, results: f64) -> f64 {
        14.0 + 0.1 * results
    }

    /// Size of a Response message carrying `results` result records for
    /// `addrs` distinct responding clients.
    pub fn response_bytes(&self, addrs: f64, results: f64) -> f64 {
        80.0 + 28.0 * addrs + self.stats.result_record * results
    }

    /// Processing units to send one Response message.
    pub fn send_response_units(&self, addrs: f64, results: f64) -> f64 {
        0.21 + 0.31 * addrs + 0.2 * results
    }

    /// Processing units to receive one Response message.
    pub fn recv_response_units(&self, addrs: f64, results: f64) -> f64 {
        0.26 + 0.41 * addrs + 0.3 * results
    }

    /// Expected Response-message bytes when the responder answers with
    /// probability `p_respond` and the *unconditional* expectations of
    /// addresses and results are `addrs`/`results` (load is linear in
    /// these, so `E[bytes] = p·overhead + linear part` — used by the
    /// mean-value analysis so its coefficients can never drift from
    /// [`response_bytes`](Self::response_bytes)).
    pub fn expected_response_bytes(&self, p_respond: f64, addrs: f64, results: f64) -> f64 {
        let base = self.response_bytes(0.0, 0.0);
        p_respond * base + (self.response_bytes(addrs, results) - base)
    }

    /// Expected processing units to send the probabilistic Response of
    /// [`expected_response_bytes`](Self::expected_response_bytes).
    pub fn expected_send_response_units(&self, p_respond: f64, addrs: f64, results: f64) -> f64 {
        let base = self.send_response_units(0.0, 0.0);
        p_respond * base + (self.send_response_units(addrs, results) - base)
    }

    /// Expected processing units to receive the probabilistic Response.
    pub fn expected_recv_response_units(&self, p_respond: f64, addrs: f64, results: f64) -> f64 {
        let base = self.recv_response_units(0.0, 0.0);
        p_respond * base + (self.recv_response_units(addrs, results) - base)
    }

    /// Size of a Join message carrying metadata for `files` files.
    pub fn join_bytes(&self, files: f64) -> f64 {
        80.0 + self.stats.metadata_record * files
    }

    /// Processing units for the joining peer to send its metadata.
    pub fn send_join_units(&self, files: f64) -> f64 {
        0.44 + 0.2 * files
    }

    /// Processing units for the super-peer to receive the metadata.
    pub fn recv_join_units(&self, files: f64) -> f64 {
        0.56 + 0.3 * files
    }

    /// Processing units for the super-peer to insert `files` metadata
    /// records into its index. No bandwidth cost.
    pub fn process_join_units(&self, files: f64) -> f64 {
        1.4 + 1.0 * files
    }

    /// Size of an Update message (one item changed).
    pub fn update_bytes(&self) -> f64 {
        152.0
    }

    /// Processing units to send one Update.
    pub fn send_update_units(&self) -> f64 {
        0.6
    }

    /// Processing units to receive one Update.
    pub fn recv_update_units(&self) -> f64 {
        0.8
    }

    /// Processing units to apply one Update to the index.
    pub fn process_update_units(&self) -> f64 {
        3.0
    }

    /// Packet-multiplex overhead: processing units added to each
    /// message a node with `connections` open connections sends or
    /// receives (Appendix A).
    pub fn multiplex_units(&self, connections: f64) -> f64 {
        self.multiplex_per_connection * connections
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cm() -> CostModel {
        CostModel::default()
    }

    #[test]
    fn query_message_matches_gnutella_framing() {
        // 82 header bytes + the 12-byte average query string = the
        // 94-byte average query message quoted in Section 4.1.
        assert_eq!(cm().query_bytes(), 94.0);
    }

    #[test]
    fn response_scales_with_results_and_addrs() {
        let c = cm();
        assert_eq!(c.response_bytes(0.0, 0.0), 80.0);
        assert_eq!(c.response_bytes(1.0, 1.0), 80.0 + 28.0 + 76.0);
        let big = c.response_bytes(3.0, 100.0);
        assert_eq!(big, 80.0 + 84.0 + 7600.0);
    }

    #[test]
    fn join_scales_with_files() {
        let c = cm();
        assert_eq!(c.join_bytes(0.0), 80.0);
        assert_eq!(c.join_bytes(10.0), 80.0 + 720.0);
        assert!(c.process_join_units(100.0) > c.recv_join_units(100.0));
    }

    #[test]
    fn processing_units_positive_and_monotone() {
        let c = cm();
        assert!(c.send_query_units() > 0.0);
        assert!(c.recv_query_units() > c.send_query_units());
        assert!(c.process_query_units(10.0) > c.process_query_units(0.0));
        assert!(c.send_response_units(2.0, 5.0) < c.recv_response_units(2.0, 5.0));
    }

    #[test]
    fn expected_response_costs_match_linear_decomposition() {
        let c = cm();
        // p = 1 collapses to the plain formulas.
        assert!(
            (c.expected_response_bytes(1.0, 2.0, 5.0) - c.response_bytes(2.0, 5.0)).abs() < 1e-12
        );
        // p = 0 keeps only the linear (payload) part.
        assert!(
            (c.expected_response_bytes(0.0, 2.0, 5.0)
                - (c.response_bytes(2.0, 5.0) - c.response_bytes(0.0, 0.0)))
            .abs()
                < 1e-12
        );
        assert!(c.expected_send_response_units(0.5, 1.0, 2.0) > 0.0);
        assert!(
            c.expected_recv_response_units(0.5, 1.0, 2.0)
                > c.expected_send_response_units(0.5, 1.0, 2.0)
        );
    }

    #[test]
    fn multiplex_is_linear_in_connections() {
        let c = cm();
        assert_eq!(c.multiplex_units(0.0), 0.0);
        assert!((c.multiplex_units(100.0) - 1.0).abs() < 1e-12);
        assert!((c.multiplex_units(1000.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn update_costs_are_small_constants() {
        let c = cm();
        assert_eq!(c.update_bytes(), 152.0);
        assert!(c.process_update_units() < c.process_query_units(0.0));
    }

    #[test]
    fn unit_conversion_constants() {
        assert_eq!(UNIT_CYCLES, 7200.0);
        assert_eq!(BITS_PER_BYTE, 8.0);
    }
}
