//! # sp-model
//!
//! The analytical core of the reproduction of Yang & Garcia-Molina,
//! *Designing a Super-Peer Network* (ICDE 2003): the paper's cost
//! model, query model, network-instance generator, and mean-value load
//! analysis engine.
//!
//! The paper's methodology (Section 4.1) has four steps, and this crate
//! implements each as a module:
//!
//! 1. **Generate an instance** — [`config`] holds the Table 1
//!    configuration parameters; [`population`] assigns per-peer file
//!    counts and session lifespans; [`instance`] builds the clusters,
//!    (virtual) super-peers, and overlay topology.
//! 2. **Calculate expected cost of actions** — [`costs`] is the Table 2
//!    atomic-action cost model (bandwidth in bytes, processing in units
//!    of 7200 cycles) plus the Appendix A packet-multiplex overhead;
//!    [`query_model`] is the Appendix B query model giving
//!    `E[N_T | I]` (expected results per super-peer) and `E[K_T | I]`
//!    (expected responding clients).
//! 3. **Calculate load from actions** — [`analysis`] floods a query
//!    from every cluster, charges query/join/update costs to every
//!    involved peer along three resources (incoming bandwidth, outgoing
//!    bandwidth, processing), and evaluates Equations (1)–(4):
//!    individual load, per-set load, aggregate load, and results per
//!    query. [`load`] holds the three-resource accumulator types.
//! 4. **Repeated trials** — [`trials`] runs many instances of a
//!    configuration (in parallel) and reports means with 95%
//!    confidence intervals.
//!
//! # Quick example
//!
//! ```
//! use sp_model::config::{Config, GraphType};
//! use sp_model::trials::{run_trials, TrialOptions};
//!
//! let config = Config {
//!     graph_size: 400,
//!     cluster_size: 20,
//!     graph_type: GraphType::PowerLaw,
//!     ..Config::default()
//! };
//! let summary = run_trials(&config, &TrialOptions { trials: 3, seed: 7, ..Default::default() });
//! // Super-peers carry orders of magnitude more load than clients.
//! assert!(summary.sp_total_bw.mean > 10.0 * summary.client_total_bw.mean);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod config;
pub mod costs;
pub mod faults;
pub mod instance;
pub mod load;
pub mod overload;
pub mod population;
pub mod query_model;
pub mod repair;
pub mod scenario;
pub mod snapshot;
pub mod trials;

pub use analysis::{analyze, AnalysisOptions, AnalysisResult, Engine, InstanceMetrics};
pub use config::{Config, GraphType};
pub use faults::{FaultPlan, FaultPlanError, FaultSpec, RetryPolicy};
pub use instance::{NetworkInstance, Role};
pub use load::Load;
pub use population::PopulationModel;
pub use query_model::QueryModel;
pub use repair::RepairPolicy;
pub use scenario::{CapacityClass, PhaseKind, PhaseSpec, ScenarioError, ScenarioPlan};
pub use snapshot::{SnapReader, SnapWriter, SnapshotError};
pub use trials::{
    resolve_thread_budget, run_trials, split_thread_budget, TrialOptions, TrialSummary,
};
