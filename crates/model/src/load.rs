//! Three-resource load accounting.
//!
//! The paper measures load along three resources, kept separate because
//! their availability differs (Section 4): **incoming bandwidth** and
//! **outgoing bandwidth** in bits per second (asymmetric links such as
//! cable modems make upstream the bottleneck even when downstream is
//! abundant), and **processing power** in Hz.

use std::ops::{Add, AddAssign, Mul};

use serde::{Deserialize, Serialize};

/// A load (or load rate) along the paper's three resources.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Load {
    /// Incoming (downstream) bandwidth, bits per second.
    pub in_bw: f64,
    /// Outgoing (upstream) bandwidth, bits per second.
    pub out_bw: f64,
    /// Processing, cycles per second (Hz).
    pub proc: f64,
}

impl Load {
    /// The zero load.
    pub const ZERO: Load = Load {
        in_bw: 0.0,
        out_bw: 0.0,
        proc: 0.0,
    };

    /// Total bandwidth (in + out), the quantity Figure 4 plots.
    pub fn total_bw(&self) -> f64 {
        self.in_bw + self.out_bw
    }

    /// Component-wise maximum.
    pub fn max(&self, other: &Load) -> Load {
        Load {
            in_bw: self.in_bw.max(other.in_bw),
            out_bw: self.out_bw.max(other.out_bw),
            proc: self.proc.max(other.proc),
        }
    }

    /// Whether every component is within `limit`'s components.
    pub fn fits_within(&self, limit: &Load) -> bool {
        self.in_bw <= limit.in_bw && self.out_bw <= limit.out_bw && self.proc <= limit.proc
    }

    /// Scales all components.
    pub fn scaled(&self, factor: f64) -> Load {
        Load {
            in_bw: self.in_bw * factor,
            out_bw: self.out_bw * factor,
            proc: self.proc * factor,
        }
    }
}

impl Add for Load {
    type Output = Load;
    fn add(self, rhs: Load) -> Load {
        Load {
            in_bw: self.in_bw + rhs.in_bw,
            out_bw: self.out_bw + rhs.out_bw,
            proc: self.proc + rhs.proc,
        }
    }
}

impl AddAssign for Load {
    fn add_assign(&mut self, rhs: Load) {
        self.in_bw += rhs.in_bw;
        self.out_bw += rhs.out_bw;
        self.proc += rhs.proc;
    }
}

impl Mul<f64> for Load {
    type Output = Load;
    fn mul(self, rhs: f64) -> Load {
        self.scaled(rhs)
    }
}

impl std::fmt::Display for Load {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "in {:.3e} bps, out {:.3e} bps, proc {:.3e} Hz",
            self.in_bw, self.out_bw, self.proc
        )
    }
}

/// Averages an iterator of loads; zero for an empty iterator.
pub fn mean_load<I: IntoIterator<Item = Load>>(loads: I) -> Load {
    let mut sum = Load::ZERO;
    let mut n = 0usize;
    for l in loads {
        sum += l;
        n += 1;
    }
    if n == 0 {
        Load::ZERO
    } else {
        sum.scaled(1.0 / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Load {
            in_bw: 1.0,
            out_bw: 2.0,
            proc: 3.0,
        };
        let b = Load {
            in_bw: 10.0,
            out_bw: 20.0,
            proc: 30.0,
        };
        let sum = a + b;
        assert_eq!(sum.in_bw, 11.0);
        assert_eq!(sum.total_bw(), 33.0);
        let scaled = a * 2.0;
        assert_eq!(scaled.out_bw, 4.0);
        let mut acc = Load::ZERO;
        acc += a;
        acc += a;
        assert_eq!(acc.proc, 6.0);
    }

    #[test]
    fn fits_within_componentwise() {
        let limit = Load {
            in_bw: 100.0,
            out_bw: 100.0,
            proc: 1000.0,
        };
        let ok = Load {
            in_bw: 99.0,
            out_bw: 100.0,
            proc: 0.0,
        };
        let too_much_proc = Load {
            in_bw: 0.0,
            out_bw: 0.0,
            proc: 1001.0,
        };
        assert!(ok.fits_within(&limit));
        assert!(!too_much_proc.fits_within(&limit));
    }

    #[test]
    fn mean_of_loads() {
        let loads = vec![
            Load {
                in_bw: 2.0,
                out_bw: 0.0,
                proc: 4.0,
            },
            Load {
                in_bw: 4.0,
                out_bw: 2.0,
                proc: 0.0,
            },
        ];
        let m = mean_load(loads);
        assert_eq!(m.in_bw, 3.0);
        assert_eq!(m.out_bw, 1.0);
        assert_eq!(m.proc, 2.0);
        assert_eq!(mean_load(std::iter::empty()), Load::ZERO);
    }

    #[test]
    fn componentwise_max() {
        let a = Load {
            in_bw: 5.0,
            out_bw: 1.0,
            proc: 0.0,
        };
        let b = Load {
            in_bw: 2.0,
            out_bw: 3.0,
            proc: 9.0,
        };
        let m = a.max(&b);
        assert_eq!(
            m,
            Load {
                in_bw: 5.0,
                out_bw: 3.0,
                proc: 9.0
            }
        );
    }

    #[test]
    fn display_mentions_units() {
        let s = Load::ZERO.to_string();
        assert!(s.contains("bps") && s.contains("Hz"));
    }
}
