//! Determinism contract of the analysis engine (see
//! `analysis.rs` module docs):
//!
//! * same shard count ⇒ **bitwise identical** results at any thread
//!   count;
//! * different shard counts ⇒ identical to ≤ 1e-12 relative (merge
//!   order only reassociates float sums);
//! * the Fast engine (allocation-free scratch flood, O(reach)
//!   charging) matches the Reference engine (fresh allocations, O(n)
//!   scan) — bitwise with a single shard;
//!
//! across topology family, redundancy, and source sampling.

use sp_model::analysis::{analyze, AnalysisOptions, AnalysisResult, Engine};
use sp_model::config::{Config, GraphType};
use sp_model::instance::NetworkInstance;
use sp_model::query_model::QueryModel;
use sp_stats::SpRng;

/// The experiment grid: strong and power-law overlays, with and
/// without 2-redundancy.
fn configs() -> Vec<(&'static str, Config)> {
    let strong = Config {
        graph_type: GraphType::StronglyConnected,
        graph_size: 400,
        cluster_size: 10,
        ttl: 1,
        ..Config::default()
    };
    let power = Config {
        graph_type: GraphType::PowerLaw,
        graph_size: 400,
        cluster_size: 10,
        avg_outdegree: 3.1,
        ttl: 7,
        ..Config::default()
    };
    vec![
        ("strong", strong.clone()),
        ("strong+red", strong.with_redundancy(true)),
        ("power", power.clone()),
        ("power+red", power.with_redundancy(true)),
    ]
}

/// Analyzes one instance with the given options; the RNG is re-seeded
/// identically per call so source sampling picks the same sources.
fn run(cfg: &Config, opts: &AnalysisOptions, seed: u64) -> AnalysisResult {
    let mut rng = SpRng::seed_from_u64(seed);
    let inst = NetworkInstance::generate(cfg, &mut rng).unwrap();
    let model = QueryModel::from_config(&cfg.query_model);
    analyze(&inst, &model, opts, &mut rng)
}

fn rel(a: f64, b: f64) -> f64 {
    if a == b {
        return 0.0;
    }
    (a - b).abs() / a.abs().max(b.abs()).max(f64::MIN_POSITIVE)
}

/// Asserts two results agree on every scalar metric and every
/// per-peer load component within `tol` relative.
fn assert_close(a: &AnalysisResult, b: &AnalysisResult, tol: f64, what: &str) {
    let (ma, mb) = (&a.metrics, &b.metrics);
    let scalars = [
        ("agg.in", ma.aggregate.in_bw, mb.aggregate.in_bw),
        ("agg.out", ma.aggregate.out_bw, mb.aggregate.out_bw),
        ("agg.proc", ma.aggregate.proc, mb.aggregate.proc),
        ("sp_mean.in", ma.sp_mean.in_bw, mb.sp_mean.in_bw),
        ("sp_mean.out", ma.sp_mean.out_bw, mb.sp_mean.out_bw),
        ("sp_mean.proc", ma.sp_mean.proc, mb.sp_mean.proc),
        ("sp_max.out", ma.sp_max.out_bw, mb.sp_max.out_bw),
        ("client_mean.in", ma.client_mean.in_bw, mb.client_mean.in_bw),
        ("results", ma.results_per_query, mb.results_per_query),
        ("epl", ma.epl, mb.epl),
        ("reach", ma.mean_reach_clusters, mb.mean_reach_clusters),
    ];
    for (name, x, y) in scalars {
        assert!(
            rel(x, y) <= tol,
            "{what}: metric {name} differs: {x} vs {y} (rel {})",
            rel(x, y)
        );
    }
    assert_eq!(a.loads.len(), b.loads.len(), "{what}: peer count differs");
    for (i, (la, lb)) in a.loads.iter().zip(&b.loads).enumerate() {
        for (name, x, y) in [
            ("in_bw", la.in_bw, lb.in_bw),
            ("out_bw", la.out_bw, lb.out_bw),
            ("proc", la.proc, lb.proc),
        ] {
            assert!(
                rel(x, y) <= tol,
                "{what}: peer {i} load {name} differs: {x} vs {y}"
            );
        }
    }
}

/// Asserts bitwise equality of metrics and per-peer loads.
fn assert_identical(a: &AnalysisResult, b: &AnalysisResult, what: &str) {
    assert_eq!(a.metrics, b.metrics, "{what}: metrics not bitwise equal");
    assert_eq!(a.loads, b.loads, "{what}: loads not bitwise equal");
}

#[test]
fn thread_count_never_changes_results() {
    // Fixed shard count (the default) ⇒ bitwise identical results at
    // 1, 2, and 8 worker threads.
    for (label, cfg) in configs() {
        for max_sources in [None, Some(25)] {
            let base = run(
                &cfg,
                &AnalysisOptions {
                    max_sources,
                    threads: 1,
                    ..AnalysisOptions::default()
                },
                7,
            );
            for threads in [2, 8] {
                let other = run(
                    &cfg,
                    &AnalysisOptions {
                        max_sources,
                        threads,
                        ..AnalysisOptions::default()
                    },
                    7,
                );
                assert_identical(
                    &base,
                    &other,
                    &format!("{label} sources={max_sources:?} threads 1 vs {threads}"),
                );
            }
        }
    }
}

#[test]
fn shard_count_only_reassociates_floats() {
    // Different shard counts regroup the per-shard partial sums, so
    // results may differ — but only by float reassociation, ≤ 1e-12
    // relative.
    for (label, cfg) in configs() {
        for max_sources in [None, Some(25)] {
            let one = run(
                &cfg,
                &AnalysisOptions {
                    max_sources,
                    shards: 1,
                    ..AnalysisOptions::default()
                },
                11,
            );
            for shards in [2, 8] {
                let sharded = run(
                    &cfg,
                    &AnalysisOptions {
                        max_sources,
                        shards,
                        ..AnalysisOptions::default()
                    },
                    11,
                );
                assert_close(
                    &one,
                    &sharded,
                    1e-12,
                    &format!("{label} sources={max_sources:?} shards 1 vs {shards}"),
                );
            }
        }
    }
}

#[test]
fn fast_single_shard_reproduces_reference_bitwise() {
    // One shard processes sources in the same order with the same
    // per-index charge order as the Reference engine, so the scratch
    // path must be bitwise identical to the fresh-allocation path.
    for (label, cfg) in configs() {
        for max_sources in [None, Some(25)] {
            let reference = run(
                &cfg,
                &AnalysisOptions {
                    max_sources,
                    engine: Engine::Reference,
                    ..AnalysisOptions::default()
                },
                13,
            );
            let fast = run(
                &cfg,
                &AnalysisOptions {
                    max_sources,
                    shards: 1,
                    engine: Engine::Fast,
                    ..AnalysisOptions::default()
                },
                13,
            );
            assert_identical(
                &reference,
                &fast,
                &format!("{label} sources={max_sources:?} reference vs fast(1 shard)"),
            );
        }
    }
}

#[test]
fn fast_default_matches_reference_closely() {
    // The default Fast configuration (32 shards, all cores) agrees
    // with the sequential Reference engine to ≤ 1e-12 relative on
    // every metric and every per-peer load.
    for (label, cfg) in configs() {
        let reference = run(
            &cfg,
            &AnalysisOptions {
                engine: Engine::Reference,
                ..AnalysisOptions::default()
            },
            17,
        );
        let fast = run(&cfg, &AnalysisOptions::default(), 17);
        assert_close(
            &reference,
            &fast,
            1e-12,
            &format!("{label} reference vs fast(default)"),
        );
    }
}

#[test]
fn histogram_outputs_match_across_engines() {
    // The by-outdegree histograms feed Figures 7/8; their per-key
    // means must agree across engines too.
    let cfg = configs().remove(2).1; // power-law
    let reference = run(
        &cfg,
        &AnalysisOptions {
            engine: Engine::Reference,
            ..AnalysisOptions::default()
        },
        19,
    );
    let fast = run(&cfg, &AnalysisOptions::default(), 19);
    let keys_ref: Vec<u64> = reference.results_by_outdegree.keys().collect();
    let keys_fast: Vec<u64> = fast.results_by_outdegree.keys().collect();
    assert_eq!(keys_ref, keys_fast, "histogram keys differ");
    for k in keys_ref {
        let a = reference.results_by_outdegree.get(k).unwrap();
        let b = fast.results_by_outdegree.get(k).unwrap();
        assert_eq!(a.count(), b.count(), "key {k} count");
        assert!(rel(a.mean(), b.mean()) <= 1e-12, "key {k} mean");
    }
}
