//! Property-based tests for the analysis engine's invariants.

use proptest::prelude::*;
use sp_model::analysis::{analyze, AnalysisOptions};
use sp_model::config::{Config, GraphType};
use sp_model::instance::NetworkInstance;
use sp_model::query_model::QueryModel;
use sp_stats::SpRng;

fn arb_config() -> impl Strategy<Value = Config> {
    (
        50usize..400,    // graph size
        1usize..30,      // cluster size
        prop::bool::ANY, // redundancy
        prop::bool::ANY, // strong vs power-law
        1u16..6,         // ttl
        2u32..12,        // avg outdegree (x1.0)
    )
        .prop_map(|(gs, cs, red, strong, ttl, deg)| {
            let cs = cs.min(gs);
            let mut cfg = Config {
                graph_size: gs,
                cluster_size: cs,
                graph_type: if strong {
                    GraphType::StronglyConnected
                } else {
                    GraphType::PowerLaw
                },
                ttl,
                avg_outdegree: deg as f64,
                ..Config::default()
            };
            if red && cs >= 2 {
                cfg.redundancy_k = 2;
            }
            cfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation: aggregate incoming bandwidth equals aggregate
    /// outgoing bandwidth — every transmitted byte lands somewhere.
    #[test]
    fn bandwidth_conservation(cfg in arb_config(), seed in any::<u64>()) {
        let mut rng = SpRng::seed_from_u64(seed);
        let inst = NetworkInstance::generate(&cfg, &mut rng).unwrap();
        let model = QueryModel::from_config(&cfg.query_model);
        let r = analyze(&inst, &model, &AnalysisOptions::default(), &mut rng);
        let (i, o) = (r.metrics.aggregate.in_bw, r.metrics.aggregate.out_bw);
        prop_assert!((i - o).abs() <= 1e-6 * (1.0 + i.abs()), "in {i} vs out {o}");
    }

    /// All loads are non-negative and finite; the aggregate equals the
    /// sum of individual loads.
    #[test]
    fn loads_are_sane(cfg in arb_config(), seed in any::<u64>()) {
        let mut rng = SpRng::seed_from_u64(seed);
        let inst = NetworkInstance::generate(&cfg, &mut rng).unwrap();
        let model = QueryModel::from_config(&cfg.query_model);
        let r = analyze(&inst, &model, &AnalysisOptions::default(), &mut rng);
        let mut sum_in = 0.0;
        let mut sum_proc = 0.0;
        for l in &r.loads {
            prop_assert!(l.in_bw.is_finite() && l.in_bw >= 0.0);
            prop_assert!(l.out_bw.is_finite() && l.out_bw >= 0.0);
            prop_assert!(l.proc.is_finite() && l.proc >= 0.0);
            sum_in += l.in_bw;
            sum_proc += l.proc;
        }
        prop_assert!((sum_in - r.metrics.aggregate.in_bw).abs() <= 1e-6 * (1.0 + sum_in));
        prop_assert!((sum_proc - r.metrics.aggregate.proc).abs() <= 1e-6 * (1.0 + sum_proc));
    }

    /// Results per query and EPL are bounded by the network: results
    /// never exceed match_rate × total files; EPL never exceeds TTL.
    #[test]
    fn results_and_epl_bounded(cfg in arb_config(), seed in any::<u64>()) {
        let mut rng = SpRng::seed_from_u64(seed);
        let inst = NetworkInstance::generate(&cfg, &mut rng).unwrap();
        let model = QueryModel::from_config(&cfg.query_model);
        let r = analyze(&inst, &model, &AnalysisOptions::default(), &mut rng);
        let total_files: f64 = (0..inst.num_clusters())
            .map(|i| inst.cluster_files(i) as f64)
            .sum();
        let cap = model.expected_results(total_files);
        prop_assert!(r.metrics.results_per_query <= cap * (1.0 + 1e-9));
        prop_assert!(r.metrics.epl >= 0.0 && r.metrics.epl <= cfg.ttl as f64 + 1e-9);
        prop_assert!(r.metrics.mean_reach_clusters >= 1.0 - 1e-9);
        prop_assert!(r.metrics.mean_reach_clusters <= inst.num_clusters() as f64 + 1e-9);
    }

    /// Every client's load is dominated by its cluster's partner load
    /// in aggregate terms: the mean partner carries at least the mean
    /// client's bandwidth.
    #[test]
    fn partners_not_lighter_than_clients(cfg in arb_config(), seed in any::<u64>()) {
        prop_assume!(cfg.cluster_size >= 4);
        let mut rng = SpRng::seed_from_u64(seed);
        let inst = NetworkInstance::generate(&cfg, &mut rng).unwrap();
        let model = QueryModel::from_config(&cfg.query_model);
        let r = analyze(&inst, &model, &AnalysisOptions::default(), &mut rng);
        if r.metrics.num_clients > 0 {
            prop_assert!(
                r.metrics.sp_mean.total_bw() >= r.metrics.client_mean.total_bw(),
                "sp {} < client {}",
                r.metrics.sp_mean.total_bw(),
                r.metrics.client_mean.total_bw()
            );
        }
    }

    /// Analysis is deterministic for a fixed seed.
    #[test]
    fn analysis_deterministic(cfg in arb_config(), seed in any::<u64>()) {
        let model = QueryModel::from_config(&cfg.query_model);
        let mut rng1 = SpRng::seed_from_u64(seed);
        let inst1 = NetworkInstance::generate(&cfg, &mut rng1).unwrap();
        let r1 = analyze(&inst1, &model, &AnalysisOptions::default(), &mut rng1);
        let mut rng2 = SpRng::seed_from_u64(seed);
        let inst2 = NetworkInstance::generate(&cfg, &mut rng2).unwrap();
        let r2 = analyze(&inst2, &model, &AnalysisOptions::default(), &mut rng2);
        prop_assert_eq!(r1.metrics.aggregate, r2.metrics.aggregate);
        prop_assert_eq!(r1.metrics.results_per_query, r2.metrics.results_per_query);
    }
}
