//! Property-based tests for the simulator's mutable network state:
//! arbitrary operation sequences must never violate the structural
//! invariants (membership symmetry, edge symmetry, cached file counts,
//! alive-list consistency).

use proptest::prelude::*;
use sp_sim::network::SimNetwork;
use sp_stats::SpRng;

/// Operations the fuzzer may apply.
#[derive(Debug, Clone)]
enum Op {
    AddSuperPeer { files: u32 },
    AddClient { files: u32, cluster_pick: u32 },
    AddEdge { a: u32, b: u32 },
    RemoveClient { pick: u32 },
    PromoteClient { cluster_pick: u32 },
    FailCluster { cluster_pick: u32 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..500).prop_map(|files| Op::AddSuperPeer { files }),
        (0u32..500, any::<u32>()).prop_map(|(files, cluster_pick)| Op::AddClient {
            files,
            cluster_pick
        }),
        (any::<u32>(), any::<u32>()).prop_map(|(a, b)| Op::AddEdge { a, b }),
        any::<u32>().prop_map(|pick| Op::RemoveClient { pick }),
        any::<u32>().prop_map(|cluster_pick| Op::PromoteClient { cluster_pick }),
        any::<u32>().prop_map(|cluster_pick| Op::FailCluster { cluster_pick }),
    ]
}

/// Applies an op, keeping local shadow lists of live ids.
fn apply(
    net: &mut SimNetwork,
    op: &Op,
    clusters: &mut Vec<u32>,
    clients: &mut Vec<u32>,
    rng: &mut SpRng,
) {
    match *op {
        Op::AddSuperPeer { files } => {
            let p = net.add_peer(files, 0.0);
            let c = net.add_cluster(p, 7);
            clusters.push(c);
        }
        Op::AddClient {
            files,
            cluster_pick,
        } => {
            if clusters.is_empty() {
                return;
            }
            let c = clusters[cluster_pick as usize % clusters.len()];
            let p = net.add_peer(files, 0.0);
            net.attach_client(p, c);
            clients.push(p);
        }
        Op::AddEdge { a, b } => {
            if clusters.len() < 2 {
                return;
            }
            let a = clusters[a as usize % clusters.len()];
            let b = clusters[b as usize % clusters.len()];
            net.add_edge(a, b);
        }
        Op::RemoveClient { pick } => {
            if clients.is_empty() {
                return;
            }
            let idx = pick as usize % clients.len();
            let p = clients.swap_remove(idx);
            net.detach_client(p);
            net.remove_peer(p);
        }
        Op::PromoteClient { cluster_pick } => {
            if clusters.is_empty() {
                return;
            }
            let c = clusters[cluster_pick as usize % clusters.len()];
            if let Some(promoted) = net.promote_client(c, rng) {
                clients.retain(|&x| x != promoted);
            }
        }
        Op::FailCluster { cluster_pick } => {
            if clusters.is_empty() {
                return;
            }
            let idx = cluster_pick as usize % clusters.len();
            let c = clusters.swap_remove(idx);
            // Detach everyone, then dissolve.
            let (ps, cls) = {
                let cl = net.clusters[c as usize].as_ref().unwrap();
                (cl.partners.clone(), cl.clients.clone())
            };
            for p in ps {
                net.detach_partner(p);
                net.remove_peer(p);
            }
            for p in cls {
                net.detach_client(p);
                net.remove_peer(p);
                clients.retain(|&x| x != p);
            }
            net.remove_cluster(c);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariants hold after every step of any operation sequence.
    #[test]
    fn network_invariants_under_random_ops(
        ops in prop::collection::vec(arb_op(), 1..120),
        seed in any::<u64>(),
    ) {
        let mut net = SimNetwork::new();
        let mut rng = SpRng::seed_from_u64(seed);
        let mut clusters = Vec::new();
        let mut clients = Vec::new();
        for op in &ops {
            apply(&mut net, op, &mut clusters, &mut clients, &mut rng);
            if let Err(e) = net.check_invariants() {
                prop_assert!(false, "invariant broken after {:?}: {e}", op);
            }
        }
        prop_assert_eq!(net.num_alive_clusters(), clusters.len());
    }

    /// The engine end-to-end: any small configuration simulates without
    /// panicking and leaves a consistent network.
    #[test]
    fn engine_runs_any_small_config(
        cluster_size in 1usize..20,
        redundancy in prop::bool::ANY,
        ttl in 1u16..6,
        seed in any::<u64>(),
    ) {
        use sp_model::config::Config;
        use sp_sim::engine::{SimOptions, Simulation};
        let mut cfg = Config {
            graph_size: 120,
            cluster_size,
            ttl,
            ..Config::default()
        };
        if redundancy && cluster_size >= 2 {
            cfg.redundancy_k = 2;
        }
        let mut sim = Simulation::new(&cfg, SimOptions {
            duration_secs: 200.0,
            seed,
            ..Default::default()
        });
        let metrics = sim.run();
        prop_assert!(sim.net.check_invariants().is_ok());
        prop_assert!(metrics.availability() >= 0.0 && metrics.availability() <= 1.0);
    }
}
