//! Property-based tests for the simulator's mutable network state:
//! arbitrary operation sequences must never violate the structural
//! invariants (membership symmetry, edge symmetry, cached file counts,
//! alive-list consistency) — and for the fault-injection layer:
//! under *any* generated fault plan the fast and reference engines
//! agree bitwise and the query-accounting conservation law holds.

use proptest::prelude::*;
use sp_model::faults::{FaultPlan, FaultSpec};
use sp_model::overload::{BrownoutConfig, OverloadPolicy, ShedDiscipline};
use sp_model::repair::RepairPolicy;
use sp_model::scenario::{CapacityClass, PhaseKind, PhaseSpec, ScenarioPlan};
use sp_sim::network::SimNetwork;
use sp_stats::SpRng;

/// Operations the fuzzer may apply.
#[derive(Debug, Clone)]
enum Op {
    AddSuperPeer { files: u32 },
    AddClient { files: u32, cluster_pick: u32 },
    AddEdge { a: u32, b: u32 },
    RemoveClient { pick: u32 },
    PromoteClient { cluster_pick: u32 },
    FailCluster { cluster_pick: u32 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..500).prop_map(|files| Op::AddSuperPeer { files }),
        (0u32..500, any::<u32>()).prop_map(|(files, cluster_pick)| Op::AddClient {
            files,
            cluster_pick
        }),
        (any::<u32>(), any::<u32>()).prop_map(|(a, b)| Op::AddEdge { a, b }),
        any::<u32>().prop_map(|pick| Op::RemoveClient { pick }),
        any::<u32>().prop_map(|cluster_pick| Op::PromoteClient { cluster_pick }),
        any::<u32>().prop_map(|cluster_pick| Op::FailCluster { cluster_pick }),
    ]
}

/// Applies an op, keeping local shadow lists of live ids.
fn apply(
    net: &mut SimNetwork,
    op: &Op,
    clusters: &mut Vec<u32>,
    clients: &mut Vec<u32>,
    rng: &mut SpRng,
) {
    match *op {
        Op::AddSuperPeer { files } => {
            let p = net.add_peer(files, 0.0);
            let c = net.add_cluster(p, 7);
            clusters.push(c);
        }
        Op::AddClient {
            files,
            cluster_pick,
        } => {
            if clusters.is_empty() {
                return;
            }
            let c = clusters[cluster_pick as usize % clusters.len()];
            let p = net.add_peer(files, 0.0);
            net.attach_client(p, c);
            clients.push(p);
        }
        Op::AddEdge { a, b } => {
            if clusters.len() < 2 {
                return;
            }
            let a = clusters[a as usize % clusters.len()];
            let b = clusters[b as usize % clusters.len()];
            net.add_edge(a, b);
        }
        Op::RemoveClient { pick } => {
            if clients.is_empty() {
                return;
            }
            let idx = pick as usize % clients.len();
            let p = clients.swap_remove(idx);
            net.detach_client(p);
            net.remove_peer(p);
        }
        Op::PromoteClient { cluster_pick } => {
            if clusters.is_empty() {
                return;
            }
            let c = clusters[cluster_pick as usize % clusters.len()];
            if let Some(promoted) = net.promote_client(c, rng) {
                clients.retain(|&x| x != promoted);
            }
        }
        Op::FailCluster { cluster_pick } => {
            if clusters.is_empty() {
                return;
            }
            let idx = cluster_pick as usize % clusters.len();
            let c = clusters.swap_remove(idx);
            // Detach everyone, then dissolve.
            let (ps, cls) = {
                let cl = net.clusters[c as usize].as_ref().unwrap();
                (cl.partners.clone(), cl.clients.clone())
            };
            for p in ps {
                net.detach_partner(p);
                net.remove_peer(p);
            }
            for p in cls {
                net.detach_client(p);
                net.remove_peer(p);
                clients.retain(|&x| x != p);
            }
            net.remove_cluster(c);
        }
    }
}

/// One arbitrary fault inside a run of length `dur`. Windows are kept
/// strictly ordered so the generated plan always validates.
fn arb_fault(dur: f64) -> impl Strategy<Value = FaultSpec> {
    prop_oneof![
        (0.0..dur, 0usize..12).prop_map(|(at_secs, cluster_index)| FaultSpec::CrashCluster {
            at_secs,
            cluster_index,
        }),
        (0.0..dur, 0.05f64..0.5)
            .prop_map(|(at_secs, fraction)| FaultSpec::CrashFraction { at_secs, fraction }),
        (0.0..dur, 1.0..dur, 0.05f64..0.9).prop_map(|(from, len, drop_prob)| {
            FaultSpec::MessageLoss {
                from_secs: from,
                until_secs: from + len,
                drop_prob,
            }
        }),
        (0.0..dur, 1.0..dur, 0.05f64..0.9, 0.1f64..30.0).prop_map(
            |(from, len, delay_prob, delay_secs)| FaultSpec::MessageDelay {
                from_secs: from,
                until_secs: from + len,
                delay_prob,
                delay_secs,
            }
        ),
        (0.0..dur, 1.0..dur, prop::collection::vec(0usize..16, 1..4)).prop_map(
            |(from, len, clusters)| FaultSpec::Partition {
                from_secs: from,
                until_secs: from + len,
                clusters,
            }
        ),
        (0.0..dur, 1.0..dur, 0.05f64..0.9).prop_map(|(from, len, flake_prob)| {
            FaultSpec::FlakyPartners {
                from_secs: from,
                until_secs: from + len,
                flake_prob,
            }
        }),
    ]
}

fn arb_plan(dur: f64) -> impl Strategy<Value = FaultPlan> {
    prop::collection::vec(arb_fault(dur), 0..5).prop_map(|faults| FaultPlan {
        faults,
        ..Default::default()
    })
}

/// An arbitrary valid [`ScenarioPlan`]: at most one phase per kind
/// (same-kind windows may not overlap, so one each always validates),
/// 0–2 capacity classes, an arbitrary embedded fault plan, and any
/// repair policy.
fn arb_scenario(dur: f64) -> impl Strategy<Value = ScenarioPlan> {
    let window = |max_len: f64| (0.0..dur * 0.8, 1.0..max_len);
    let flash = prop::option::of((window(dur * 0.2), 0.5f64..5.0, 0u32..64));
    let churn = prop::option::of((window(dur * 0.2), 0.2f64..3.0));
    let leave = prop::option::of((window(dur * 0.1), 0.0f64..0.5));
    let split = prop::option::of((window(dur * 0.3), 0.0f64..0.6));
    let classes = prop::collection::vec((0.5f64..4.0, 0.25f64..3.0, 0.5f64..2.0), 0..3);
    (
        flash,
        churn,
        leave,
        split,
        classes,
        arb_plan(dur),
        0usize..3,
    )
        .prop_map(
            |(flash, churn, leave, split, classes, faults, repair_idx)| {
                let mut plan = ScenarioPlan {
                    faults,
                    repair: RepairPolicy::ALL[repair_idx],
                    ..Default::default()
                };
                let mut push = |from: f64, len: f64, kind: PhaseKind| {
                    plan.phases.push(PhaseSpec {
                        rate_mult: 1.0,
                        from_secs: from,
                        until_secs: from + len,
                        kind,
                    });
                };
                if let Some(((from, len), query_rate_mult, hot_shift)) = flash {
                    push(
                        from,
                        len,
                        PhaseKind::FlashCrowd {
                            query_rate_mult,
                            hot_shift,
                        },
                    );
                }
                if let Some(((from, len), lifespan_mult)) = churn {
                    push(from, len, PhaseKind::ChurnBurst { lifespan_mult });
                }
                if let Some(((from, len), fraction)) = leave {
                    push(from, len, PhaseKind::MassLeave { fraction });
                }
                if let Some(((from, len), fraction)) = split {
                    push(from, len, PhaseKind::Split { fraction });
                }
                for (weight, files_mult, lifespan_mult) in classes {
                    plan.capacity_classes.push(CapacityClass {
                        weight,
                        files_mult,
                        lifespan_mult,
                    });
                }
                plan
            },
        )
}

/// An arbitrary *valid, non-empty* overload policy: any service rate,
/// bounded or measure-only (capacity 0) queue, any shed discipline,
/// optional per-client token budget, optional brownout with
/// exit < enter, optional re-homing. Every draw passes
/// [`OverloadPolicy::validate`].
fn arb_overload_policy() -> impl Strategy<Value = OverloadPolicy> {
    let brownout = prop::option::of((0.1f64..1.0, 0.5f64..3.0, 1.0f64..20.0, 0u16..4, 1u32..7))
        .prop_map(|b| {
            b.map(
                |(exit, gap, dwell, ttl_decrement, fanout_limit)| BrownoutConfig {
                    enter_backlog_secs: exit + gap,
                    exit_backlog_secs: exit,
                    min_dwell_secs: dwell,
                    ttl_decrement,
                    fanout_limit,
                },
            )
        });
    let budget = prop::option::of((0.1f64..4.0, 1.0f64..6.0));
    (
        0.5f64..6.0,
        prop_oneof![Just(0u32), 2u32..32],
        0usize..3,
        budget,
        brownout,
        prop_oneof![Just(0u32), 1u32..9],
    )
        .prop_map(
            |(service_rate, queue_capacity, disc, budget, brownout, rehome_strikes)| {
                let (client_tokens_per_sec, client_token_burst) =
                    budget.map_or((0.0, 0.0), |(tokens, burst)| (tokens, burst));
                OverloadPolicy {
                    service_rate,
                    queue_capacity,
                    discipline: [
                        ShedDiscipline::RejectAtAdmission,
                        ShedDiscipline::DropOldest,
                        ShedDiscipline::DropLowestTtl,
                    ][disc],
                    client_tokens_per_sec,
                    client_token_burst,
                    brownout,
                    rehome_strikes,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariants hold after every step of any operation sequence.
    #[test]
    fn network_invariants_under_random_ops(
        ops in prop::collection::vec(arb_op(), 1..120),
        seed in any::<u64>(),
    ) {
        let mut net = SimNetwork::new();
        let mut rng = SpRng::seed_from_u64(seed);
        let mut clusters = Vec::new();
        let mut clients = Vec::new();
        for op in &ops {
            apply(&mut net, op, &mut clusters, &mut clients, &mut rng);
            if let Err(e) = net.check_invariants() {
                prop_assert!(false, "invariant broken after {:?}: {e}", op);
            }
        }
        prop_assert_eq!(net.num_alive_clusters(), clusters.len());
    }

    /// The engine end-to-end: any small configuration simulates without
    /// panicking and leaves a consistent network.
    #[test]
    fn engine_runs_any_small_config(
        cluster_size in 1usize..20,
        redundancy in prop::bool::ANY,
        ttl in 1u16..6,
        seed in any::<u64>(),
    ) {
        use sp_model::config::Config;
        use sp_sim::engine::{SimOptions, Simulation};
        let mut cfg = Config {
            graph_size: 120,
            cluster_size,
            ttl,
            ..Config::default()
        };
        if redundancy && cluster_size >= 2 {
            cfg.redundancy_k = 2;
        }
        let mut sim = Simulation::new(&cfg, SimOptions {
            duration_secs: 200.0,
            seed,
            ..Default::default()
        });
        let metrics = sim.run();
        prop_assert!(sim.net.check_invariants().is_ok());
        prop_assert!(metrics.availability() >= 0.0 && metrics.availability() <= 1.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Under any generated fault plan the fast and reference engines
    /// produce bitwise-identical `RawMetrics`, and the recovery
    /// accounting conserves: every issued query is counted exactly once
    /// as direct, retry-recovered, failover-recovered, or lost, and the
    /// engine's flooded-query counter is issued − lost.
    #[test]
    fn engines_agree_and_conserve_under_any_fault_plan(
        plan in arb_plan(300.0),
        redundancy in prop::bool::ANY,
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
    ) {
        use sp_model::config::Config;
        use sp_sim::engine::{SimOptions, Simulation};
        use sp_sim::reference::ReferenceSimulation;
        let cfg = Config {
            graph_size: 100,
            cluster_size: 10,
            ..Config::default()
        }
        .with_redundancy(redundancy);
        let opts = SimOptions {
            duration_secs: 300.0,
            seed,
            fault_seed,
            ..Default::default()
        };
        let mut fast = Simulation::with_faults(&cfg, opts, &plan);
        let fast_metrics = fast.run();
        let mut reference = ReferenceSimulation::with_faults(&cfg, opts, &plan);
        let reference_metrics = reference.run();
        prop_assert_eq!(&fast_metrics, &reference_metrics,
            "engines diverged under plan {:?}", &plan);
        prop_assert!(fast.net.check_invariants().is_ok());
        prop_assert!(fast_metrics.faults.conserved(),
            "conservation broken: {:?}", &fast_metrics.faults);
        prop_assert_eq!(
            fast_metrics.queries,
            fast_metrics.faults.queries_issued - fast_metrics.faults.queries_lost,
            "flooded queries must be issued minus lost"
        );
    }

    /// Self-healing under any generated fault plan: with
    /// `--repair=promote+partner` the engines still agree bitwise, the
    /// conservation law still holds (headless-window queries are
    /// charged issued + lost), and the overlay never fragments worse
    /// than the no-repair run — repair keeps crashed clusters' nodes
    /// and edges alive, so its worst observed component count is
    /// bounded by the run that lets them dissolve.
    #[test]
    fn repair_conserves_and_never_fragments_worse(
        plan in arb_plan(300.0),
        redundancy in prop::bool::ANY,
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
    ) {
        use sp_model::config::Config;
        use sp_model::repair::RepairPolicy;
        use sp_sim::engine::{SimOptions, Simulation};
        use sp_sim::reference::ReferenceSimulation;
        let cfg = Config {
            graph_size: 100,
            cluster_size: 10,
            ..Config::default()
        }
        .with_redundancy(redundancy);
        let opts = SimOptions {
            duration_secs: 300.0,
            seed,
            fault_seed,
            repair: RepairPolicy::PromotePartner,
            ..Default::default()
        };
        let mut fast = Simulation::with_faults(&cfg, opts, &plan);
        let repaired = fast.run();
        let mut reference = ReferenceSimulation::with_faults(&cfg, opts, &plan);
        let reference_metrics = reference.run();
        prop_assert_eq!(&repaired, &reference_metrics,
            "engines diverged with repair under plan {:?}", &plan);
        prop_assert!(fast.net.check_invariants().is_ok());
        prop_assert!(repaired.faults.conserved(),
            "conservation broken with repair: {:?}", &repaired.faults);
        prop_assert_eq!(
            repaired.queries,
            repaired.faults.queries_issued - repaired.faults.queries_lost,
            "flooded queries must be issued minus lost"
        );
        let unrepaired = Simulation::with_faults(
            &cfg,
            SimOptions { repair: RepairPolicy::Off, ..opts },
            &plan,
        )
        .run();
        prop_assert!(
            repaired.repair.max_components() <= unrepaired.repair.max_components(),
            "repair fragmented the overlay worse than no repair: {} > {} under plan {:?}",
            repaired.repair.max_components(),
            unrepaired.repair.max_components(),
            &plan
        );
    }

    /// Under any generated scenario plan — phased flash crowds, churn
    /// bursts, mass leaves, splits, capacity classes, embedded faults,
    /// any repair policy — the fast and reference engines produce
    /// bitwise-identical `RawMetrics`, the conservation law holds, and
    /// the plan survives a JSON round trip unchanged.
    #[test]
    fn engines_agree_under_any_scenario_plan(
        plan in arb_scenario(300.0),
        redundancy in prop::bool::ANY,
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        scenario_seed in any::<u64>(),
    ) {
        use sp_model::config::Config;
        use sp_sim::engine::{SimOptions, Simulation};
        use sp_sim::reference::ReferenceSimulation;
        prop_assert!(plan.validate().is_ok(),
            "generator emitted an invalid plan {:?}", &plan);
        let round_trip = ScenarioPlan::from_json(&plan.to_json());
        prop_assert_eq!(round_trip.as_ref(), Ok(&plan),
            "scenario JSON round trip changed the plan");
        let cfg = Config {
            graph_size: 100,
            cluster_size: 10,
            ..Config::default()
        }
        .with_redundancy(redundancy);
        let opts = SimOptions {
            duration_secs: 300.0,
            seed,
            fault_seed,
            scenario_seed,
            ..Default::default()
        };
        let mut fast = Simulation::with_scenario(&cfg, opts, &plan);
        let fast_metrics = fast.run();
        let mut reference = ReferenceSimulation::with_scenario(&cfg, opts, &plan);
        let reference_metrics = reference.run();
        prop_assert_eq!(&fast_metrics, &reference_metrics,
            "engines diverged under scenario {:?}", &plan);
        prop_assert!(fast.net.check_invariants().is_ok());
        prop_assert!(fast_metrics.faults.conserved(),
            "conservation broken under scenario: {:?}", &fast_metrics.faults);
    }

    /// The sharded scale engine under any generated fault plan: metrics
    /// reduce bitwise identically at 1, 2, and 8 shards — the tentpole
    /// layout-invariance contract, fuzzed over crash storms whose
    /// elections announce re-indexing across shard boundaries.
    #[test]
    fn scale_engine_shard_invariant_under_any_fault_plan(
        plan in arb_plan(200.0),
        redundancy in prop::bool::ANY,
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
    ) {
        use sp_model::config::Config;
        use sp_sim::shard::{ScaleOptions, ShardedSimulation};
        let cfg = Config::scale_preset(1_000).with_redundancy(redundancy);
        let opts = ScaleOptions {
            duration_secs: 200.0,
            seed,
            fault_seed,
            shards: 1,
            ..Default::default()
        };
        let base = ShardedSimulation::with_faults(&cfg, opts, &plan).run();
        prop_assert!(base.queries_issued + base.queries_failed > 0);
        for shards in [2usize, 8] {
            let sharded = ShardedSimulation::with_faults(
                &cfg,
                ScaleOptions { shards, ..opts },
                &plan,
            )
            .run();
            prop_assert_eq!(
                &base, &sharded,
                "scale metrics diverged at {} shards under plan {:?}", shards, &plan
            );
        }
    }

    /// Overload control under any generated scenario × any valid
    /// policy: the fast and reference engines stay bitwise identical,
    /// the *extended* conservation law holds (issued = lost +
    /// delivered + shed + rejected), and a bounded work queue never
    /// exceeds its configured capacity.
    #[test]
    fn overload_bounds_queues_and_conserves_on_both_engines(
        plan in arb_scenario(300.0),
        policy in arb_overload_policy(),
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        scenario_seed in any::<u64>(),
    ) {
        use sp_model::config::Config;
        use sp_sim::engine::{SimOptions, Simulation};
        use sp_sim::reference::ReferenceSimulation;
        prop_assert!(policy.validate().is_ok(),
            "generator emitted an invalid policy {:?}", &policy);
        let mut plan = plan;
        plan.overload = policy;
        prop_assert!(plan.validate().is_ok(),
            "plan with overload policy failed validation {:?}", &plan);
        // A query rate high enough that the drawn service rates span
        // both saturated and comfortable regimes.
        let cfg = Config {
            graph_size: 100,
            cluster_size: 10,
            query_rate: 0.2,
            ..Config::default()
        };
        let opts = SimOptions {
            duration_secs: 300.0,
            seed,
            fault_seed,
            scenario_seed,
            ..Default::default()
        };
        let fast = Simulation::with_scenario(&cfg, opts, &plan).run();
        let reference = ReferenceSimulation::with_scenario(&cfg, opts, &plan).run();
        prop_assert_eq!(&fast, &reference,
            "engines diverged under overload policy {:?}", &policy);
        prop_assert!(
            fast.overload.conserved(fast.faults.queries_issued, fast.faults.queries_lost),
            "extended conservation broken: issued {} lost {} ledger {:?}",
            fast.faults.queries_issued, fast.faults.queries_lost, &fast.overload
        );
        if policy.queue_capacity > 0 {
            prop_assert!(
                fast.overload.peak_depth <= u64::from(policy.queue_capacity),
                "queue bound violated: peak depth {} > capacity {}",
                fast.overload.peak_depth, policy.queue_capacity
            );
        }
    }

    /// The sharded scale engine under any fault plan × any valid
    /// overload policy: the reduced metrics (including the overload
    /// ledger) are identical at 1, 2, and 4 shards, the scale
    /// engine's own conservation identities hold, and the queue bound
    /// is honored.
    #[test]
    fn scale_engine_overload_is_shard_invariant_and_conserves(
        plan in arb_plan(200.0),
        policy in arb_overload_policy(),
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
    ) {
        use sp_model::config::Config;
        use sp_sim::shard::{ScaleOptions, ShardedSimulation};
        let mut cfg = Config::scale_preset(1_000);
        cfg.query_rate = 0.05;
        let opts = ScaleOptions {
            duration_secs: 200.0,
            seed,
            fault_seed,
            shards: 1,
            overload: policy,
            ..Default::default()
        };
        let base = ShardedSimulation::with_faults(&cfg, opts, &plan).run();
        prop_assert!(base.overload_conserved(),
            "scale overload ledger broke under policy {:?}: {:?}", &policy, &base);
        if policy.queue_capacity > 0 {
            prop_assert!(
                base.ov_peak_depth <= u64::from(policy.queue_capacity),
                "scale queue bound violated: peak depth {} > capacity {}",
                base.ov_peak_depth, policy.queue_capacity
            );
        }
        for shards in [2usize, 4] {
            let sharded = ShardedSimulation::with_faults(
                &cfg,
                ScaleOptions { shards, ..opts },
                &plan,
            )
            .run();
            prop_assert_eq!(
                &base, &sharded,
                "overload ledger diverged at {} shards under policy {:?}",
                shards, &policy
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Checkpoint/restore round trip under any generated scenario plan:
    /// pausing either churn engine at an arbitrary point, snapshotting,
    /// and restoring reproduces the uninterrupted run bitwise — and a
    /// snapshot fed to the wrong engine is rejected by name.
    #[test]
    fn checkpoint_round_trips_on_both_engines_under_any_scenario(
        plan in arb_scenario(300.0),
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        scenario_seed in any::<u64>(),
        frac in 0.0f64..1.0,
    ) {
        use sp_model::config::Config;
        use sp_model::snapshot::SnapshotError;
        use sp_sim::engine::{SimOptions, Simulation};
        use sp_sim::reference::ReferenceSimulation;
        let cfg = Config {
            graph_size: 100,
            cluster_size: 10,
            ..Config::default()
        };
        let opts = SimOptions {
            duration_secs: 300.0,
            seed,
            fault_seed,
            scenario_seed,
            ..Default::default()
        };
        let at = 300.0 * frac;

        let full = Simulation::with_scenario(&cfg, opts, &plan).run();
        let mut paused = Simulation::with_scenario(&cfg, opts, &plan);
        paused.run_to(at);
        let snap = paused.snapshot();
        let resumed = Simulation::restore(&snap)
            .expect("own snapshot restores")
            .run();
        prop_assert_eq!(&full, &resumed,
            "fast resume at t={} diverged under plan {:?}", at, &plan);

        let full = ReferenceSimulation::with_scenario(&cfg, opts, &plan).run();
        let mut paused = ReferenceSimulation::with_scenario(&cfg, opts, &plan);
        paused.run_to(at);
        let resumed = ReferenceSimulation::restore(&paused.snapshot())
            .expect("own snapshot restores")
            .run();
        prop_assert_eq!(&full, &resumed,
            "reference resume at t={} diverged under plan {:?}", at, &plan);

        prop_assert!(matches!(
            ReferenceSimulation::restore(&snap),
            Err(SnapshotError::WrongEngine { .. })
        ), "a fast snapshot must not restore into the reference engine");
    }

    /// Resume invariance in the middle of an overloaded flash crowd:
    /// checkpoint either churn engine while a 10× crowd is saturating
    /// bounded queues (mid-shed, mid-brownout, mid-re-home), restore,
    /// and the finished run is bitwise identical to the uninterrupted
    /// one — the overload runtime state round-trips exactly.
    #[test]
    fn overload_resume_mid_flash_crowd_is_bitwise_invariant(
        policy in arb_overload_policy(),
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        scenario_seed in any::<u64>(),
        frac in 0.0f64..1.0,
    ) {
        use sp_model::config::Config;
        use sp_sim::engine::{SimOptions, Simulation};
        use sp_sim::reference::ReferenceSimulation;
        let mut plan = ScenarioPlan::default();
        plan.phases.push(PhaseSpec {
            rate_mult: 1.0,
            from_secs: 60.0,
            until_secs: 240.0,
            kind: PhaseKind::FlashCrowd {
                query_rate_mult: 10.0,
                hot_shift: 16,
            },
        });
        plan.overload = policy;
        prop_assert!(plan.validate().is_ok());
        let cfg = Config {
            graph_size: 100,
            cluster_size: 10,
            query_rate: 0.2,
            ..Config::default()
        };
        let opts = SimOptions {
            duration_secs: 300.0,
            seed,
            fault_seed,
            scenario_seed,
            ..Default::default()
        };
        // Checkpoint *inside* the crowd window.
        let at = 60.0 + 180.0 * frac;

        let full = Simulation::with_scenario(&cfg, opts, &plan).run();
        let mut paused = Simulation::with_scenario(&cfg, opts, &plan);
        paused.run_to(at);
        let resumed = Simulation::restore(&paused.snapshot())
            .expect("own snapshot restores")
            .run();
        prop_assert_eq!(&full, &resumed,
            "fast resume at t={} mid-crowd diverged under policy {:?}",
            at, &plan.overload);
        prop_assert!(
            full.overload.conserved(full.faults.queries_issued, full.faults.queries_lost),
            "extended conservation broken mid-crowd: {:?}", &full.overload
        );

        let full = ReferenceSimulation::with_scenario(&cfg, opts, &plan).run();
        let mut paused = ReferenceSimulation::with_scenario(&cfg, opts, &plan);
        paused.run_to(at);
        let resumed = ReferenceSimulation::restore(&paused.snapshot())
            .expect("own snapshot restores")
            .run();
        prop_assert_eq!(&full, &resumed,
            "reference resume at t={} mid-crowd diverged", at);
    }

    /// Scale-engine checkpoints are canonical: produced at any shard
    /// count, taken at any tick, restored at any other shard count,
    /// the resumed run reduces to the uninterrupted metrics bitwise.
    #[test]
    fn scale_checkpoint_round_trips_at_any_shard_count(
        plan in arb_plan(200.0),
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        produce_shards in 1usize..5,
        restore_shards in 1usize..5,
        frac in 0.0f64..1.0,
    ) {
        use sp_model::config::Config;
        use sp_sim::shard::{ScaleOptions, ShardedSimulation};
        let cfg = Config::scale_preset(1_000);
        let opts = ScaleOptions {
            duration_secs: 200.0,
            seed,
            fault_seed,
            shards: produce_shards,
            ..Default::default()
        };
        let full = ShardedSimulation::with_faults(&cfg, opts, &plan)
            .try_run()
            .expect("uninterrupted run");
        let mut paused = ShardedSimulation::with_faults(&cfg, opts, &plan);
        let mid = (paused.total_ticks() as f64 * frac) as u32;
        paused.run_to(mid).expect("run to checkpoint tick");
        let resumed = ShardedSimulation::restore(
            &paused.snapshot(),
            ScaleOptions { shards: restore_shards, ..Default::default() },
        )
        .expect("own snapshot restores")
        .try_run()
        .expect("resumed run");
        prop_assert_eq!(&full, &resumed,
            "resume at tick {} ({} -> {} shards) diverged under plan {:?}",
            mid, produce_shards, restore_shards, &plan);
    }

    /// Damage rejection: any single bit flip and any strict truncation
    /// of a sealed snapshot must fail restore with a named
    /// [`SnapshotError`] — never panic, never silently misread — and a
    /// future schema version is refused by name.
    #[test]
    fn corrupted_snapshots_are_rejected_never_misread(
        seed in any::<u64>(),
        flip_pos in any::<u64>(),
        flip_bit in 0u8..8,
        cut in any::<u64>(),
    ) {
        use sp_model::config::Config;
        use sp_model::snapshot::SnapshotError;
        use sp_sim::engine::{SimOptions, Simulation};
        let cfg = Config {
            graph_size: 60,
            cluster_size: 10,
            ..Config::default()
        };
        let mut sim = Simulation::new(&cfg, SimOptions {
            duration_secs: 100.0,
            seed,
            ..Default::default()
        });
        sim.run_to(50.0);
        let snap = sim.snapshot();
        prop_assert!(Simulation::restore(&snap).is_ok());

        let mut flipped = snap.clone();
        let i = (flip_pos % flipped.len() as u64) as usize;
        flipped[i] ^= 1 << flip_bit;
        prop_assert!(
            Simulation::restore(&flipped).is_err(),
            "bit {} of byte {} flipped yet the snapshot restored", flip_bit, i
        );

        let prefix = &snap[..(cut % snap.len() as u64) as usize];
        prop_assert!(
            Simulation::restore(prefix).is_err(),
            "a {}-byte prefix of a {}-byte snapshot restored", prefix.len(), snap.len()
        );

        let mut future = snap;
        future[4] = future[4].wrapping_add(1);
        prop_assert!(matches!(
            Simulation::restore(&future),
            Err(SnapshotError::UnsupportedVersion { .. })
        ), "a bumped schema version must be refused by name");
    }
}
