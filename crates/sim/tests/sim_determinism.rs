//! The fast engine's determinism contract, enforced end to end:
//!
//! 1. [`Simulation`] (indexed queue, pooled scratch, cached connection
//!    counts) and [`ReferenceSimulation`] (original binary-heap
//!    implementation) produce **bitwise identical** [`RawMetrics`] on
//!    every configuration and seed — every optimization is exact.
//! 2. Sharded trials reduce to bitwise-identical results at any thread
//!    count, because each trial owns an RNG split and results are
//!    collected by trial index.

use sp_model::config::Config;
use sp_model::load::Load;
use sp_model::population::PopulationModel;
use sp_sim::engine::{AdaptSettings, ForwardPolicy, SimOptions, Simulation};
use sp_sim::reference::ReferenceSimulation;
use sp_sim::scenario::{reliability_trials, steady_trials, SimTrialOptions};

fn assert_engines_agree(label: &str, config: &Config, opts: SimOptions) {
    let mut fast = Simulation::new(config, opts);
    let fast_metrics = fast.run();
    let mut reference = ReferenceSimulation::new(config, opts);
    let reference_metrics = reference.run();
    assert_eq!(
        fast_metrics, reference_metrics,
        "engines diverged on {label} (seed {})",
        opts.seed
    );
    assert_eq!(
        fast.events_delivered(),
        reference.events_delivered(),
        "delivered-event counts diverged on {label}",
    );
}

#[test]
fn engines_agree_on_steady_state() {
    let config = Config {
        graph_size: 100,
        cluster_size: 10,
        ..Config::default()
    };
    for seed in [1, 2, 3] {
        assert_engines_agree(
            "steady state",
            &config,
            SimOptions {
                duration_secs: 900.0,
                seed,
                ..Default::default()
            },
        );
    }
}

#[test]
fn engines_agree_under_heavy_churn() {
    for redundancy in [false, true] {
        let config = Config {
            graph_size: 120,
            cluster_size: 12,
            population: PopulationModel {
                lifespan_mean_secs: 400.0,
                ..Default::default()
            },
            ..Config::default()
        }
        .with_redundancy(redundancy);
        assert_engines_agree(
            if redundancy {
                "churn with k=2 redundancy"
            } else {
                "churn with k=1"
            },
            &config,
            SimOptions {
                duration_secs: 1800.0,
                seed: 7,
                ..Default::default()
            },
        );
    }
}

#[test]
fn engines_agree_under_bounded_fanout() {
    let config = Config {
        graph_size: 200,
        cluster_size: 10,
        avg_outdegree: 8.0,
        ttl: 4,
        ..Config::default()
    };
    assert_engines_agree(
        "random-subset forwarding",
        &config,
        SimOptions {
            duration_secs: 900.0,
            seed: 9,
            forward_policy: ForwardPolicy::RandomSubset { fanout: 2 },
            ..Default::default()
        },
    );
}

#[test]
fn engines_agree_under_adaptation() {
    let config = Config {
        graph_size: 150,
        cluster_size: 50,
        ..Config::default()
    };
    assert_engines_agree(
        "adaptive local rules",
        &config,
        SimOptions {
            duration_secs: 1800.0,
            seed: 3,
            adapt: Some(AdaptSettings {
                interval_secs: 120.0,
                limit: Load {
                    in_bw: 2e5,
                    out_bw: 2e5,
                    proc: 2e7,
                },
            }),
            ..Default::default()
        },
    );
}

#[test]
fn sharded_trials_are_bitwise_identical_across_thread_counts() {
    let config = Config {
        graph_size: 80,
        cluster_size: 10,
        ..Config::default()
    };
    let base = SimTrialOptions {
        trials: 4,
        seed: 11,
        threads: 1,
    };
    let single = steady_trials(&config, 400.0, &base);
    for threads in [2, 8] {
        let sharded = steady_trials(&config, 400.0, &SimTrialOptions { threads, ..base });
        assert_eq!(
            single.per_trial, sharded.per_trial,
            "steady trials diverged at {threads} threads"
        );
    }

    let churny = Config {
        graph_size: 80,
        cluster_size: 10,
        population: PopulationModel {
            lifespan_mean_secs: 400.0,
            ..Default::default()
        },
        ..Config::default()
    };
    let single = reliability_trials(&churny, 600.0, &base);
    for threads in [2, 8] {
        let sharded = reliability_trials(&churny, 600.0, &SimTrialOptions { threads, ..base });
        assert_eq!(
            single.per_trial, sharded.per_trial,
            "reliability trials diverged at {threads} threads"
        );
    }
}
