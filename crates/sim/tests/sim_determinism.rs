//! The fast engine's determinism contract, enforced end to end:
//!
//! 1. [`Simulation`] (indexed queue, pooled scratch, cached connection
//!    counts) and [`ReferenceSimulation`] (original binary-heap
//!    implementation) produce **bitwise identical** [`RawMetrics`] on
//!    every configuration and seed — every optimization is exact.
//! 2. Sharded trials reduce to bitwise-identical results at any thread
//!    count, because each trial owns an RNG split and results are
//!    collected by trial index.

use sp_model::config::Config;
use sp_model::faults::{FaultPlan, FaultSpec};
use sp_model::load::Load;
use sp_model::population::PopulationModel;
use sp_model::repair::RepairPolicy;
use sp_model::scenario::{CapacityClass, PhaseKind, PhaseSpec, ScenarioPlan};
use sp_sim::campaign::{run_campaign, CampaignOptions};
use sp_sim::engine::{AdaptSettings, ForwardPolicy, SimOptions, Simulation};
use sp_sim::reference::ReferenceSimulation;
use sp_sim::scenario::{
    crash_storm_plan, crash_storm_trials, reliability_trials, steady_trials, SimTrialOptions,
};
use sp_sim::shard::{ScaleOptions, ShardedSimulation};

fn assert_engines_agree(label: &str, config: &Config, opts: SimOptions) {
    assert_engines_agree_with_faults(label, config, opts, &FaultPlan::default());
}

fn assert_engines_agree_with_faults(
    label: &str,
    config: &Config,
    opts: SimOptions,
    plan: &FaultPlan,
) {
    let mut fast = Simulation::with_faults(config, opts, plan);
    let fast_metrics = fast.run();
    let mut reference = ReferenceSimulation::with_faults(config, opts, plan);
    let reference_metrics = reference.run();
    assert_eq!(
        fast_metrics, reference_metrics,
        "engines diverged on {label} (seed {})",
        opts.seed
    );
    assert_eq!(
        fast.events_delivered(),
        reference.events_delivered(),
        "delivered-event counts diverged on {label}",
    );
}

fn assert_engines_agree_with_scenario(
    label: &str,
    config: &Config,
    opts: SimOptions,
    plan: &ScenarioPlan,
) {
    let mut fast = Simulation::with_scenario(config, opts, plan);
    let fast_metrics = fast.run();
    let mut reference = ReferenceSimulation::with_scenario(config, opts, plan);
    let reference_metrics = reference.run();
    assert_eq!(
        fast_metrics, reference_metrics,
        "engines diverged on {label} (seed {}, scenario seed {})",
        opts.seed, opts.scenario_seed
    );
    assert_eq!(
        fast.events_delivered(),
        reference.events_delivered(),
        "delivered-event counts diverged on {label}",
    );
}

/// A hand-built scenario exercising every phase kind at once, plus
/// capacity classes, an embedded fault window, and a repair policy.
fn rich_scenario_plan() -> ScenarioPlan {
    let plan = ScenarioPlan {
        phases: vec![
            PhaseSpec {
                rate_mult: 1.0,
                from_secs: 100.0,
                until_secs: 400.0,
                kind: PhaseKind::FlashCrowd {
                    query_rate_mult: 4.0,
                    hot_shift: 13,
                },
            },
            PhaseSpec {
                rate_mult: 1.0,
                from_secs: 150.0,
                until_secs: 600.0,
                kind: PhaseKind::ChurnBurst { lifespan_mult: 0.4 },
            },
            PhaseSpec {
                rate_mult: 1.0,
                from_secs: 450.0,
                until_secs: 470.0,
                kind: PhaseKind::MassLeave { fraction: 0.25 },
            },
            PhaseSpec {
                rate_mult: 1.0,
                from_secs: 500.0,
                until_secs: 800.0,
                kind: PhaseKind::Split { fraction: 0.3 },
            },
        ],
        capacity_classes: vec![
            CapacityClass {
                weight: 3.0,
                files_mult: 2.0,
                lifespan_mult: 1.5,
            },
            CapacityClass {
                weight: 1.0,
                files_mult: 0.5,
                lifespan_mult: 0.75,
            },
        ],
        faults: FaultPlan {
            faults: vec![FaultSpec::MessageLoss {
                from_secs: 200.0,
                until_secs: 700.0,
                drop_prob: 0.2,
            }],
            ..Default::default()
        },
        repair: RepairPolicy::Promote,
        overload: sp_model::overload::OverloadPolicy::default(),
    };
    plan.validate().expect("rich scenario must validate");
    plan
}

#[test]
fn engines_agree_under_scenario_plans() {
    let plan = rich_scenario_plan();
    for redundancy in [false, true] {
        let config = Config {
            graph_size: 120,
            cluster_size: 12,
            population: PopulationModel {
                lifespan_mean_secs: 400.0,
                ..Default::default()
            },
            ..Config::default()
        }
        .with_redundancy(redundancy);
        for scenario_seed in [0, 99] {
            assert_engines_agree_with_scenario(
                "all-phase scenario",
                &config,
                SimOptions {
                    duration_secs: 1200.0,
                    seed: 7,
                    fault_seed: 7,
                    scenario_seed,
                    ..Default::default()
                },
                &plan,
            );
        }
    }
}

/// A flash-crowd scenario paired with an active overload policy: the
/// bounded queues, token budgets, brownout hysteresis, and re-homing
/// are all draw-free, so both engines must stay bitwise identical
/// even while shedding load.
fn overload_scenario_plan(config: &Config) -> ScenarioPlan {
    let plan = ScenarioPlan {
        phases: vec![PhaseSpec {
            rate_mult: 1.0,
            from_secs: 200.0,
            until_secs: 600.0,
            kind: PhaseKind::FlashCrowd {
                query_rate_mult: 10.0,
                hot_shift: 7,
            },
        }],
        overload: sp_model::overload::OverloadPolicy::sized_for(config),
        ..Default::default()
    };
    plan.validate().expect("overload scenario must validate");
    plan
}

#[test]
fn engines_agree_under_overload_control() {
    let config = Config {
        graph_size: 120,
        cluster_size: 12,
        population: PopulationModel {
            lifespan_mean_secs: 500.0,
            ..Default::default()
        },
        ..Config::default()
    };
    let plan = overload_scenario_plan(&config);
    for seed in [3, 11] {
        assert_engines_agree_with_scenario(
            "overload under flash crowd",
            &config,
            SimOptions {
                duration_secs: 900.0,
                seed,
                fault_seed: seed,
                scenario_seed: 5,
                ..Default::default()
            },
            &plan,
        );
    }

    // Reject-at-admission with a hair-trigger re-home threshold: every
    // full-queue arrival is a strike, so clients actually migrate —
    // exercising the Table 2 re-join path in both engines.
    let mut rehoming = plan;
    rehoming.overload.discipline = sp_model::overload::ShedDiscipline::RejectAtAdmission;
    rehoming.overload.rehome_strikes = 2;
    assert_engines_agree_with_scenario(
        "overload with client re-homing",
        &config,
        SimOptions {
            duration_secs: 900.0,
            seed: 3,
            fault_seed: 3,
            scenario_seed: 5,
            ..Default::default()
        },
        &rehoming,
    );
}

#[test]
fn engines_agree_under_uncontrolled_overload_measurement() {
    // queue_capacity = 0: latency and depth are measured but nothing
    // is shed — the uncontrolled baseline must also be engine-exact.
    let config = Config {
        graph_size: 100,
        cluster_size: 10,
        ..Config::default()
    };
    let mut plan = overload_scenario_plan(&config);
    plan.overload = sp_model::overload::OverloadPolicy::uncontrolled_for(&config);
    assert_engines_agree_with_scenario(
        "uncontrolled overload measurement",
        &config,
        SimOptions {
            duration_secs: 900.0,
            seed: 21,
            scenario_seed: 2,
            ..Default::default()
        },
        &plan,
    );
}

#[test]
fn empty_overload_policy_is_bitwise_inert() {
    let config = Config {
        graph_size: 100,
        cluster_size: 10,
        ..Config::default()
    };
    let opts = SimOptions {
        duration_secs: 900.0,
        seed: 17,
        ..Default::default()
    };
    let plain = Simulation::new(&config, opts).run();
    let with_empty = Simulation::new(
        &config,
        SimOptions {
            overload: sp_model::overload::OverloadPolicy::default(),
            ..opts
        },
    )
    .run();
    assert_eq!(
        plain, with_empty,
        "the empty overload policy must change nothing"
    );
}

#[test]
fn empty_scenario_plan_is_bitwise_inert() {
    let config = Config {
        graph_size: 100,
        cluster_size: 10,
        population: PopulationModel {
            lifespan_mean_secs: 500.0,
            ..Default::default()
        },
        ..Config::default()
    };
    let opts = SimOptions {
        duration_secs: 900.0,
        seed: 13,
        ..Default::default()
    };
    let plain = Simulation::new(&config, opts).run();
    // An empty scenario never draws from its dedicated RNG stream and
    // schedules no phase events, so any scenario seed must reproduce
    // the plain run byte for byte.
    let with_empty = Simulation::with_scenario(
        &config,
        SimOptions {
            scenario_seed: 0xBEEF,
            ..opts
        },
        &ScenarioPlan::default(),
    )
    .run();
    assert_eq!(plain, with_empty, "an empty scenario must change nothing");
}

#[test]
fn campaign_is_green_and_bitwise_identical_across_thread_counts() {
    // The standing fuzz gate's own contract: a seeded differential
    // campaign finds no divergences, and its order-sensitive
    // fingerprint is invariant under the worker-thread count.
    let base = CampaignOptions {
        count: 6,
        seed: 13,
        threads: 1,
        users: 60,
        cluster_size: 10,
        duration_secs: 300.0,
        inject_panic: None,
    };
    let single = run_campaign(&base);
    assert!(
        single.divergences.is_empty(),
        "campaign found divergences: {:?}",
        single.divergences
    );
    for threads in [2, 8] {
        let sharded = run_campaign(&CampaignOptions { threads, ..base });
        assert_eq!(
            single.fingerprint, sharded.fingerprint,
            "campaign fingerprint diverged at {threads} threads"
        );
        assert!(sharded.divergences.is_empty());
    }
}

#[test]
fn engines_agree_on_steady_state() {
    let config = Config {
        graph_size: 100,
        cluster_size: 10,
        ..Config::default()
    };
    for seed in [1, 2, 3] {
        assert_engines_agree(
            "steady state",
            &config,
            SimOptions {
                duration_secs: 900.0,
                seed,
                ..Default::default()
            },
        );
    }
}

#[test]
fn engines_agree_under_heavy_churn() {
    for redundancy in [false, true] {
        let config = Config {
            graph_size: 120,
            cluster_size: 12,
            population: PopulationModel {
                lifespan_mean_secs: 400.0,
                ..Default::default()
            },
            ..Config::default()
        }
        .with_redundancy(redundancy);
        assert_engines_agree(
            if redundancy {
                "churn with k=2 redundancy"
            } else {
                "churn with k=1"
            },
            &config,
            SimOptions {
                duration_secs: 1800.0,
                seed: 7,
                ..Default::default()
            },
        );
    }
}

#[test]
fn engines_agree_under_bounded_fanout() {
    let config = Config {
        graph_size: 200,
        cluster_size: 10,
        avg_outdegree: 8.0,
        ttl: 4,
        ..Config::default()
    };
    assert_engines_agree(
        "random-subset forwarding",
        &config,
        SimOptions {
            duration_secs: 900.0,
            seed: 9,
            forward_policy: ForwardPolicy::RandomSubset { fanout: 2 },
            ..Default::default()
        },
    );
}

#[test]
fn engines_agree_under_adaptation() {
    let config = Config {
        graph_size: 150,
        cluster_size: 50,
        ..Config::default()
    };
    assert_engines_agree(
        "adaptive local rules",
        &config,
        SimOptions {
            duration_secs: 1800.0,
            seed: 3,
            adapt: Some(AdaptSettings {
                interval_secs: 120.0,
                limit: Load {
                    in_bw: 2e5,
                    out_bw: 2e5,
                    proc: 2e7,
                },
            }),
            ..Default::default()
        },
    );
}

#[test]
fn engines_agree_under_fault_plans() {
    let churny = Config {
        graph_size: 120,
        cluster_size: 12,
        population: PopulationModel {
            lifespan_mean_secs: 400.0,
            ..Default::default()
        },
        ..Config::default()
    };
    let windowed = FaultPlan {
        faults: vec![
            FaultSpec::MessageLoss {
                from_secs: 200.0,
                until_secs: 900.0,
                drop_prob: 0.25,
            },
            FaultSpec::MessageDelay {
                from_secs: 100.0,
                until_secs: 1100.0,
                delay_prob: 0.3,
                delay_secs: 2.0,
            },
            FaultSpec::FlakyPartners {
                from_secs: 300.0,
                until_secs: 800.0,
                flake_prob: 0.4,
            },
            FaultSpec::Partition {
                from_secs: 400.0,
                until_secs: 700.0,
                clusters: vec![0, 3, 5],
            },
        ],
        ..Default::default()
    };
    for redundancy in [false, true] {
        let config = churny.clone().with_redundancy(redundancy);
        for (label, plan) in [
            ("crash storm", crash_storm_plan(1200.0)),
            ("loss/delay/flaky/partition windows", windowed.clone()),
        ] {
            for fault_seed in [0, 99] {
                // Every repair policy must agree bitwise across
                // engines, including the Section 5.3 election and the
                // headless-window charging it implies.
                for repair in RepairPolicy::ALL {
                    assert_engines_agree_with_faults(
                        label,
                        &config,
                        SimOptions {
                            duration_secs: 1200.0,
                            seed: 7,
                            fault_seed,
                            repair,
                            ..Default::default()
                        },
                        &plan,
                    );
                }
            }
        }
    }
}

#[test]
fn engines_agree_on_repair_under_adaptation() {
    // Adaptation + crash storm + repair: the stalled-adapt-tick restart
    // path only triggers when a headless window swallows a tick.
    let config = Config {
        graph_size: 120,
        cluster_size: 12,
        population: PopulationModel {
            lifespan_mean_secs: 400.0,
            ..Default::default()
        },
        ..Config::default()
    };
    assert_engines_agree_with_faults(
        "adaptive crash storm with repair",
        &config,
        SimOptions {
            duration_secs: 1200.0,
            seed: 5,
            fault_seed: 5,
            repair: RepairPolicy::PromotePartner,
            adapt: Some(AdaptSettings {
                interval_secs: 60.0,
                limit: Load {
                    in_bw: 2e5,
                    out_bw: 2e5,
                    proc: 2e7,
                },
            }),
            ..Default::default()
        },
        &crash_storm_plan(1200.0),
    );
}

#[test]
fn empty_fault_plan_is_bitwise_inert() {
    let config = Config {
        graph_size: 100,
        cluster_size: 10,
        population: PopulationModel {
            lifespan_mean_secs: 500.0,
            ..Default::default()
        },
        ..Config::default()
    };
    let opts = SimOptions {
        duration_secs: 900.0,
        seed: 13,
        ..Default::default()
    };
    let plain = Simulation::new(&config, opts).run();
    // Any fault seed and any repair policy: with an empty plan the
    // fault stream is never drawn from and repair never engages (it
    // only answers fault-injected crashes), so the run must be
    // byte-for-byte the no-fault run.
    for repair in RepairPolicy::ALL {
        let with_empty_plan = Simulation::with_faults(
            &config,
            SimOptions {
                fault_seed: 0xDEAD,
                repair,
                ..opts
            },
            &FaultPlan::default(),
        )
        .run();
        assert_eq!(
            plain, with_empty_plan,
            "an empty plan must change nothing under --repair={repair}"
        );
    }
}

#[test]
fn crash_storm_trials_are_bitwise_identical_across_thread_counts() {
    let churny = Config {
        graph_size: 80,
        cluster_size: 10,
        population: PopulationModel {
            lifespan_mean_secs: 400.0,
            ..Default::default()
        },
        ..Config::default()
    };
    for repair in RepairPolicy::ALL {
        let base = SimTrialOptions {
            trials: 4,
            seed: 21,
            threads: 1,
            repair,
            ..Default::default()
        };
        let single = crash_storm_trials(&churny, 600.0, &base);
        for threads in [2, 8] {
            let sharded = crash_storm_trials(&churny, 600.0, &SimTrialOptions { threads, ..base });
            assert_eq!(
                single.per_trial, sharded.per_trial,
                "crash-storm trials diverged at {threads} threads under --repair={repair}"
            );
        }
    }
}

/// Runs the scale engine at every shard count in `shards` and asserts
/// the metrics are bitwise identical to the 1-shard run.
fn assert_scale_invariant(label: &str, config: &Config, plan: &FaultPlan, opts: ScaleOptions) {
    let base =
        ShardedSimulation::with_faults(config, ScaleOptions { shards: 1, ..opts }, plan).run();
    for shards in [2, 4, 8] {
        let sharded =
            ShardedSimulation::with_faults(config, ScaleOptions { shards, ..opts }, plan).run();
        assert_eq!(
            base, sharded,
            "scale metrics diverged on {label} at {shards} shards (seed {})",
            opts.seed
        );
    }
}

#[test]
fn scale_engine_is_bitwise_identical_across_shard_counts() {
    // The tentpole contract: ScaleMetrics at shards ∈ {1, 2, 4, 8}
    // are bitwise identical, steady state and under fault plans.
    let config = Config::scale_preset(2_000);
    for seed in [1, 42] {
        assert_scale_invariant(
            "steady scale run",
            &config,
            &FaultPlan::default(),
            ScaleOptions {
                duration_secs: 400.0,
                seed,
                ..Default::default()
            },
        );
    }
}

#[test]
fn scale_engine_repair_is_bitwise_identical_across_shard_counts() {
    // Shard-boundary repair: a crash storm kills super-peers whose
    // overlay neighbors live on other shards; elections and the
    // cross-shard re-index announcements they trigger must reduce
    // identically at 1, 2, 4, and 8 shards.
    for redundancy in [false, true] {
        let config = Config::scale_preset(2_000).with_redundancy(redundancy);
        let plan = crash_storm_plan(600.0);
        for fault_seed in [0, 99] {
            let opts = ScaleOptions {
                duration_secs: 600.0,
                seed: 7,
                fault_seed,
                ..Default::default()
            };
            let probe = ShardedSimulation::with_faults(&config, opts, &plan).run();
            assert!(
                probe.elections_held > 0,
                "crash storm must trigger elections (k={})",
                config.redundancy_k
            );
            assert!(
                probe.reindex_received > 0,
                "elections must announce re-indexing across the overlay"
            );
            assert_scale_invariant("crash-storm scale run", &config, &plan, opts);
        }
    }
}

#[test]
fn scale_engine_windowed_faults_are_bitwise_identical_across_shard_counts() {
    let config = Config::scale_preset(2_000);
    let windowed = FaultPlan {
        faults: vec![
            FaultSpec::MessageLoss {
                from_secs: 50.0,
                until_secs: 300.0,
                drop_prob: 0.25,
            },
            FaultSpec::MessageDelay {
                from_secs: 30.0,
                until_secs: 350.0,
                delay_prob: 0.3,
                delay_secs: 2.0,
            },
            FaultSpec::Partition {
                from_secs: 100.0,
                until_secs: 250.0,
                clusters: vec![0, 3, 5, 77],
            },
            FaultSpec::CrashFraction {
                at_secs: 150.0,
                fraction: 0.2,
            },
        ],
        ..Default::default()
    };
    assert_scale_invariant(
        "loss/delay/partition/crash scale run",
        &config,
        &windowed,
        ScaleOptions {
            duration_secs: 400.0,
            seed: 11,
            fault_seed: 3,
            ..Default::default()
        },
    );
}

#[test]
fn sharded_trials_are_bitwise_identical_across_thread_counts() {
    let config = Config {
        graph_size: 80,
        cluster_size: 10,
        ..Config::default()
    };
    let base = SimTrialOptions {
        trials: 4,
        seed: 11,
        threads: 1,
        repair: RepairPolicy::Off,
        ..Default::default()
    };
    let single = steady_trials(&config, 400.0, &base);
    for threads in [2, 8] {
        let sharded = steady_trials(&config, 400.0, &SimTrialOptions { threads, ..base });
        assert_eq!(
            single.per_trial, sharded.per_trial,
            "steady trials diverged at {threads} threads"
        );
    }

    let churny = Config {
        graph_size: 80,
        cluster_size: 10,
        population: PopulationModel {
            lifespan_mean_secs: 400.0,
            ..Default::default()
        },
        ..Config::default()
    };
    let single = reliability_trials(&churny, 600.0, &base);
    for threads in [2, 8] {
        let sharded = reliability_trials(&churny, 600.0, &SimTrialOptions { threads, ..base });
        assert_eq!(
            single.per_trial, sharded.per_trial,
            "reliability trials diverged at {threads} threads"
        );
    }
}

#[test]
fn checkpoint_resume_is_bitwise_identical_on_both_churn_engines() {
    // The checkpoint contract (DESIGN.md §17): run-to-T, snapshot,
    // restore in a fresh process image, run-to-end must reproduce the
    // uninterrupted run byte for byte — on the fast engine AND the
    // reference engine, under the full scenario machinery.
    let plan = rich_scenario_plan();
    let config = Config {
        graph_size: 120,
        cluster_size: 12,
        population: PopulationModel {
            lifespan_mean_secs: 400.0,
            ..Default::default()
        },
        ..Config::default()
    };
    let opts = SimOptions {
        duration_secs: 1200.0,
        seed: 7,
        fault_seed: 7,
        scenario_seed: 99,
        ..Default::default()
    };
    let full_fast = Simulation::with_scenario(&config, opts, &plan).run();
    let full_reference = ReferenceSimulation::with_scenario(&config, opts, &plan).run();
    for at in [1.0, 300.0, 650.0, 1199.0] {
        let mut fast = Simulation::with_scenario(&config, opts, &plan);
        fast.run_to(at);
        let snap = fast.snapshot();
        let resumed = Simulation::restore(&snap)
            .expect("fast snapshot restores")
            .run();
        assert_eq!(full_fast, resumed, "fast resume diverged at t={at}");
        // Snapshotting is a pure read: the paused original must still
        // finish identically.
        assert_eq!(full_fast, fast.run(), "snapshot perturbed the paused run");

        let mut reference = ReferenceSimulation::with_scenario(&config, opts, &plan);
        reference.run_to(at);
        let resumed = ReferenceSimulation::restore(&reference.snapshot())
            .expect("reference snapshot restores")
            .run();
        assert_eq!(
            full_reference, resumed,
            "reference resume diverged at t={at}"
        );
    }
}

#[test]
fn scale_checkpoint_is_canonical_and_resumes_at_any_shard_count() {
    // Sharded snapshots are written in canonical (shard-count-free)
    // form: the bytes must not depend on how many shards produced
    // them, and a checkpoint taken at N shards must resume at M shards
    // with bitwise-identical ScaleMetrics.
    let config = Config::scale_preset(2_000);
    let plan = crash_storm_plan(600.0);
    let opts = ScaleOptions {
        duration_secs: 600.0,
        seed: 7,
        fault_seed: 99,
        ..Default::default()
    };
    let full = ShardedSimulation::with_faults(&config, ScaleOptions { shards: 1, ..opts }, &plan)
        .try_run()
        .expect("uninterrupted scale run");

    let mut producer =
        ShardedSimulation::with_faults(&config, ScaleOptions { shards: 2, ..opts }, &plan);
    let mid = producer.total_ticks() / 2;
    producer.run_to(mid).expect("run to mid-tick");
    let snap = producer.snapshot();

    for shards in [1, 4] {
        let mut other =
            ShardedSimulation::with_faults(&config, ScaleOptions { shards, ..opts }, &plan);
        other.run_to(mid).expect("run to mid-tick");
        assert_eq!(
            snap,
            other.snapshot(),
            "snapshot bytes differ between 2 and {shards} shards"
        );
    }

    for shards in [1, 2, 4] {
        let resumed = ShardedSimulation::restore(
            &snap,
            ScaleOptions {
                shards,
                ..Default::default()
            },
        )
        .expect("scale snapshot restores")
        .try_run()
        .expect("resumed scale run");
        assert_eq!(full, resumed, "scale resume diverged at {shards} shards");
    }
}
