//! The indexed event queue must be observationally identical to the
//! plain binary heap it replaced: on any interleaving of schedules and
//! pops, both queues deliver the same events in the same order, with
//! FIFO-stable ties. Cancellation (the indexed queue's reason to
//! exist) must remove exactly the cancelled event — never an event
//! that already fired, and never a recycled slot's new occupant.

use sp_sim::events::{BinaryEventQueue, Event, EventHandle, IndexedEventQueue, PeerId};
use sp_stats::SpRng;

/// A distinguishable event: tag each scheduled event through the
/// `PeerLeave` payload so pops can be compared event-for-event.
fn tagged(tag: u64) -> Event {
    Event::PeerLeave {
        peer: tag as PeerId,
        generation: (tag >> 32) as u32,
    }
}

#[test]
fn random_programs_pop_identically() {
    let mut rng = SpRng::seed_from_u64(0xEA5E);
    for round in 0..50 {
        let mut binary = BinaryEventQueue::new();
        let mut indexed = IndexedEventQueue::new();
        let mut tag = 0u64;
        for step in 0..400 {
            if rng.chance(0.6) || binary.is_empty() {
                // Coarse times force frequent ties; seq must break them
                // identically (insertion order).
                let time = (rng.below(20) as f64) + f64::from(round);
                let event = tagged(tag);
                tag += 1;
                binary.schedule(time, event);
                indexed.schedule(time, event);
            } else {
                assert_eq!(
                    binary.pop(),
                    indexed.pop(),
                    "divergence in round {round} at step {step}"
                );
            }
            assert_eq!(binary.len(), indexed.len());
        }
        while let Some(expected) = binary.pop() {
            assert_eq!(Some(expected), indexed.pop());
        }
        assert!(indexed.pop().is_none());
    }
}

#[test]
fn ties_pop_in_fifo_order_across_interleaved_pops() {
    let mut binary = BinaryEventQueue::new();
    let mut indexed = IndexedEventQueue::new();
    for tag in 0..8 {
        binary.schedule(1.0, tagged(tag));
        indexed.schedule(1.0, tagged(tag));
    }
    // Draining half, then scheduling more ties at the same timestamp,
    // must preserve overall insertion order.
    for expected in 0..4 {
        assert_eq!(binary.pop(), Some((1.0, tagged(expected))));
        assert_eq!(indexed.pop(), Some((1.0, tagged(expected))));
    }
    for tag in 8..12 {
        binary.schedule(1.0, tagged(tag));
        indexed.schedule(1.0, tagged(tag));
    }
    for expected in 4..12 {
        assert_eq!(binary.pop(), Some((1.0, tagged(expected))));
        assert_eq!(indexed.pop(), Some((1.0, tagged(expected))));
    }
}

#[test]
fn cancel_then_fire_never_double_delivers() {
    let mut rng = SpRng::seed_from_u64(0xD0D0);
    for _ in 0..50 {
        let mut q = IndexedEventQueue::new();
        let mut live: Vec<(u64, EventHandle)> = Vec::new();
        let mut cancelled: Vec<u64> = Vec::new();
        let mut delivered: Vec<u64> = Vec::new();
        let mut stale: Vec<EventHandle> = Vec::new();
        let mut tag = 0u64;
        for _ in 0..300 {
            match rng.below(4) {
                0 | 1 => {
                    let h = q.schedule(rng.below(50) as f64, tagged(tag));
                    live.push((tag, h));
                    tag += 1;
                }
                2 if !live.is_empty() => {
                    let (t, h) = live.swap_remove(rng.index(live.len()));
                    assert!(q.cancel(h), "live handle must cancel");
                    cancelled.push(t);
                    stale.push(h);
                }
                _ => {
                    if let Some((_, ev)) = q.pop() {
                        let Event::PeerLeave { peer, generation } = ev else {
                            panic!("unexpected event");
                        };
                        let t = u64::from(peer) | (u64::from(generation) << 32);
                        live.retain(|&(lt, _)| lt != t);
                        delivered.push(t);
                    }
                }
            }
            // Stale handles (already cancelled, slot possibly recycled)
            // must stay inert forever.
            for &h in &stale {
                assert!(!q.cancel(h), "stale handle cancelled a recycled slot");
            }
        }
        while let Some((_, ev)) = q.pop() {
            let Event::PeerLeave { peer, generation } = ev else {
                panic!("unexpected event");
            };
            delivered.push(u64::from(peer) | (u64::from(generation) << 32));
        }
        // Every scheduled tag was either delivered once or cancelled
        // once — never both, never twice.
        let mut seen = vec![0u8; tag as usize];
        for &t in &delivered {
            seen[t as usize] += 1;
        }
        for &t in &cancelled {
            assert_eq!(seen[t as usize], 0, "tag {t} cancelled AND delivered");
            seen[t as usize] += 1;
        }
        assert!(seen.iter().all(|&c| c == 1), "some tag lost or duplicated");
    }
}
