//! Overload-control runtime: the mechanism half of
//! [`sp_model::overload`].
//!
//! Each live cluster's virtual super-peer owns a bounded work queue
//! drained at the policy's service rate. The engines do the *network*
//! work of a query (flood, probes, response routing) at admission time
//! — that is what the Table 2 cost model charges — while the
//! super-peer's *response completion* is queued here and completes
//! `service` seconds after the server reaches it. The queue is a
//! virtual-service-time ledger drained lazily at observation points
//! (the next admission at that cluster, sample ticks, cluster death,
//! finalize), so no new event kind is needed and both churn engines
//! observe identical state at identical simulated times regardless of
//! thread count.
//!
//! Everything in this module is **draw-free**: admission, shedding,
//! brownout hysteresis, and re-homing target selection never touch an
//! RNG stream, which is what makes the empty policy bitwise inert and
//! the active policy thread- and engine-invariant by construction.
//!
//! The conservation ledger extends the fault layer's: every query a
//! live client issues is eventually exactly one of *lost* (submission
//! failed — the fault layer's ledger), *rejected* (admission refused:
//! token budget or a full queue under `RejectAtAdmission` /
//! `DropLowestTtl` electing the arrival), *shed* (accepted but dropped
//! before completion: discipline victim, cluster death, or end-of-run
//! residual), or *delivered* (response completed). `issued = delivered
//! + lost + shed + rejected`, checked by
//! [`OverloadMetrics::conserved`].

use sp_model::overload::{OverloadPolicy, ShedDiscipline};
use sp_model::snapshot::{SnapReader, SnapWriter, SnapshotError};
use std::collections::VecDeque;

use crate::events::{ClusterId, PeerId};

/// Response-latency histogram: logarithmic buckets over simulated
/// seconds. Bucket `i` covers `[2^(i-10), 2^(i-9))` seconds — bucket 0
/// holds everything below ~1 ms, the last bucket everything from ~2⁸
/// seconds up. Integer counts, so merging and comparing is exact.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyHistogram {
    /// Bucket counts.
    pub buckets: [u64; LATENCY_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of observed latencies, seconds.
    pub sum_secs: f64,
    /// Largest observed latency, seconds.
    pub max_secs: f64,
}

/// Number of logarithmic latency buckets.
pub const LATENCY_BUCKETS: usize = 19;

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; LATENCY_BUCKETS],
            count: 0,
            sum_secs: 0.0,
            max_secs: 0.0,
        }
    }
}

impl LatencyHistogram {
    fn bucket_of(secs: f64) -> usize {
        if secs <= 0.0 {
            return 0;
        }
        let idx = secs.log2().floor() as i64 + 10;
        idx.clamp(0, LATENCY_BUCKETS as i64 - 1) as usize
    }

    /// Records one response latency.
    pub fn record(&mut self, secs: f64) {
        self.buckets[Self::bucket_of(secs)] += 1;
        self.count += 1;
        self.sum_secs += secs;
        if secs > self.max_secs {
            self.max_secs = secs;
        }
    }

    /// Upper bound of the bucket holding quantile `q` (0 when empty):
    /// a conservative quantile estimate, exact to within one power of
    /// two.
    pub fn quantile_secs(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 2f64.powi(i as i32 - 9);
            }
        }
        self.max_secs
    }

    /// Mean latency in seconds (0 when empty).
    pub fn mean_secs(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_secs / self.count as f64
        }
    }

    fn snap(&self, w: &mut SnapWriter) {
        for &b in &self.buckets {
            w.u64(b);
        }
        w.u64(self.count);
        w.f64(self.sum_secs);
        w.f64(self.max_secs);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<LatencyHistogram, SnapshotError> {
        let mut h = LatencyHistogram::default();
        for b in h.buckets.iter_mut() {
            *b = r.u64("overload.latency.bucket")?;
        }
        h.count = r.u64("overload.latency.count")?;
        h.sum_secs = r.f64("overload.latency.sum")?;
        h.max_secs = r.f64("overload.latency.max")?;
        Ok(h)
    }
}

/// One point of the queue-depth/utilization timeline, recorded at
/// sample ticks when the policy is active.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OvPoint {
    /// Simulated time of the sample.
    pub t: f64,
    /// Total queued responses across all clusters (after draining
    /// completions due by `t`).
    pub queued: u64,
    /// Deepest single queue.
    pub max_depth: u64,
    /// Mean server utilization since the previous point: busy seconds
    /// accumulated across clusters over elapsed cluster-seconds, in
    /// [0, 1].
    pub utilization: f64,
    /// Clusters currently browned out.
    pub browned_out: u64,
}

/// Overload counters and observability. Lives inside `RawMetrics`, so
/// the engine-equivalence, thread-invariance, and campaign fingerprint
/// checks all cover it bitwise.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OverloadMetrics {
    /// Responses completed by a super-peer (the query's terminal
    /// success state under an active policy).
    pub delivered: u64,
    /// Queued responses shed by the policy discipline to admit newer
    /// work (`DropOldest` / `DropLowestTtl` victims already queued).
    pub shed_discipline: u64,
    /// Queued responses shed because their cluster died.
    pub shed_dead: u64,
    /// Responses still queued when the run ended.
    pub shed_residual: u64,
    /// Arrivals refused because the queue was full (including
    /// `DropLowestTtl` electing the arrival itself).
    pub rejected_queue: u64,
    /// Arrivals refused by the per-client token budget.
    pub rejected_budget: u64,
    /// Clients re-homed away from a persistently saturated super-peer.
    pub rehomed: u64,
    /// Table 2 bytes charged by re-home joins.
    pub rehome_bytes: f64,
    /// Brownout mode entries across all clusters.
    pub brownout_entries: u64,
    /// Total cluster-seconds spent browned out.
    pub brownout_secs: f64,
    /// Queries flooded with degraded TTL/fanout (admitted while the
    /// cluster was browned out).
    pub brownout_queries: u64,
    /// Deepest queue ever observed.
    pub peak_depth: u64,
    /// Response-latency histogram (admission → completion).
    pub latency: LatencyHistogram,
    /// Queue-depth/utilization timeline at sample ticks.
    pub timeline: Vec<OvPoint>,
}

impl OverloadMetrics {
    /// Queries the overload layer has fully accounted for.
    pub fn accounted(&self) -> u64 {
        self.delivered
            + self.shed_discipline
            + self.shed_dead
            + self.shed_residual
            + self.rejected_queue
            + self.rejected_budget
    }

    /// The extended conservation invariant: every query the fault layer
    /// counts as issued is exactly one of lost (fault ledger),
    /// rejected, shed, or delivered. Only meaningful after finalize
    /// (residual entries are shed there) and with an active policy.
    pub fn conserved(&self, queries_issued: u64, queries_lost: u64) -> bool {
        queries_issued == queries_lost + self.accounted()
    }

    /// Renders the counters as a JSON object (stable key order). The
    /// timeline is capped at the last `timeline_cap` points to keep
    /// manifests bounded; 0 omits it.
    pub fn to_json(&self, timeline_cap: usize) -> String {
        let mut s = String::with_capacity(512);
        s.push_str(&format!(
            "{{\"delivered\": {}, \"shed_discipline\": {}, \"shed_dead\": {}, \
             \"shed_residual\": {}, \"rejected_queue\": {}, \"rejected_budget\": {}, \
             \"rehomed\": {}, \"rehome_bytes\": {:.3}, \"brownout_entries\": {}, \
             \"brownout_secs\": {:.3}, \"brownout_queries\": {}, \"peak_depth\": {}, \
             \"latency\": {{\"count\": {}, \"mean_secs\": {:.6}, \"p50_secs\": {:.6}, \
             \"p99_secs\": {:.6}, \"max_secs\": {:.6}}}",
            self.delivered,
            self.shed_discipline,
            self.shed_dead,
            self.shed_residual,
            self.rejected_queue,
            self.rejected_budget,
            self.rehomed,
            self.rehome_bytes,
            self.brownout_entries,
            self.brownout_secs,
            self.brownout_queries,
            self.peak_depth,
            self.latency.count,
            self.latency.mean_secs(),
            self.latency.quantile_secs(0.50),
            self.latency.quantile_secs(0.99),
            self.latency.max_secs,
        ));
        if timeline_cap > 0 {
            s.push_str(", \"timeline\": [");
            let skip = self.timeline.len().saturating_sub(timeline_cap);
            for (i, p) in self.timeline.iter().skip(skip).enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!(
                    "{{\"t\": {:.1}, \"queued\": {}, \"max_depth\": {}, \
                     \"utilization\": {:.4}, \"browned_out\": {}}}",
                    p.t, p.queued, p.max_depth, p.utilization, p.browned_out
                ));
            }
            s.push(']');
        }
        s.push('}');
        s
    }

    /// Serializes every counter, histogram, and timeline point.
    pub fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.delivered);
        w.u64(self.shed_discipline);
        w.u64(self.shed_dead);
        w.u64(self.shed_residual);
        w.u64(self.rejected_queue);
        w.u64(self.rejected_budget);
        w.u64(self.rehomed);
        w.f64(self.rehome_bytes);
        w.u64(self.brownout_entries);
        w.f64(self.brownout_secs);
        w.u64(self.brownout_queries);
        w.u64(self.peak_depth);
        self.latency.snap(w);
        w.len(self.timeline.len());
        for p in &self.timeline {
            w.f64(p.t);
            w.u64(p.queued);
            w.u64(p.max_depth);
            w.f64(p.utilization);
            w.u64(p.browned_out);
        }
    }

    /// Restores what [`snap`](Self::snap) wrote.
    pub fn unsnap(r: &mut SnapReader<'_>) -> Result<OverloadMetrics, SnapshotError> {
        let mut m = OverloadMetrics {
            delivered: r.u64("overload.delivered")?,
            shed_discipline: r.u64("overload.shed_discipline")?,
            shed_dead: r.u64("overload.shed_dead")?,
            shed_residual: r.u64("overload.shed_residual")?,
            rejected_queue: r.u64("overload.rejected_queue")?,
            rejected_budget: r.u64("overload.rejected_budget")?,
            rehomed: r.u64("overload.rehomed")?,
            rehome_bytes: r.f64("overload.rehome_bytes")?,
            brownout_entries: r.u64("overload.brownout_entries")?,
            brownout_secs: r.f64("overload.brownout_secs")?,
            brownout_queries: r.u64("overload.brownout_queries")?,
            peak_depth: r.u64("overload.peak_depth")?,
            latency: LatencyHistogram::unsnap(r)?,
            timeline: Vec::new(),
        };
        let n = r.len("overload.timeline.len")?;
        m.timeline.reserve(n);
        for _ in 0..n {
            m.timeline.push(OvPoint {
                t: r.f64("overload.timeline.t")?,
                queued: r.u64("overload.timeline.queued")?,
                max_depth: r.u64("overload.timeline.max_depth")?,
                utilization: r.f64("overload.timeline.utilization")?,
                browned_out: r.u64("overload.timeline.browned_out")?,
            });
        }
        Ok(m)
    }
}

/// One queued response awaiting its super-peer's service.
#[derive(Debug, Clone, Copy, PartialEq)]
struct QEntry {
    /// Issuing peer slot (strike target if this entry is shed).
    owner: PeerId,
    /// Admission time.
    arrival: f64,
    /// Effective flood TTL at admission — the `DropLowestTtl` key.
    ttl: u16,
}

/// Sentinel for "no pressure/relief window open".
const NO_ANCHOR: f64 = -1.0;

/// Per-cluster overload state: the bounded queue plus the virtual
/// service clock and brownout hysteresis anchors.
#[derive(Debug, Clone, PartialEq, Default)]
struct ClusterOv {
    entries: VecDeque<QEntry>,
    /// Time the server frees up (max over completions scheduled).
    vclock: f64,
    /// Cumulative seconds the server has spent serving.
    busy_secs: f64,
    /// Browned out right now?
    brownout: bool,
    /// When it entered brownout (for `brownout_secs`).
    brownout_since: f64,
    /// Start of the current over-threshold observation window
    /// ([`NO_ANCHOR`] when none).
    pressure_since: f64,
    /// Start of the current under-threshold observation window.
    relief_since: f64,
}

impl ClusterOv {
    fn fresh() -> ClusterOv {
        ClusterOv {
            pressure_since: NO_ANCHOR,
            relief_since: NO_ANCHOR,
            ..ClusterOv::default()
        }
    }
}

/// What admission decided for one query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Admission {
    /// Refused — the query must not flood and counts as rejected.
    Rejected,
    /// Accepted: flood with `ttl`, and (when browned out) forward to at
    /// most `fanout_limit` neighbors per hop.
    Admitted {
        /// Effective flood TTL (brownout may have degraded it).
        ttl: u16,
        /// Brownout fanout cap, `None` when not browned out.
        fanout_limit: Option<u32>,
    },
}

/// The per-run overload runtime for the churn engines. All methods are
/// draw-free and deterministic in call order; both engines call them at
/// identical simulated times with identical arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadState {
    policy: OverloadPolicy,
    clusters: Vec<ClusterOv>,
    /// Per-peer-slot token-bucket levels.
    tokens: Vec<f64>,
    /// Per-peer-slot last token refill time.
    token_at: Vec<f64>,
    /// Per-peer-slot consecutive-rejection strikes.
    strikes: Vec<u32>,
    /// Busy-seconds total at the previous timeline point.
    sampled_busy: f64,
    /// Time of the previous timeline point.
    sampled_at: f64,
}

impl OverloadState {
    /// Builds the runtime for a policy (validated by the caller).
    pub fn new(policy: OverloadPolicy) -> OverloadState {
        OverloadState {
            policy,
            clusters: Vec::new(),
            tokens: Vec::new(),
            token_at: Vec::new(),
            strikes: Vec::new(),
            sampled_busy: 0.0,
            sampled_at: 0.0,
        }
    }

    /// True when the policy does anything at all.
    pub fn active(&self) -> bool {
        !self.policy.is_empty()
    }

    /// The configured policy.
    pub fn policy(&self) -> &OverloadPolicy {
        &self.policy
    }

    /// Seconds one response occupies the server.
    fn service_secs(&self) -> f64 {
        1.0 / self.policy.service_rate
    }

    fn cluster_mut(&mut self, c: ClusterId) -> &mut ClusterOv {
        let need = c as usize + 1;
        if self.clusters.len() < need {
            self.clusters.resize_with(need, ClusterOv::fresh);
        }
        &mut self.clusters[c as usize]
    }

    /// Current queue depth of a cluster (0 for never-touched slots).
    pub fn depth(&self, c: ClusterId) -> usize {
        self.clusters.get(c as usize).map_or(0, |s| s.entries.len())
    }

    /// Resets a peer slot's budget and strikes — called when the slot
    /// is handed to a new arrival.
    pub fn reset_peer(&mut self, peer: PeerId) {
        let need = peer as usize + 1;
        if self.tokens.len() < need {
            self.tokens.resize(need, -1.0);
            self.token_at.resize(need, 0.0);
            self.strikes.resize(need, 0);
        }
        self.tokens[peer as usize] = -1.0; // -1 = bucket starts full on first use
        self.token_at[peer as usize] = 0.0;
        self.strikes[peer as usize] = 0;
    }

    /// Completes every queued response due by `now` at one cluster.
    pub fn drain(&mut self, c: ClusterId, now: f64, m: &mut OverloadMetrics) {
        let s = self.service_secs();
        let cl = self.cluster_mut(c);
        while let Some(head) = cl.entries.front() {
            let start = head.arrival.max(cl.vclock);
            let done = start + s;
            if done > now {
                break;
            }
            let head = *head;
            cl.entries.pop_front();
            cl.vclock = done;
            cl.busy_secs += s;
            m.delivered += 1;
            m.latency.record(done - head.arrival);
        }
    }

    /// Drains every cluster to `now`.
    pub fn drain_all(&mut self, now: f64, m: &mut OverloadMetrics) {
        for c in 0..self.clusters.len() {
            self.drain(c as ClusterId, now, m);
        }
    }

    /// Queue backlog of a cluster in seconds of work at `now`.
    fn backlog_secs(&self, c: ClusterId, now: f64) -> f64 {
        let Some(cl) = self.clusters.get(c as usize) else {
            return 0.0;
        };
        let pending = cl.entries.len() as f64 * self.service_secs();
        let busy_tail = (cl.vclock - now).max(0.0);
        pending + busy_tail
    }

    /// Advances the brownout hysteresis of one cluster at an
    /// observation point and returns whether it is browned out.
    fn observe_brownout(&mut self, c: ClusterId, now: f64, m: &mut OverloadMetrics) -> bool {
        let Some(b) = self.policy.brownout else {
            return false;
        };
        let backlog = self.backlog_secs(c, now);
        let cl = self.cluster_mut(c);
        if cl.brownout {
            if backlog < b.exit_backlog_secs {
                if cl.relief_since == NO_ANCHOR {
                    cl.relief_since = now;
                }
                if now - cl.relief_since >= b.min_dwell_secs {
                    cl.brownout = false;
                    cl.relief_since = NO_ANCHOR;
                    m.brownout_secs += now - cl.brownout_since;
                }
            } else {
                cl.relief_since = NO_ANCHOR;
            }
        } else {
            if backlog > b.enter_backlog_secs {
                if cl.pressure_since == NO_ANCHOR {
                    cl.pressure_since = now;
                }
                if now - cl.pressure_since >= b.min_dwell_secs {
                    cl.brownout = true;
                    cl.pressure_since = NO_ANCHOR;
                    cl.brownout_since = now;
                    m.brownout_entries += 1;
                }
            } else {
                cl.pressure_since = NO_ANCHOR;
            }
        }
        cl.brownout
    }

    /// Admits or refuses one query at cluster `c`, updating the queue,
    /// budget, strike, and brownout state. `peer` is the issuing peer's
    /// slot; `is_partner` skips the client-only token budget. `ttl` is
    /// the cluster's configured flood TTL before degradation.
    pub fn admit(
        &mut self,
        c: ClusterId,
        peer: PeerId,
        is_partner: bool,
        now: f64,
        ttl: u16,
        m: &mut OverloadMetrics,
    ) -> Admission {
        self.drain(c, now, m);

        // Client token budget: refill since last use, spend one.
        if !is_partner && self.policy.client_tokens_per_sec > 0.0 {
            let burst = self.policy.client_token_burst;
            let rate = self.policy.client_tokens_per_sec;
            if self.tokens.len() <= peer as usize {
                self.reset_peer(peer);
            }
            let p = peer as usize;
            let mut level = if self.tokens[p] < 0.0 {
                burst
            } else {
                (self.tokens[p] + (now - self.token_at[p]) * rate).min(burst)
            };
            if level < 1.0 {
                self.tokens[p] = level;
                self.token_at[p] = now;
                m.rejected_budget += 1;
                return Admission::Rejected;
            }
            level -= 1.0;
            self.tokens[p] = level;
            self.token_at[p] = now;
        }

        let browned = self.observe_brownout(c, now, m);
        let (eff_ttl, fanout_limit) = if browned {
            let b = self.policy.brownout.expect("browned requires config");
            m.brownout_queries += 1;
            (
                ttl.saturating_sub(b.ttl_decrement).max(1),
                Some(b.fanout_limit),
            )
        } else {
            (ttl, None)
        };

        // Capacity gate.
        let cap = self.policy.queue_capacity as usize;
        let strike_limit = self.policy.rehome_strikes;
        let discipline = self.policy.discipline;
        let cl = self.cluster_mut(c);
        if cap != 0 && cl.entries.len() >= cap {
            match discipline {
                ShedDiscipline::RejectAtAdmission => {
                    m.rejected_queue += 1;
                    let _ = cl;
                    self.strike(peer, strike_limit);
                    return Admission::Rejected;
                }
                ShedDiscipline::DropOldest => {
                    // The queue head may be mid-service (vclock already
                    // advanced past its start): shedding it anyway is
                    // fine — vclock only ever moves at completions, and
                    // a shed head simply frees the server earlier is
                    // *not* modeled; the conservative ledger charge is
                    // the dropped response.
                    if let Some(victim) = cl.entries.pop_front() {
                        m.shed_discipline += 1;
                        let owner = victim.owner;
                        let _ = cl;
                        self.strike(owner, strike_limit);
                    }
                }
                ShedDiscipline::DropLowestTtl => {
                    // The arrival competes with the queued entries; the
                    // lowest TTL loses, ties to the oldest (scan keeps
                    // the first minimum, and the arrival is newest).
                    let mut victim_idx = None;
                    let mut victim_ttl = eff_ttl;
                    for (i, e) in cl.entries.iter().enumerate() {
                        if e.ttl < victim_ttl || (victim_idx.is_none() && e.ttl == victim_ttl) {
                            victim_idx = Some(i);
                            victim_ttl = e.ttl;
                        }
                    }
                    match victim_idx {
                        None => {
                            // The arrival itself has the strictly
                            // lowest priority: refused at the door.
                            m.rejected_queue += 1;
                            let _ = cl;
                            self.strike(peer, strike_limit);
                            return Admission::Rejected;
                        }
                        Some(i) => {
                            let victim = cl.entries.remove(i).expect("index in range");
                            m.shed_discipline += 1;
                            let owner = victim.owner;
                            let _ = cl;
                            self.strike(owner, strike_limit);
                        }
                    }
                }
            }
        }

        // Enqueue the admitted response.
        let cl = self.cluster_mut(c);
        cl.entries.push_back(QEntry {
            owner: peer,
            arrival: now,
            ttl: eff_ttl,
        });
        let depth = cl.entries.len() as u64;
        if depth > m.peak_depth {
            m.peak_depth = depth;
        }
        // An admitted client clears its own strike streak.
        if !is_partner && strike_limit != 0 {
            if self.strikes.len() <= peer as usize {
                self.reset_peer(peer);
            }
            self.strikes[peer as usize] = 0;
        }
        Admission::Admitted {
            ttl: eff_ttl,
            fanout_limit,
        }
    }

    fn strike(&mut self, peer: PeerId, strike_limit: u32) {
        if strike_limit == 0 {
            return;
        }
        if self.strikes.len() <= peer as usize {
            self.reset_peer(peer);
        }
        self.strikes[peer as usize] = self.strikes[peer as usize].saturating_add(1);
    }

    /// True when `peer` has struck out and should re-home before its
    /// next submission.
    pub fn should_rehome(&self, peer: PeerId) -> bool {
        self.policy.rehome_strikes != 0
            && self
                .strikes
                .get(peer as usize)
                .is_some_and(|&s| s >= self.policy.rehome_strikes)
    }

    /// Clears a re-homed client's strike streak.
    pub fn rehomed(&mut self, peer: PeerId) {
        if let Some(s) = self.strikes.get_mut(peer as usize) {
            *s = 0;
        }
    }

    /// A cluster died: completions due by `now` still count, the rest
    /// is shed, and the per-cluster state resets for the next tenant of
    /// the slot.
    pub fn cluster_down(&mut self, c: ClusterId, now: f64, m: &mut OverloadMetrics) {
        if self.clusters.len() <= c as usize {
            return;
        }
        self.drain(c, now, m);
        let cl = &mut self.clusters[c as usize];
        m.shed_dead += cl.entries.len() as u64;
        if cl.brownout {
            m.brownout_secs += now - cl.brownout_since;
        }
        let busy = cl.busy_secs;
        *cl = ClusterOv::fresh();
        // Busy time already accumulated still belongs to the
        // utilization timeline.
        cl.busy_secs = busy;
    }

    /// Records one timeline point at a sample tick. `live_clusters` is
    /// the denominator for utilization (clusters able to serve).
    pub fn sample(&mut self, now: f64, live_clusters: u64, m: &mut OverloadMetrics) {
        self.drain_all(now, m);
        let mut queued = 0u64;
        let mut max_depth = 0u64;
        let mut browned = 0u64;
        let mut busy_total = 0.0;
        for cl in &self.clusters {
            let d = cl.entries.len() as u64;
            queued += d;
            max_depth = max_depth.max(d);
            browned += cl.brownout as u64;
            busy_total += cl.busy_secs;
        }
        let dt = now - self.sampled_at;
        let utilization = if dt > 0.0 && live_clusters > 0 {
            ((busy_total - self.sampled_busy) / (dt * live_clusters as f64)).clamp(0.0, 1.0)
        } else {
            0.0
        };
        self.sampled_busy = busy_total;
        self.sampled_at = now;
        m.timeline.push(OvPoint {
            t: now,
            queued,
            max_depth,
            utilization,
            browned_out: browned,
        });
    }

    /// End of run: completions due by `end_time` count as delivered,
    /// everything still queued is shed as residual, and open brownout
    /// windows close.
    pub fn finalize(&mut self, end_time: f64, m: &mut OverloadMetrics) {
        self.drain_all(end_time, m);
        for cl in &mut self.clusters {
            m.shed_residual += cl.entries.len() as u64;
            cl.entries.clear();
            if cl.brownout {
                m.brownout_secs += end_time - cl.brownout_since;
                cl.brownout = false;
            }
        }
    }

    /// Serializes the runtime state (the policy itself rides in the
    /// engine's options section).
    pub fn snap_state(&self, w: &mut SnapWriter) {
        w.len(self.clusters.len());
        for cl in &self.clusters {
            w.len(cl.entries.len());
            for e in &cl.entries {
                w.u32(e.owner);
                w.f64(e.arrival);
                w.u16(e.ttl);
            }
            w.f64(cl.vclock);
            w.f64(cl.busy_secs);
            w.bool(cl.brownout);
            w.f64(cl.brownout_since);
            w.f64(cl.pressure_since);
            w.f64(cl.relief_since);
        }
        w.len(self.tokens.len());
        for i in 0..self.tokens.len() {
            w.f64(self.tokens[i]);
            w.f64(self.token_at[i]);
            w.u32(self.strikes[i]);
        }
        w.f64(self.sampled_busy);
        w.f64(self.sampled_at);
    }

    /// Restores what [`snap_state`](Self::snap_state) wrote.
    pub fn unsnap_state(
        policy: OverloadPolicy,
        r: &mut SnapReader<'_>,
    ) -> Result<OverloadState, SnapshotError> {
        let mut st = OverloadState::new(policy);
        let n_clusters = r.len("overload.clusters.len")?;
        st.clusters.reserve(n_clusters);
        for _ in 0..n_clusters {
            let n_entries = r.len("overload.entries.len")?;
            let mut cl = ClusterOv::fresh();
            cl.entries.reserve(n_entries);
            for _ in 0..n_entries {
                cl.entries.push_back(QEntry {
                    owner: r.u32("overload.entry.owner")?,
                    arrival: r.f64("overload.entry.arrival")?,
                    ttl: r.u16("overload.entry.ttl")?,
                });
            }
            cl.vclock = r.f64("overload.vclock")?;
            cl.busy_secs = r.f64("overload.busy_secs")?;
            cl.brownout = r.bool("overload.brownout")?;
            cl.brownout_since = r.f64("overload.brownout_since")?;
            cl.pressure_since = r.f64("overload.pressure_since")?;
            cl.relief_since = r.f64("overload.relief_since")?;
            st.clusters.push(cl);
        }
        let n_peers = r.len("overload.peers.len")?;
        st.tokens.reserve(n_peers);
        for _ in 0..n_peers {
            st.tokens.push(r.f64("overload.tokens")?);
            st.token_at.push(r.f64("overload.token_at")?);
            st.strikes.push(r.u32("overload.strikes")?);
        }
        st.sampled_busy = r.f64("overload.sampled_busy")?;
        st.sampled_at = r.f64("overload.sampled_at")?;
        Ok(st)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(cap: u32, rate: f64, discipline: ShedDiscipline) -> OverloadPolicy {
        OverloadPolicy {
            service_rate: rate,
            queue_capacity: cap,
            discipline,
            ..OverloadPolicy::default()
        }
    }

    #[test]
    fn fifo_service_latency_is_queueing_plus_service() {
        let mut st = OverloadState::new(policy(0, 1.0, ShedDiscipline::RejectAtAdmission));
        let mut m = OverloadMetrics::default();
        for i in 0..3 {
            assert!(matches!(
                st.admit(0, i, false, 0.0, 7, &mut m),
                Admission::Admitted { ttl: 7, .. }
            ));
        }
        st.drain(0, 10.0, &mut m);
        assert_eq!(m.delivered, 3);
        // Completions at 1, 2, 3 seconds → latencies 1, 2, 3.
        assert_eq!(m.latency.count, 3);
        assert!((m.latency.sum_secs - 6.0).abs() < 1e-9);
        assert!((m.latency.max_secs - 3.0).abs() < 1e-9);
    }

    #[test]
    fn bounded_queue_never_exceeds_capacity() {
        for discipline in [
            ShedDiscipline::RejectAtAdmission,
            ShedDiscipline::DropOldest,
            ShedDiscipline::DropLowestTtl,
        ] {
            let mut st = OverloadState::new(policy(2, 0.001, discipline));
            let mut m = OverloadMetrics::default();
            for i in 0..10u32 {
                st.admit(0, i, false, i as f64 * 0.01, 7, &mut m);
                assert!(st.depth(0) <= 2, "{discipline:?} overflowed");
            }
            assert_eq!(m.peak_depth, 2);
            st.finalize(1.0, &mut m);
            // 10 arrivals, nothing serviced in 1s at rate 0.001.
            assert_eq!(m.accounted(), 10, "{discipline:?} leaked");
            assert_eq!(m.delivered, 0);
        }
    }

    #[test]
    fn drop_oldest_sheds_head() {
        let mut st = OverloadState::new(policy(1, 0.001, ShedDiscipline::DropOldest));
        let mut m = OverloadMetrics::default();
        st.admit(0, 1, false, 0.0, 7, &mut m);
        st.admit(0, 2, false, 0.1, 7, &mut m);
        assert_eq!(m.shed_discipline, 1);
        assert_eq!(st.depth(0), 1);
    }

    #[test]
    fn drop_lowest_ttl_prefers_low_ttl_victim_and_rejects_low_arrival() {
        let mut st = OverloadState::new(policy(2, 0.001, ShedDiscipline::DropLowestTtl));
        let mut m = OverloadMetrics::default();
        st.admit(0, 1, false, 0.0, 3, &mut m);
        st.admit(0, 2, false, 0.1, 7, &mut m);
        // Arrival with TTL 5: the queued TTL-3 entry is the victim.
        st.admit(0, 3, false, 0.2, 5, &mut m);
        assert_eq!(m.shed_discipline, 1);
        assert_eq!(m.rejected_queue, 0);
        // Arrival with TTL 1 loses to both queued entries (5, 7).
        assert!(matches!(
            st.admit(0, 4, false, 0.3, 1, &mut m),
            Admission::Rejected
        ));
        assert_eq!(m.rejected_queue, 1);
    }

    #[test]
    fn token_budget_rejects_burst_and_refills() {
        let p = OverloadPolicy {
            service_rate: 100.0,
            client_tokens_per_sec: 1.0,
            client_token_burst: 2.0,
            ..OverloadPolicy::default()
        };
        let mut st = OverloadState::new(p);
        let mut m = OverloadMetrics::default();
        st.reset_peer(9);
        // Burst of 3 at t = 0: two admitted, one over budget.
        for _ in 0..3 {
            st.admit(0, 9, false, 0.0, 7, &mut m);
        }
        assert_eq!(m.rejected_budget, 1);
        // 1 second refills one token.
        assert!(matches!(
            st.admit(0, 9, false, 1.0, 7, &mut m),
            Admission::Admitted { .. }
        ));
        // Partners are exempt.
        st.admit(0, 9, true, 1.0, 7, &mut m);
        assert_eq!(m.rejected_budget, 1);
    }

    #[test]
    fn brownout_enters_with_hysteresis_and_degrades() {
        let p = OverloadPolicy {
            service_rate: 1.0,
            brownout: Some(sp_model::overload::BrownoutConfig {
                enter_backlog_secs: 2.0,
                exit_backlog_secs: 0.5,
                min_dwell_secs: 1.0,
                ttl_decrement: 3,
                fanout_limit: 2,
            }),
            ..OverloadPolicy::default()
        };
        let mut st = OverloadState::new(p);
        let mut m = OverloadMetrics::default();
        // Pile up 5 seconds of backlog instantly.
        for i in 0..5 {
            st.admit(0, i, false, 0.0, 7, &mut m);
        }
        assert_eq!(m.brownout_entries, 0, "dwell not yet served");
        // Next admission 1.5s later: pressure window is old enough.
        let a = st.admit(0, 9, false, 1.5, 7, &mut m);
        assert_eq!(m.brownout_entries, 1);
        assert_eq!(
            a,
            Admission::Admitted {
                ttl: 4,
                fanout_limit: Some(2)
            }
        );
        // Long quiet period: drain empties the queue; first admission
        // opens the relief window, a later one exits brownout.
        st.admit(0, 9, false, 100.0, 7, &mut m);
        st.admit(0, 9, false, 102.0, 7, &mut m);
        assert_eq!(m.brownout_entries, 1);
        assert!(m.brownout_secs > 0.0);
        let d = st.admit(0, 9, false, 104.0, 7, &mut m);
        assert!(
            matches!(
                d,
                Admission::Admitted {
                    ttl: 7,
                    fanout_limit: None
                }
            ),
            "brownout did not exit: {d:?}"
        );
    }

    #[test]
    fn strikes_accumulate_and_clear_on_rehome() {
        let p = OverloadPolicy {
            service_rate: 0.001,
            queue_capacity: 1,
            rehome_strikes: 2,
            ..OverloadPolicy::default()
        };
        let mut st = OverloadState::new(p);
        let mut m = OverloadMetrics::default();
        st.admit(0, 5, false, 0.0, 7, &mut m);
        assert!(!st.should_rehome(5));
        st.admit(0, 5, false, 0.1, 7, &mut m);
        st.admit(0, 5, false, 0.2, 7, &mut m);
        assert!(st.should_rehome(5));
        st.rehomed(5);
        assert!(!st.should_rehome(5));
    }

    #[test]
    fn cluster_death_sheds_and_resets() {
        let mut st = OverloadState::new(policy(0, 1.0, ShedDiscipline::RejectAtAdmission));
        let mut m = OverloadMetrics::default();
        for i in 0..4 {
            st.admit(0, i, false, 0.0, 7, &mut m);
        }
        // 1.5s later one response has completed; death sheds the rest.
        st.cluster_down(0, 1.5, &mut m);
        assert_eq!(m.delivered, 1);
        assert_eq!(m.shed_dead, 3);
        assert_eq!(st.depth(0), 0);
    }

    #[test]
    fn snapshot_round_trip_is_identical() {
        let p = OverloadPolicy {
            service_rate: 1.0,
            queue_capacity: 3,
            client_tokens_per_sec: 0.5,
            client_token_burst: 4.0,
            rehome_strikes: 3,
            brownout: Some(Default::default()),
            ..OverloadPolicy::default()
        };
        let mut st = OverloadState::new(p);
        let mut m = OverloadMetrics::default();
        for i in 0..6 {
            st.admit(i % 2, i, i % 3 == 0, i as f64 * 0.3, 7, &mut m);
        }
        st.sample(2.0, 2, &mut m);
        let mut w = SnapWriter::new();
        st.snap_state(&mut w);
        m.snap(&mut w);
        let sealed = w.seal(sp_model::snapshot::ENGINE_FAST);
        let mut r = SnapReader::open(&sealed).expect("open");
        let st2 = OverloadState::unsnap_state(p, &mut r).expect("state");
        let m2 = OverloadMetrics::unsnap(&mut r).expect("metrics");
        r.finish().expect("fully consumed");
        assert_eq!(st, st2);
        assert_eq!(m, m2);
    }

    #[test]
    fn conservation_holds_under_mixed_outcomes() {
        let p = OverloadPolicy {
            service_rate: 0.5,
            queue_capacity: 2,
            discipline: ShedDiscipline::DropOldest,
            client_tokens_per_sec: 0.2,
            client_token_burst: 2.0,
            ..OverloadPolicy::default()
        };
        let mut st = OverloadState::new(p);
        let mut m = OverloadMetrics::default();
        let mut attempts = 0u64;
        for i in 0..50u32 {
            let t = i as f64 * 0.2;
            st.admit((i % 3) as ClusterId, i % 7, false, t, 7, &mut m);
            attempts += 1;
        }
        st.cluster_down(1, 10.0, &mut m);
        st.finalize(10.0, &mut m);
        assert_eq!(m.accounted(), attempts);
        assert!(m.conserved(attempts, 0));
    }
}
