//! Per-peer traffic counters.
//!
//! The simulator charges every message to its endpoints exactly as the
//! analytic cost model does (bytes + processing units + packet
//! multiplex); counters keep both a cumulative total (for whole-run
//! mean rates) and a resettable window (for the adaptive scenario's
//! "recent load" view).

use sp_model::costs::{BITS_PER_BYTE, UNIT_CYCLES};
use sp_model::load::Load;
use sp_model::snapshot::{SnapReader, SnapWriter, SnapshotError};

/// Cumulative and windowed traffic counters for one peer.
///
/// Aligned to a cache line: counters live in a dense per-network array
/// (see [`SimNetwork::counters`](crate::network::SimNetwork::counters))
/// indexed by peer id, and the charging loops are the hottest code in
/// the simulator — one line per peer keeps a flood's whole charge set
/// resident in L1.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[repr(align(64))]
pub struct LoadCounters {
    /// Total bytes received since the peer joined.
    pub in_bytes: f64,
    /// Total bytes sent.
    pub out_bytes: f64,
    /// Total processing units spent.
    pub units: f64,
    window_in: f64,
    window_out: f64,
    window_units: f64,
}

impl LoadCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges received traffic.
    pub fn recv(&mut self, bytes: f64, units: f64) {
        self.in_bytes += bytes;
        self.window_in += bytes;
        self.units += units;
        self.window_units += units;
    }

    /// Charges sent traffic.
    pub fn send(&mut self, bytes: f64, units: f64) {
        self.out_bytes += bytes;
        self.window_out += bytes;
        self.units += units;
        self.window_units += units;
    }

    /// Charges pure processing (no bandwidth).
    pub fn work(&mut self, units: f64) {
        self.units += units;
        self.window_units += units;
    }

    // The `_unwindowed` variants skip the window accumulators. The
    // window is only ever observed by [`LoadCounters::take_window`] on
    // the adaptive scenario's tick path, so an engine that knows
    // adaptation is disabled can use these on its hot charging loops:
    // every observable output (cumulative totals, mean rates) is
    // bit-identical, with half the float traffic per message.

    /// [`LoadCounters::recv`] without window accumulation.
    pub fn recv_unwindowed(&mut self, bytes: f64, units: f64) {
        self.in_bytes += bytes;
        self.units += units;
    }

    /// [`LoadCounters::send`] without window accumulation.
    pub fn send_unwindowed(&mut self, bytes: f64, units: f64) {
        self.out_bytes += bytes;
        self.units += units;
    }

    /// [`LoadCounters::work`] without window accumulation.
    pub fn work_unwindowed(&mut self, units: f64) {
        self.units += units;
    }

    /// Mean load rate over a duration (bps / bps / Hz).
    ///
    /// Returns zero for non-positive durations.
    pub fn mean_rate(&self, duration_secs: f64) -> Load {
        if duration_secs <= 0.0 {
            return Load::ZERO;
        }
        Load {
            in_bw: self.in_bytes * BITS_PER_BYTE / duration_secs,
            out_bw: self.out_bytes * BITS_PER_BYTE / duration_secs,
            proc: self.units * UNIT_CYCLES / duration_secs,
        }
    }

    /// Writes all six accumulators into a snapshot payload.
    pub(crate) fn snap(&self, w: &mut SnapWriter) {
        w.f64(self.in_bytes);
        w.f64(self.out_bytes);
        w.f64(self.units);
        w.f64(self.window_in);
        w.f64(self.window_out);
        w.f64(self.window_units);
    }

    /// Reads counters written by [`LoadCounters::snap`].
    pub(crate) fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(LoadCounters {
            in_bytes: r.f64("counters in_bytes")?,
            out_bytes: r.f64("counters out_bytes")?,
            units: r.f64("counters units")?,
            window_in: r.f64("counters window_in")?,
            window_out: r.f64("counters window_out")?,
            window_units: r.f64("counters window_units")?,
        })
    }

    /// Drains the window counters, returning the load rate over the
    /// window length.
    pub fn take_window(&mut self, window_secs: f64) -> Load {
        let load = if window_secs <= 0.0 {
            Load::ZERO
        } else {
            Load {
                in_bw: self.window_in * BITS_PER_BYTE / window_secs,
                out_bw: self.window_out * BITS_PER_BYTE / window_secs,
                proc: self.window_units * UNIT_CYCLES / window_secs,
            }
        };
        self.window_in = 0.0;
        self.window_out = 0.0;
        self.window_units = 0.0;
        load
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut c = LoadCounters::new();
        c.recv(100.0, 1.0);
        c.send(50.0, 0.5);
        c.work(2.0);
        assert_eq!(c.in_bytes, 100.0);
        assert_eq!(c.out_bytes, 50.0);
        assert_eq!(c.units, 3.5);
    }

    #[test]
    fn mean_rate_converts_units() {
        let mut c = LoadCounters::new();
        c.recv(1000.0, 0.0);
        c.work(10.0);
        let rate = c.mean_rate(10.0);
        assert_eq!(rate.in_bw, 800.0); // 1000 B / 10 s × 8
        assert_eq!(rate.proc, 7200.0); // 10 units / 10 s × 7200
        assert_eq!(c.mean_rate(0.0), Load::ZERO);
    }

    #[test]
    fn window_drains_independently() {
        let mut c = LoadCounters::new();
        c.send(80.0, 0.0);
        let w = c.take_window(8.0);
        assert_eq!(w.out_bw, 80.0); // 80 B / 8 s × 8 bits
                                    // Window cleared; cumulative untouched.
        assert_eq!(c.take_window(8.0), Load::ZERO);
        assert_eq!(c.out_bytes, 80.0);
    }
}
