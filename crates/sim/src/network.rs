//! Mutable network state: peers, clusters, and the dynamic overlay.
//!
//! Peers and clusters live in generation-guarded slots so ids can be
//! recycled under churn without dangling events. The overlay is a
//! dynamic adjacency over clusters (the `sp-graph` CSR type is
//! immutable, built for the analytic engine; here edges come and go
//! every few simulated seconds).

use crate::counters::LoadCounters;
use crate::events::{ClusterId, PeerId, SimTime};
use sp_model::snapshot::{SnapReader, SnapWriter, SnapshotError};
use sp_stats::SpRng;

/// A live peer.
#[derive(Debug, Clone)]
pub struct SimPeer {
    /// Slot generation (bumped on reuse).
    pub generation: u32,
    /// Shared files.
    pub files: u32,
    /// Cluster membership (`None` while orphaned).
    pub cluster: Option<ClusterId>,
    /// Whether the peer is currently a super-peer partner.
    pub is_partner: bool,
    /// When the peer joined the network.
    pub joined_at: SimTime,
    /// When the peer last attached to a cluster (for connected-time
    /// accounting; equals `joined_at` until the first orphaning).
    pub attached_at: SimTime,
}

/// A live cluster (virtual super-peer + clients).
#[derive(Debug, Clone)]
pub struct SimCluster {
    /// Slot generation (bumped on reuse).
    pub generation: u32,
    /// Partner peers (≥ 1 while alive).
    pub partners: Vec<PeerId>,
    /// Client peers.
    pub clients: Vec<PeerId>,
    /// Neighboring clusters in the overlay.
    pub neighbors: Vec<ClusterId>,
    /// TTL this cluster stamps on the queries it originates.
    pub ttl: u16,
    /// Total files indexed (partners + clients), maintained
    /// incrementally.
    pub total_files: u64,
    /// Round-robin pointer for partner selection.
    pub rr: usize,
    /// Deepest hop a response was observed from (local rule III input).
    pub max_response_hop: u16,
    /// Clients gained since the last adaptation tick.
    pub growth: i64,
    /// When the adaptation window was last drained (cluster creation
    /// time until the first tick). Ticks are staggered, so the window
    /// length varies and must be measured, not assumed.
    pub last_adapt_at: SimTime,
    /// Cached `Σ |partners(nb)|` over this cluster's neighbors,
    /// maintained incrementally by [`SimNetwork`] on every edge and
    /// partner-set change. Connection counting is on the per-message
    /// charging path, so recomputing the sum per message would make
    /// query cost quadratic in overlay degree.
    pub neighbor_partner_links: usize,
}

impl SimCluster {
    /// Number of member peers (partners + clients).
    pub fn size(&self) -> usize {
        self.partners.len() + self.clients.len()
    }

    /// Open connections per partner: clients + one link to every
    /// partner of every neighbor + co-partners. Uses the *current*
    /// partner counts, so it adapts as redundancy changes.
    pub fn partner_connections(&self, neighbor_partner_links: usize) -> f64 {
        self.clients.len() as f64
            + neighbor_partner_links as f64
            + (self.partners.len() as f64 - 1.0)
    }

    /// [`partner_connections`](Self::partner_connections) using the
    /// incrementally maintained neighbor-link cache — O(1) instead of
    /// O(degree). Produces exactly the same value: the cache is an
    /// integer sum, so no floating-point drift is possible.
    pub fn partner_connections_cached(&self) -> f64 {
        self.partner_connections(self.neighbor_partner_links)
    }
}

/// The whole mutable network.
#[derive(Debug, Default)]
pub struct SimNetwork {
    /// Peer slots.
    pub peers: Vec<Option<SimPeer>>,
    /// Traffic counters, parallel to `peers` and indexed by peer id.
    ///
    /// Kept out of [`SimPeer`] deliberately: charging is the hottest
    /// path in the simulator, and a dense cache-line-aligned array
    /// keeps a whole flood's charge set L1-resident instead of
    /// scattering counters through the much larger peer slots. A freed
    /// slot's counters stay readable (departure accounting) until
    /// [`SimNetwork::add_peer`] recycles the slot and zeroes them.
    pub counters: Vec<LoadCounters>,
    free_peers: Vec<PeerId>,
    peer_generations: Vec<u32>,
    /// Cluster slots.
    pub clusters: Vec<Option<SimCluster>>,
    free_clusters: Vec<ClusterId>,
    cluster_generations: Vec<u32>,
    /// Alive cluster ids, for O(1) random discovery ("pong server").
    alive: Vec<ClusterId>,
    alive_pos: Vec<usize>,
}

const NOT_ALIVE: usize = usize::MAX;

impl SimNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    // ---- peers ----

    /// Allocates a peer slot.
    pub fn add_peer(&mut self, files: u32, joined_at: SimTime) -> PeerId {
        let id = match self.free_peers.pop() {
            Some(id) => id,
            None => {
                let id = self.peers.len() as PeerId;
                self.peers.push(None);
                self.counters.push(LoadCounters::new());
                self.peer_generations.push(0);
                id
            }
        };
        let generation = self.peer_generations[id as usize];
        self.counters[id as usize] = LoadCounters::new();
        self.peers[id as usize] = Some(SimPeer {
            generation,
            files,
            cluster: None,
            is_partner: false,
            joined_at,
            attached_at: joined_at,
        });
        id
    }

    /// Frees a peer slot, returning its final state.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already free.
    pub fn remove_peer(&mut self, id: PeerId) -> SimPeer {
        let peer = self.peers[id as usize]
            .take()
            .expect("peer already removed");
        self.peer_generations[id as usize] = self.peer_generations[id as usize].wrapping_add(1);
        self.free_peers.push(id);
        peer
    }

    /// The peer in a slot, if alive and matching the generation.
    pub fn peer(&self, id: PeerId, generation: u32) -> Option<&SimPeer> {
        self.peers
            .get(id as usize)?
            .as_ref()
            .filter(|p| p.generation == generation)
    }

    /// Mutable access regardless of generation (caller checked).
    pub fn peer_mut(&mut self, id: PeerId) -> Option<&mut SimPeer> {
        self.peers.get_mut(id as usize)?.as_mut()
    }

    /// Current generation of a peer slot.
    pub fn peer_generation(&self, id: PeerId) -> u32 {
        self.peer_generations[id as usize]
    }

    // ---- clusters ----

    /// Creates a cluster led by `partner` (which must be an unattached
    /// peer).
    pub fn add_cluster(&mut self, partner: PeerId, ttl: u16) -> ClusterId {
        let id = match self.free_clusters.pop() {
            Some(id) => id,
            None => {
                let id = self.clusters.len() as ClusterId;
                self.clusters.push(None);
                self.cluster_generations.push(0);
                self.alive_pos.push(NOT_ALIVE);
                id
            }
        };
        let generation = self.cluster_generations[id as usize];
        let files = self.peers[partner as usize]
            .as_ref()
            .expect("partner alive")
            .files as u64;
        self.clusters[id as usize] = Some(SimCluster {
            generation,
            partners: vec![partner],
            clients: Vec::new(),
            neighbors: Vec::new(),
            ttl,
            total_files: files,
            rr: 0,
            max_response_hop: 0,
            growth: 0,
            last_adapt_at: 0.0,
            neighbor_partner_links: 0,
        });
        {
            let p = self.peers[partner as usize]
                .as_mut()
                .expect("partner alive");
            p.cluster = Some(id);
            p.is_partner = true;
        }
        self.alive_pos[id as usize] = self.alive.len();
        self.alive.push(id);
        id
    }

    /// Removes a cluster (must already have no members) and detaches
    /// its overlay edges.
    pub fn remove_cluster(&mut self, id: ClusterId) {
        let cluster = self.clusters[id as usize]
            .take()
            .expect("cluster already removed");
        assert!(
            cluster.partners.is_empty() && cluster.clients.is_empty(),
            "cluster removed while members remain"
        );
        for nb in cluster.neighbors {
            if let Some(n) = self.clusters[nb as usize].as_mut() {
                n.neighbors.retain(|&c| c != id);
            }
        }
        self.cluster_generations[id as usize] =
            self.cluster_generations[id as usize].wrapping_add(1);
        self.free_clusters.push(id);
        // Swap-remove from the alive list.
        let pos = self.alive_pos[id as usize];
        debug_assert_ne!(pos, NOT_ALIVE);
        let last = *self.alive.last().expect("alive nonempty");
        self.alive.swap_remove(pos);
        if last != id {
            self.alive_pos[last as usize] = pos;
        }
        self.alive_pos[id as usize] = NOT_ALIVE;
    }

    /// The cluster in a slot, if alive and matching the generation.
    pub fn cluster(&self, id: ClusterId, generation: u32) -> Option<&SimCluster> {
        self.clusters
            .get(id as usize)?
            .as_ref()
            .filter(|c| c.generation == generation)
    }

    /// Mutable access regardless of generation.
    pub fn cluster_mut(&mut self, id: ClusterId) -> Option<&mut SimCluster> {
        self.clusters.get_mut(id as usize)?.as_mut()
    }

    /// Number of live clusters.
    pub fn num_alive_clusters(&self) -> usize {
        self.alive.len()
    }

    /// A uniformly random live cluster (the "pong server" discovery of
    /// Section 4.1), or `None` if the network is empty.
    pub fn random_cluster(&self, rng: &mut SpRng) -> Option<ClusterId> {
        if self.alive.is_empty() {
            None
        } else {
            Some(self.alive[rng.index(self.alive.len())])
        }
    }

    /// Iterator over live cluster ids.
    pub fn alive_clusters(&self) -> impl Iterator<Item = ClusterId> + '_ {
        self.alive.iter().copied()
    }

    // ---- membership & overlay ----

    /// Attaches an unattached peer as a client.
    pub fn attach_client(&mut self, peer: PeerId, cluster: ClusterId) {
        let files = {
            let p = self.peers[peer as usize].as_mut().expect("peer alive");
            debug_assert!(p.cluster.is_none(), "peer already attached");
            p.cluster = Some(cluster);
            p.is_partner = false;
            p.files as u64
        };
        let c = self.clusters[cluster as usize]
            .as_mut()
            .expect("cluster alive");
        c.clients.push(peer);
        c.total_files += files;
        c.growth += 1;
    }

    /// Detaches a client (on leave or orphan migration).
    pub fn detach_client(&mut self, peer: PeerId) {
        let (cluster, files) = {
            let p = self.peers[peer as usize].as_mut().expect("peer alive");
            let cluster = p.cluster.take().expect("client attached");
            (cluster, p.files as u64)
        };
        if let Some(c) = self.clusters[cluster as usize].as_mut() {
            c.clients.retain(|&x| x != peer);
            c.total_files -= files;
            c.growth -= 1;
        }
    }

    /// Detaches a partner from its cluster; returns the cluster id.
    pub fn detach_partner(&mut self, peer: PeerId) -> ClusterId {
        let (cluster, files) = {
            let p = self.peers[peer as usize].as_mut().expect("peer alive");
            let cluster = p.cluster.take().expect("partner attached");
            p.is_partner = false;
            (cluster, p.files as u64)
        };
        let c = self.clusters[cluster as usize]
            .as_mut()
            .expect("cluster alive");
        c.partners.retain(|&x| x != peer);
        c.total_files -= files;
        self.partner_count_changed(cluster, -1);
        cluster
    }

    /// Propagates a ±1 partner-count change of `cluster` into every
    /// neighbor's `neighbor_partner_links` cache.
    fn partner_count_changed(&mut self, cluster: ClusterId, delta: isize) {
        let num_neighbors = self.clusters[cluster as usize]
            .as_ref()
            .expect("cluster alive")
            .neighbors
            .len();
        for i in 0..num_neighbors {
            let nb = self.clusters[cluster as usize]
                .as_ref()
                .expect("cluster alive")
                .neighbors[i];
            if let Some(n) = self.clusters[nb as usize].as_mut() {
                n.neighbor_partner_links =
                    n.neighbor_partner_links.checked_add_signed(delta).expect(
                        "neighbor_partner_links underflow: cache out of sync with partner sets",
                    );
            }
        }
    }

    /// Promotes a client of `cluster` to partner. Returns the promoted
    /// peer, or `None` if the cluster has no clients.
    pub fn promote_client(&mut self, cluster: ClusterId, rng: &mut SpRng) -> Option<PeerId> {
        let peer = {
            let c = self.clusters[cluster as usize].as_mut()?;
            if c.clients.is_empty() {
                return None;
            }
            let idx = rng.index(c.clients.len());
            let peer = c.clients.swap_remove(idx);
            c.partners.push(peer);
            peer
        };
        self.partner_count_changed(cluster, 1);
        let p = self.peers[peer as usize].as_mut().expect("client alive");
        p.is_partner = true;
        Some(peer)
    }

    /// Promotes a *specific* client of `cluster` to partner. Returns
    /// `None` if the peer is not currently a client of that cluster.
    pub fn promote_specific(&mut self, cluster: ClusterId, peer: PeerId) -> Option<PeerId> {
        {
            let c = self.clusters[cluster as usize].as_mut()?;
            let idx = c.clients.iter().position(|&x| x == peer)?;
            c.clients.swap_remove(idx);
            c.partners.push(peer);
        }
        self.partner_count_changed(cluster, 1);
        let p = self.peers[peer as usize].as_mut().expect("client alive");
        p.is_partner = true;
        Some(peer)
    }

    /// Adds an undirected overlay edge; no-op when already present or
    /// when the ends coincide. Returns whether an edge was added.
    pub fn add_edge(&mut self, a: ClusterId, b: ClusterId) -> bool {
        if a == b {
            return false;
        }
        let present = self.clusters[a as usize]
            .as_ref()
            .map(|c| c.neighbors.contains(&b))
            .unwrap_or(true);
        if present {
            return false;
        }
        if self.clusters[b as usize].is_none() {
            return false;
        }
        let a_partners = self.clusters[a as usize]
            .as_ref()
            .expect("checked")
            .partners
            .len();
        let b_partners = self.clusters[b as usize]
            .as_ref()
            .expect("checked")
            .partners
            .len();
        {
            let ca = self.clusters[a as usize].as_mut().expect("checked");
            ca.neighbors.push(b);
            ca.neighbor_partner_links += b_partners;
        }
        {
            let cb = self.clusters[b as usize].as_mut().expect("checked");
            cb.neighbors.push(a);
            cb.neighbor_partner_links += a_partners;
        }
        true
    }

    /// Writes the whole network into a snapshot payload **verbatim**,
    /// including the private free lists (their pop order governs slot
    /// reuse), slot generations, and the alive list with its
    /// back-pointers (its order governs `random_cluster` draws).
    pub(crate) fn snap(&self, w: &mut SnapWriter) {
        w.len(self.peers.len());
        for slot in &self.peers {
            match slot {
                None => w.bool(false),
                Some(p) => {
                    w.bool(true);
                    w.u32(p.generation);
                    w.u32(p.files);
                    match p.cluster {
                        None => w.bool(false),
                        Some(c) => {
                            w.bool(true);
                            w.u32(c);
                        }
                    }
                    w.bool(p.is_partner);
                    w.f64(p.joined_at);
                    w.f64(p.attached_at);
                }
            }
        }
        w.len(self.counters.len());
        for c in &self.counters {
            c.snap(w);
        }
        w.len(self.free_peers.len());
        for &id in &self.free_peers {
            w.u32(id);
        }
        w.len(self.peer_generations.len());
        for &g in &self.peer_generations {
            w.u32(g);
        }
        w.len(self.clusters.len());
        for slot in &self.clusters {
            match slot {
                None => w.bool(false),
                Some(c) => {
                    w.bool(true);
                    w.u32(c.generation);
                    w.len(c.partners.len());
                    for &p in &c.partners {
                        w.u32(p);
                    }
                    w.len(c.clients.len());
                    for &p in &c.clients {
                        w.u32(p);
                    }
                    w.len(c.neighbors.len());
                    for &n in &c.neighbors {
                        w.u32(n);
                    }
                    w.u16(c.ttl);
                    w.u64(c.total_files);
                    w.len(c.rr);
                    w.u16(c.max_response_hop);
                    w.u64(c.growth as u64);
                    w.f64(c.last_adapt_at);
                    w.len(c.neighbor_partner_links);
                }
            }
        }
        w.len(self.free_clusters.len());
        for &id in &self.free_clusters {
            w.u32(id);
        }
        w.len(self.cluster_generations.len());
        for &g in &self.cluster_generations {
            w.u32(g);
        }
        w.len(self.alive.len());
        for &id in &self.alive {
            w.u32(id);
        }
        w.len(self.alive_pos.len());
        for &pos in &self.alive_pos {
            w.u64(pos as u64);
        }
    }

    /// Reads a network written by [`SimNetwork::snap`].
    pub(crate) fn unsnap(r: &mut SnapReader<'_>) -> Result<SimNetwork, SnapshotError> {
        let n_peers = r.len("peer slots len")?;
        let mut peers = Vec::with_capacity(n_peers);
        for _ in 0..n_peers {
            if !r.bool("peer slot occupied")? {
                peers.push(None);
                continue;
            }
            peers.push(Some(SimPeer {
                generation: r.u32("peer generation")?,
                files: r.u32("peer files")?,
                cluster: if r.bool("peer has cluster")? {
                    Some(r.u32("peer cluster")?)
                } else {
                    None
                },
                is_partner: r.bool("peer is_partner")?,
                joined_at: r.f64("peer joined_at")?,
                attached_at: r.f64("peer attached_at")?,
            }));
        }
        let n_counters = r.len("counters len")?;
        let mut counters = Vec::with_capacity(n_counters);
        for _ in 0..n_counters {
            counters.push(LoadCounters::unsnap(r)?);
        }
        let n_free_peers = r.len("free peers len")?;
        let mut free_peers = Vec::with_capacity(n_free_peers);
        for _ in 0..n_free_peers {
            free_peers.push(r.u32("free peer id")?);
        }
        let n_pgen = r.len("peer generations len")?;
        let mut peer_generations = Vec::with_capacity(n_pgen);
        for _ in 0..n_pgen {
            peer_generations.push(r.u32("peer slot generation")?);
        }
        let n_clusters = r.len("cluster slots len")?;
        let mut clusters = Vec::with_capacity(n_clusters);
        for _ in 0..n_clusters {
            if !r.bool("cluster slot occupied")? {
                clusters.push(None);
                continue;
            }
            let generation = r.u32("cluster generation")?;
            let n = r.len("cluster partners len")?;
            let mut partners = Vec::with_capacity(n);
            for _ in 0..n {
                partners.push(r.u32("cluster partner")?);
            }
            let n = r.len("cluster clients len")?;
            let mut clients = Vec::with_capacity(n);
            for _ in 0..n {
                clients.push(r.u32("cluster client")?);
            }
            let n = r.len("cluster neighbors len")?;
            let mut neighbors = Vec::with_capacity(n);
            for _ in 0..n {
                neighbors.push(r.u32("cluster neighbor")?);
            }
            clusters.push(Some(SimCluster {
                generation,
                partners,
                clients,
                neighbors,
                ttl: r.u16("cluster ttl")?,
                total_files: r.u64("cluster total_files")?,
                // The round-robin cursor is a wrapping counter, not a
                // length: in a long high-rate run it legitimately
                // exceeds the payload size, so skip the bounds check.
                rr: r.u64("cluster rr")? as usize,
                max_response_hop: r.u16("cluster max_response_hop")?,
                growth: r.u64("cluster growth")? as i64,
                last_adapt_at: r.f64("cluster last_adapt_at")?,
                neighbor_partner_links: r.len("cluster neighbor_partner_links")?,
            }));
        }
        let n_free_clusters = r.len("free clusters len")?;
        let mut free_clusters = Vec::with_capacity(n_free_clusters);
        for _ in 0..n_free_clusters {
            free_clusters.push(r.u32("free cluster id")?);
        }
        let n_cgen = r.len("cluster generations len")?;
        let mut cluster_generations = Vec::with_capacity(n_cgen);
        for _ in 0..n_cgen {
            cluster_generations.push(r.u32("cluster slot generation")?);
        }
        let n_alive = r.len("alive len")?;
        let mut alive = Vec::with_capacity(n_alive);
        for _ in 0..n_alive {
            let id = r.u32("alive cluster id")?;
            if id as usize >= clusters.len() {
                return Err(SnapshotError::Malformed(format!(
                    "alive cluster {id} outside slab of {}",
                    clusters.len()
                )));
            }
            alive.push(id);
        }
        let n_alive_pos = r.len("alive_pos len")?;
        let mut alive_pos = Vec::with_capacity(n_alive_pos);
        for _ in 0..n_alive_pos {
            // NOT_ALIVE (usize::MAX) exceeds the payload size, so read
            // the raw u64 rather than the bounds-checked `len`.
            alive_pos.push(r.u64("alive_pos entry")? as usize);
        }
        for &pos in &alive_pos {
            if pos != NOT_ALIVE && pos >= alive.len() {
                return Err(SnapshotError::Malformed(format!(
                    "alive_pos {pos} outside alive list of {}",
                    alive.len()
                )));
            }
        }
        let net = SimNetwork {
            peers,
            counters,
            free_peers,
            peer_generations,
            clusters,
            free_clusters,
            cluster_generations,
            alive,
            alive_pos,
        };
        net.check_invariants().map_err(SnapshotError::Malformed)?;
        Ok(net)
    }

    /// Validates structural invariants (membership symmetry, edge
    /// symmetry, file-count consistency). Test/debug helper.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, slot) in self.clusters.iter().enumerate() {
            let Some(c) = slot else { continue };
            let mut files = 0u64;
            for &p in c.partners.iter().chain(c.clients.iter()) {
                let peer = self.peers[p as usize]
                    .as_ref()
                    .ok_or_else(|| format!("cluster {i} references dead peer {p}"))?;
                if peer.cluster != Some(i as ClusterId) {
                    return Err(format!("peer {p} does not point back at cluster {i}"));
                }
                files += peer.files as u64;
            }
            if files != c.total_files {
                return Err(format!(
                    "cluster {i}: cached files {} != actual {files}",
                    c.total_files
                ));
            }
            let mut neighbor_links = 0usize;
            for &nb in &c.neighbors {
                let n = self.clusters[nb as usize]
                    .as_ref()
                    .ok_or_else(|| format!("cluster {i} has dead neighbor {nb}"))?;
                if !n.neighbors.contains(&(i as ClusterId)) {
                    return Err(format!("asymmetric edge {i} → {nb}"));
                }
                neighbor_links += n.partners.len();
            }
            if neighbor_links != c.neighbor_partner_links {
                return Err(format!(
                    "cluster {i}: cached neighbor partner links {} != actual {neighbor_links}",
                    c.neighbor_partner_links
                ));
            }
        }
        for (i, &pos) in self.alive_pos.iter().enumerate() {
            let alive = self.clusters[i].is_some();
            if alive != (pos != NOT_ALIVE) {
                return Err(format!("alive list out of sync for cluster {i}"));
            }
            if alive && self.alive[pos] != i as ClusterId {
                return Err(format!("alive position wrong for cluster {i}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SpRng {
        SpRng::seed_from_u64(7)
    }

    #[test]
    fn peer_slots_recycle_with_generation_bump() {
        let mut net = SimNetwork::new();
        let a = net.add_peer(10, 0.0);
        let g0 = net.peer_generation(a);
        net.remove_peer(a);
        let b = net.add_peer(20, 1.0);
        assert_eq!(a, b, "slot reused");
        assert_ne!(net.peer_generation(b), g0);
        assert!(net.peer(b, g0).is_none(), "stale generation rejected");
        assert!(net.peer(b, net.peer_generation(b)).is_some());
    }

    #[test]
    fn cluster_lifecycle_and_alive_list() {
        let mut net = SimNetwork::new();
        let mut r = rng();
        let p1 = net.add_peer(5, 0.0);
        let p2 = net.add_peer(7, 0.0);
        let c1 = net.add_cluster(p1, 7);
        let c2 = net.add_cluster(p2, 7);
        assert_eq!(net.num_alive_clusters(), 2);
        assert!(net.add_edge(c1, c2));
        assert!(!net.add_edge(c1, c2), "duplicate edge rejected");
        assert!(!net.add_edge(c1, c1), "self edge rejected");
        net.check_invariants().unwrap();

        net.detach_partner(p1);
        net.remove_cluster(c1);
        assert_eq!(net.num_alive_clusters(), 1);
        assert_eq!(net.random_cluster(&mut r), Some(c2));
        // Edge removed from the survivor.
        assert!(net.clusters[c2 as usize]
            .as_ref()
            .unwrap()
            .neighbors
            .is_empty());
        net.check_invariants().unwrap();
    }

    #[test]
    fn attach_detach_maintains_files() {
        let mut net = SimNetwork::new();
        let sp = net.add_peer(100, 0.0);
        let c = net.add_cluster(sp, 7);
        let cl = net.add_peer(50, 0.0);
        net.attach_client(cl, c);
        assert_eq!(net.clusters[c as usize].as_ref().unwrap().total_files, 150);
        net.check_invariants().unwrap();
        net.detach_client(cl);
        assert_eq!(net.clusters[c as usize].as_ref().unwrap().total_files, 100);
        net.check_invariants().unwrap();
    }

    #[test]
    fn promote_client_moves_role() {
        let mut net = SimNetwork::new();
        let mut r = rng();
        let sp = net.add_peer(10, 0.0);
        let c = net.add_cluster(sp, 7);
        assert!(net.promote_client(c, &mut r).is_none());
        let cl = net.add_peer(5, 0.0);
        net.attach_client(cl, c);
        let promoted = net.promote_client(c, &mut r).unwrap();
        assert_eq!(promoted, cl);
        assert!(net.peers[cl as usize].as_ref().unwrap().is_partner);
        let cluster = net.clusters[c as usize].as_ref().unwrap();
        assert_eq!(cluster.partners.len(), 2);
        assert!(cluster.clients.is_empty());
        assert_eq!(cluster.total_files, 15);
        net.check_invariants().unwrap();
    }

    #[test]
    fn neighbor_partner_links_tracks_promotions_and_departures() {
        let mut net = SimNetwork::new();
        let mut r = rng();
        let p1 = net.add_peer(1, 0.0);
        let p2 = net.add_peer(1, 0.0);
        let c1 = net.add_cluster(p1, 7);
        let c2 = net.add_cluster(p2, 7);
        net.add_edge(c1, c2);
        let links = |net: &SimNetwork, c: ClusterId| {
            net.clusters[c as usize]
                .as_ref()
                .unwrap()
                .neighbor_partner_links
        };
        assert_eq!(links(&net, c1), 1);
        assert_eq!(links(&net, c2), 1);

        // Promoting a client of c2 raises c1's link count.
        let cl = net.add_peer(1, 0.0);
        net.attach_client(cl, c2);
        assert_eq!(links(&net, c1), 1, "clients do not add partner links");
        net.promote_client(c2, &mut r).unwrap();
        assert_eq!(links(&net, c1), 2);
        net.check_invariants().unwrap();

        // A partner departure lowers it again.
        net.detach_partner(cl);
        assert_eq!(links(&net, c1), 1);
        net.check_invariants().unwrap();

        // Cached and recomputed connection counts agree.
        let c = net.clusters[c1 as usize].as_ref().unwrap();
        assert_eq!(
            c.partner_connections_cached(),
            c.partner_connections(links(&net, c1))
        );
    }

    #[test]
    fn random_cluster_on_empty_network() {
        let net = SimNetwork::new();
        assert!(net.random_cluster(&mut rng()).is_none());
    }

    #[test]
    #[should_panic(expected = "members remain")]
    fn removing_populated_cluster_panics() {
        let mut net = SimNetwork::new();
        let sp = net.add_peer(1, 0.0);
        let c = net.add_cluster(sp, 7);
        net.remove_cluster(c);
    }
}
