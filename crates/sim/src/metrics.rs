//! Engine observability: event-rate counters, per-event-type wall-time
//! histograms, queue-depth high-water marks, and a structured run
//! manifest.
//!
//! The counters are cheap enough to stay on unconditionally (an array
//! increment per dispatched event); the wall-clock histograms cost two
//! `Instant::now()` calls per event and are gated behind
//! [`SimOptions::profile`](crate::engine::SimOptions::profile) so that
//! throughput benchmarks measure the engine, not the instrumentation.
//!
//! The vendored `serde` stub provides marker traits only, so
//! [`RunManifest::to_json`] renders JSON by hand — the same approach
//! `repro_bench` uses for its `BENCH_*.json` artifacts.

use std::time::Instant;

use crate::events::Event;
use crate::faults::FaultMetrics;
use crate::overload::OverloadMetrics;
use crate::repair::RepairMetrics;
use sp_model::overload::OverloadPolicy;
use sp_model::repair::RepairPolicy;

/// Discriminant of an [`Event`], used to index per-kind counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A fresh peer arrival.
    Join,
    /// A peer session ending.
    Leave,
    /// A query issued by a live peer.
    Query,
    /// A metadata update issued by a live peer.
    Update,
    /// An orphaned client retrying discovery.
    Rejoin,
    /// A cluster promoting a replacement partner.
    Recruit,
    /// An adaptive-rules evaluation tick.
    Adapt,
    /// A headless cluster electing a replacement super-peer.
    Repair,
    /// A periodic timeline sample.
    Sample,
    /// A fault-plan injection or window boundary.
    Fault,
    /// A scenario phase opening or closing.
    Phase,
}

/// Number of distinct event kinds.
pub const NUM_EVENT_KINDS: usize = 11;

impl EventKind {
    /// All kinds, in counter-index order.
    pub const ALL: [EventKind; NUM_EVENT_KINDS] = [
        EventKind::Join,
        EventKind::Leave,
        EventKind::Query,
        EventKind::Update,
        EventKind::Rejoin,
        EventKind::Recruit,
        EventKind::Adapt,
        EventKind::Repair,
        EventKind::Sample,
        EventKind::Fault,
        EventKind::Phase,
    ];

    /// The kind of an event.
    pub fn of(event: &Event) -> EventKind {
        match event {
            Event::PeerJoin => EventKind::Join,
            Event::PeerLeave { .. } => EventKind::Leave,
            Event::Query { .. } => EventKind::Query,
            Event::Update { .. } => EventKind::Update,
            Event::ClientRejoin { .. } => EventKind::Rejoin,
            Event::RecruitPartner { .. } => EventKind::Recruit,
            Event::AdaptTick { .. } => EventKind::Adapt,
            Event::Repair { .. } => EventKind::Repair,
            Event::Sample => EventKind::Sample,
            Event::Fault { .. } => EventKind::Fault,
            Event::Phase { .. } => EventKind::Phase,
        }
    }

    /// Stable lower-case name (used as a JSON key).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Join => "join",
            EventKind::Leave => "leave",
            EventKind::Query => "query",
            EventKind::Update => "update",
            EventKind::Rejoin => "rejoin",
            EventKind::Recruit => "recruit",
            EventKind::Adapt => "adapt",
            EventKind::Repair => "repair",
            EventKind::Sample => "sample",
            EventKind::Fault => "fault",
            EventKind::Phase => "phase",
        }
    }
}

/// A log₂-bucketed histogram of nanosecond durations.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))` ns (bucket 0 also
/// holds zero). 64 buckets cover every representable `u64` duration,
/// so recording can never overflow a bucket index.
#[derive(Debug, Clone)]
pub struct WallHistogram {
    buckets: [u64; 64],
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

impl Default for WallHistogram {
    fn default() -> Self {
        WallHistogram {
            buckets: [0; 64],
            count: 0,
            total_ns: 0,
            max_ns: 0,
        }
    }
}

impl WallHistogram {
    /// Records one duration.
    pub fn record(&mut self, ns: u64) {
        let bucket = (64 - ns.leading_zeros()).saturating_sub(1) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded durations, nanoseconds (saturating).
    pub fn total_ns(&self) -> u64 {
        self.total_ns
    }

    /// Largest recorded duration, nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Mean duration in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    /// Approximate quantile from the bucket boundaries: returns the
    /// upper edge of the bucket containing the `q`-quantile sample.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return 2u64.saturating_pow(i as u32 + 1).saturating_sub(1);
            }
        }
        self.max_ns
    }
}

/// An in-flight wall-time measurement for one event handler.
///
/// The wall-clock read lives *here*, not in the engine: this module is
/// the sim crate's only member of the sp-lint D2 observability
/// allowlist, so every `Instant::now` the simulator ever performs is
/// auditable in one file. A disabled timer (profiling off) is a
/// `None` and costs one branch.
#[derive(Debug)]
pub struct ProfileTimer(Option<Instant>);

impl ProfileTimer {
    /// Starts a measurement when `enabled`; otherwise an inert timer.
    #[inline]
    pub fn start(enabled: bool) -> ProfileTimer {
        ProfileTimer(enabled.then(Instant::now))
    }

    /// Stops the timer and records the elapsed nanoseconds under
    /// `kind`. Inert timers record nothing.
    #[inline]
    pub fn record(self, metrics: &mut SimMetrics, kind: EventKind) {
        if let Some(start) = self.0 {
            metrics.wall[kind as usize].record(start.elapsed().as_nanos() as u64);
        }
    }
}

/// Counters accumulated by the engine while it runs.
#[derive(Debug, Clone, Default)]
pub struct SimMetrics {
    /// Delivered events per kind — events that passed their generation
    /// guard and ran a handler. Stale tombstones (old engine) and
    /// cancelled entries (indexed queue) are excluded, so the totals
    /// are comparable across engine implementations.
    pub delivered: [u64; NUM_EVENT_KINDS],
    /// Events cancelled in the queue before firing (indexed queue
    /// only; the binary queue cannot cancel).
    pub cancelled: u64,
    /// Events popped whose generation guard failed (tombstones).
    pub stale: u64,
    /// Deepest the event queue ever got.
    pub queue_high_water: usize,
    /// Per-kind handler wall time; only populated when profiling was
    /// requested via `SimOptions::profile`.
    pub wall: [WallHistogram; NUM_EVENT_KINDS],
    /// Whether the wall histograms were populated.
    pub profiled: bool,
}

impl SimMetrics {
    /// Counts one delivered event.
    #[inline]
    pub fn record_delivered(&mut self, kind: EventKind) {
        self.delivered[kind as usize] += 1;
    }

    /// Total delivered events across kinds.
    pub fn delivered_total(&self) -> u64 {
        self.delivered.iter().sum()
    }

    /// Delivered count for one kind.
    pub fn delivered_of(&self, kind: EventKind) -> u64 {
        self.delivered[kind as usize]
    }
}

/// A structured, serializable description of one simulation run:
/// what was simulated, and what the engine observed while doing it.
#[derive(Debug, Clone)]
pub struct RunManifest {
    /// RNG seed.
    pub seed: u64,
    /// Simulated duration, seconds.
    pub duration_secs: f64,
    /// Configured peer population.
    pub graph_size: usize,
    /// Configured cluster size.
    pub cluster_size: usize,
    /// Configured redundancy factor.
    pub redundancy_k: usize,
    /// Wall-clock time of the run, seconds.
    pub wall_secs: f64,
    /// Engine counters.
    pub metrics: SimMetrics,
    /// Seed of the dedicated fault-injection RNG stream.
    pub fault_seed: u64,
    /// Number of faults in the injected plan (0 without a plan).
    pub fault_plan_len: usize,
    /// Fault-injection and recovery counters.
    pub faults: FaultMetrics,
    /// The self-healing policy in force for the run.
    pub repair_policy: RepairPolicy,
    /// Overlay-repair counters and the reachability timeline.
    pub repair: RepairMetrics,
    /// The overload-control policy in force for the run (empty =
    /// subsystem disabled).
    pub overload_policy: OverloadPolicy,
    /// Overload ledger: shed/reject counters, response-latency
    /// histogram, and the queue-depth/utilization timeline.
    pub overload: OverloadMetrics,
}

impl RunManifest {
    /// Delivered events per wall-clock second (0 when wall time is 0).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.metrics.delivered_total() as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Renders the manifest as a JSON document (hand-rolled: the
    /// vendored serde stub has no serializer).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"duration_secs\": {},\n", self.duration_secs));
        s.push_str(&format!("  \"graph_size\": {},\n", self.graph_size));
        s.push_str(&format!("  \"cluster_size\": {},\n", self.cluster_size));
        s.push_str(&format!("  \"redundancy_k\": {},\n", self.redundancy_k));
        s.push_str(&format!("  \"wall_secs\": {:.6},\n", self.wall_secs));
        s.push_str(&format!(
            "  \"events_per_sec\": {:.1},\n",
            self.events_per_sec()
        ));
        s.push_str(&format!(
            "  \"events_delivered\": {},\n",
            self.metrics.delivered_total()
        ));
        s.push_str(&format!(
            "  \"events_cancelled\": {},\n",
            self.metrics.cancelled
        ));
        s.push_str(&format!("  \"events_stale\": {},\n", self.metrics.stale));
        s.push_str(&format!(
            "  \"queue_high_water\": {},\n",
            self.metrics.queue_high_water
        ));
        s.push_str("  \"delivered_by_kind\": {\n");
        for (i, kind) in EventKind::ALL.iter().enumerate() {
            let sep = if i + 1 < EventKind::ALL.len() {
                ","
            } else {
                ""
            };
            s.push_str(&format!(
                "    \"{}\": {}{sep}\n",
                kind.name(),
                self.metrics.delivered_of(*kind)
            ));
        }
        s.push_str("  },\n");
        s.push_str(&format!("  \"profiled\": {},\n", self.metrics.profiled));
        s.push_str("  \"wall_ns_by_kind\": {\n");
        for (i, kind) in EventKind::ALL.iter().enumerate() {
            let h = &self.metrics.wall[*kind as usize];
            let sep = if i + 1 < EventKind::ALL.len() {
                ","
            } else {
                ""
            };
            s.push_str(&format!(
                "    \"{}\": {{ \"count\": {}, \"total_ns\": {}, \"mean_ns\": {:.1}, \"p99_ns\": {}, \"max_ns\": {} }}{sep}\n",
                kind.name(),
                h.count(),
                h.total_ns(),
                h.mean_ns(),
                h.quantile_ns(0.99),
                h.max_ns()
            ));
        }
        s.push_str("  },\n");
        let f = &self.faults;
        s.push_str(&format!("  \"fault_seed\": {},\n", self.fault_seed));
        s.push_str(&format!("  \"fault_plan_len\": {},\n", self.fault_plan_len));
        s.push_str("  \"faults\": {\n");
        s.push_str("    \"injected\": {\n");
        s.push_str(&format!("      \"crash\": {},\n", f.injected_crash));
        s.push_str(&format!("      \"drop\": {},\n", f.injected_drop));
        s.push_str(&format!("      \"delay\": {},\n", f.injected_delay));
        s.push_str(&format!(
            "      \"partition_block\": {},\n",
            f.injected_partition_block
        ));
        s.push_str(&format!("      \"flaky\": {}\n", f.injected_flaky));
        s.push_str("    },\n");
        s.push_str(&format!("    \"queries_issued\": {},\n", f.queries_issued));
        s.push_str(&format!(
            "    \"answered_direct\": {},\n",
            f.answered_direct
        ));
        s.push_str(&format!(
            "    \"recovered_retry\": {},\n",
            f.recovered_retry
        ));
        s.push_str(&format!(
            "    \"recovered_failover\": {},\n",
            f.recovered_failover
        ));
        s.push_str(&format!("    \"queries_lost\": {},\n", f.queries_lost));
        s.push_str(&format!(
            "    \"retry_wait_secs\": {:.6},\n",
            f.retry_wait_secs
        ));
        s.push_str(&format!(
            "    \"delay_added_secs\": {:.6},\n",
            f.delay_added_secs
        ));
        s.push_str(&format!("    \"orphan_gave_up\": {},\n", f.orphan_gave_up));
        s.push_str(&format!(
            "    \"reconnect\": {{ \"count\": {}, \"mean_secs\": {:.3}, \"max_secs\": {:.3}, \"total_secs\": {:.3} }}\n",
            f.reconnect.count(),
            f.reconnect.mean_secs(),
            f.reconnect.max_secs(),
            f.reconnect.total_secs()
        ));
        s.push_str("  },\n");
        let r = &self.repair;
        s.push_str(&format!(
            "  \"repair_policy\": \"{}\",\n",
            self.repair_policy
        ));
        s.push_str("  \"repair\": {\n");
        s.push_str(&format!("    \"promotions\": {},\n", r.promotions));
        s.push_str(&format!(
            "    \"partner_recruitments\": {},\n",
            r.partner_recruitments
        ));
        s.push_str(&format!(
            "    \"reindexed_clients\": {},\n",
            r.reindexed_clients
        ));
        s.push_str(&format!("    \"reindex_bytes\": {:.1},\n", r.reindex_bytes));
        s.push_str(&format!("    \"abandoned\": {},\n", r.abandoned));
        s.push_str(&format!(
            "    \"queries_during_outage\": {},\n",
            r.queries_during_outage
        ));
        s.push_str(&format!(
            "    \"time_to_repair\": {{ \"count\": {}, \"mean_secs\": {:.3}, \"max_secs\": {:.3}, \"total_secs\": {:.3} }},\n",
            r.time_to_repair.count(),
            r.time_to_repair.mean_secs(),
            r.time_to_repair.max_secs(),
            r.time_to_repair.total_secs()
        ));
        s.push_str(&format!(
            "    \"final_components\": {},\n",
            r.final_components
        ));
        s.push_str(&format!(
            "    \"final_reachable_fraction\": {:.6},\n",
            r.final_reachable_fraction
        ));
        s.push_str("    \"reachability\": [\n");
        for (i, p) in r.reachability.iter().enumerate() {
            let sep = if i + 1 < r.reachability.len() {
                ","
            } else {
                ""
            };
            s.push_str(&format!(
                "      {{ \"time\": {:.1}, \"components\": {}, \"reachable_fraction\": {:.6} }}{sep}\n",
                p.time, p.components, p.reachable_fraction
            ));
        }
        s.push_str("    ]\n");
        s.push_str("  },\n");
        let active = !self.overload_policy.is_empty();
        s.push_str(&format!("  \"overload_active\": {active},\n"));
        s.push_str("  \"overload_policy\": ");
        for (i, line) in self.overload_policy.to_json().lines().enumerate() {
            if i > 0 {
                s.push_str("\n  ");
            }
            s.push_str(line);
        }
        s.push_str(",\n");
        // The overload ledger renders compact; the embedded timeline
        // (queue depth, utilization, browned-out clusters per sample)
        // is capped so a week-long run cannot balloon the manifest.
        s.push_str(&format!(
            "  \"overload\": {}\n",
            self.overload.to_json(if active { 512 } else { 0 })
        ));
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_kind_covers_every_event() {
        let samples = [
            Event::PeerJoin,
            Event::PeerLeave {
                peer: 0,
                generation: 0,
            },
            Event::Query {
                peer: 0,
                generation: 0,
            },
            Event::Update {
                peer: 0,
                generation: 0,
            },
            Event::ClientRejoin {
                peer: 0,
                generation: 0,
                orphaned_at: 0.0,
                attempt: 0,
            },
            Event::RecruitPartner {
                cluster: 0,
                generation: 0,
            },
            Event::AdaptTick {
                cluster: 0,
                generation: 0,
            },
            Event::Repair {
                cluster: 0,
                generation: 0,
            },
            Event::Sample,
            Event::Fault {
                index: 0,
                start: true,
            },
            Event::Phase {
                index: 0,
                start: true,
            },
        ];
        let mut m = SimMetrics::default();
        for e in &samples {
            m.record_delivered(EventKind::of(e));
        }
        assert_eq!(m.delivered_total(), samples.len() as u64);
        for kind in EventKind::ALL {
            assert_eq!(m.delivered_of(kind), 1, "kind {} miscounted", kind.name());
        }
    }

    #[test]
    fn histogram_buckets_powers_of_two() {
        let mut h = WallHistogram::default();
        for ns in [0u64, 1, 2, 3, 4, 1023, 1024, u64::MAX] {
            h.record(ns);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.max_ns(), u64::MAX);
        assert!(h.mean_ns() > 0.0);
        // Median sits well below the max outlier.
        assert!(h.quantile_ns(0.5) <= 2048);
    }

    #[test]
    fn manifest_renders_parsable_shape() {
        let mut metrics = SimMetrics::default();
        metrics.record_delivered(EventKind::Query);
        metrics.queue_high_water = 42;
        let m = RunManifest {
            seed: 7,
            duration_secs: 100.0,
            graph_size: 1000,
            cluster_size: 10,
            redundancy_k: 2,
            wall_secs: 0.5,
            metrics,
            fault_seed: 0,
            fault_plan_len: 0,
            faults: FaultMetrics::default(),
            repair_policy: RepairPolicy::PromotePartner,
            repair: RepairMetrics::default(),
            overload_policy: OverloadPolicy::default(),
            overload: OverloadMetrics::default(),
        };
        let json = m.to_json();
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"query\": 1"));
        assert!(json.contains("\"queue_high_water\": 42"));
        assert!(json.contains("\"repair_policy\": \"promote+partner\""));
        assert!(json.contains("\"final_components\": 0"));
        assert!(json.contains("\"overload_active\": false"));
        assert!(json.contains("\"overload_policy\": {"));
        assert!(json.contains("\"overload\": {\"delivered\": 0"));
        assert_eq!(m.events_per_sec(), 2.0);
        // Balanced braces — a cheap structural sanity check given the
        // hand-rolled rendering.
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }
}
