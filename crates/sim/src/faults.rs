//! Deterministic fault injection for the churn simulator.
//!
//! A [`FaultState`] owns everything fault-related that both engines
//! share: the compiled [`FaultPlan`], a *dedicated* RNG stream (seeded
//! from `SimOptions::fault_seed`, never from the simulation's main
//! stream), the currently active message-loss/delay/flaky windows, and
//! the partition map. Keeping the fault stream separate means a run
//! with an empty plan makes **zero** fault draws and is bitwise
//! identical to a run of the pre-fault engine; and the same plan under
//! a different `--fault-seed` reuses the main seed's churn/query
//! schedule exactly.
//!
//! Both the fast engine and the reference engine own a `FaultState`
//! and call into it at the *same* logical points (submission, each
//! flood transmission, each fault event), so the draw sequences align
//! and `RawMetrics` — including [`FaultMetrics`] — stay bitwise equal.
//!
//! Client-side recovery follows the plan's [`RetryPolicy`]: a failed
//! submission attempt (dropped in flight, or a flaky partner) costs the
//! client a timeout plus exponential backoff of *virtual* latency
//! (accounted in [`FaultMetrics::retry_wait_secs`], never scheduled),
//! and after `max_retries` retries the client fails over to the second
//! partner of a k≥2 virtual super-peer. Only when the failover
//! sequence is exhausted too is the query counted lost.

use crate::events::ClusterId;
use sp_model::faults::{FaultPlan, FaultSpec, RetryPolicy};
use sp_model::snapshot::{SnapReader, SnapWriter, SnapshotError};
use sp_stats::SpRng;

/// How a client query submission ultimately resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryOutcome {
    /// First attempt reached the round-robin partner.
    Direct,
    /// A retry on the same partner succeeded.
    Retry,
    /// The failover partner (second round-robin pick) answered.
    Failover,
    /// Every attempt failed; the query is lost and never floods.
    Lost,
}

/// The result of driving one client submission through the retry and
/// failover state machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Submission {
    /// How the submission resolved.
    pub outcome: QueryOutcome,
    /// Attempts on the primary partner lost in flight.
    pub primary_drops: u32,
    /// Attempts on the primary partner that reached a flaky partner.
    pub primary_flakes: u32,
    /// Failover attempts lost in flight.
    pub failover_drops: u32,
    /// Failover attempts that reached a flaky partner.
    pub failover_flakes: u32,
    /// Virtual client-side latency spent on timeouts and backoff.
    pub wait_secs: f64,
}

impl Submission {
    /// A clean first-attempt success (the no-fault fast path).
    pub const DIRECT: Submission = Submission {
        outcome: QueryOutcome::Direct,
        primary_drops: 0,
        primary_flakes: 0,
        failover_drops: 0,
        failover_flakes: 0,
        wait_secs: 0.0,
    };

    /// Whether the failover partner was ever contacted (it is charged
    /// for the attempts that reached it).
    pub fn used_failover(&self) -> bool {
        matches!(self.outcome, QueryOutcome::Failover | QueryOutcome::Lost)
            && (self.failover_drops > 0
                || self.failover_flakes > 0
                || self.outcome == QueryOutcome::Failover)
    }
}

/// What an engine must do in response to a popped fault event.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// Window bookkeeping only; nothing else to execute.
    None,
    /// Crash every partner of the listed clusters (already resolved
    /// against the alive list, in deterministic order).
    Crash(Vec<ClusterId>),
}

/// A log₂-bucketed histogram of reconnect times, in seconds.
///
/// Bucket `i` counts reconnects that took `[2^i, 2^(i+1))` seconds
/// (bucket 0 also holds sub-second reconnects).
#[derive(Debug, Clone, PartialEq)]
pub struct ReconnectHistogram {
    buckets: [u64; 32],
    count: u64,
    total_secs: f64,
    max_secs: f64,
}

impl Default for ReconnectHistogram {
    fn default() -> Self {
        ReconnectHistogram {
            buckets: [0; 32],
            count: 0,
            total_secs: 0.0,
            max_secs: 0.0,
        }
    }
}

impl ReconnectHistogram {
    /// Records one client's downtime between orphaning and reattach.
    pub fn record(&mut self, secs: f64) {
        let secs = secs.max(0.0);
        let bucket = (secs.max(1.0).log2().floor() as usize).min(31);
        self.buckets[bucket] += 1;
        self.count += 1;
        self.total_secs += secs;
        if secs > self.max_secs {
            self.max_secs = secs;
        }
    }

    /// Reconnects recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of reconnect times, seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_secs
    }

    /// Longest reconnect, seconds.
    pub fn max_secs(&self) -> f64 {
        self.max_secs
    }

    /// Mean reconnect time (0 when empty).
    pub fn mean_secs(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_secs / self.count as f64
        }
    }

    /// Bucket counts (bucket `i` covers `[2^i, 2^(i+1))` seconds).
    pub fn buckets(&self) -> &[u64; 32] {
        &self.buckets
    }

    /// Writes the histogram into a snapshot payload.
    pub(crate) fn snap(&self, w: &mut SnapWriter) {
        for &b in &self.buckets {
            w.u64(b);
        }
        w.u64(self.count);
        w.f64(self.total_secs);
        w.f64(self.max_secs);
    }

    /// Reads a histogram written by [`ReconnectHistogram::snap`].
    pub(crate) fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let mut buckets = [0u64; 32];
        for b in &mut buckets {
            *b = r.u64("histogram bucket")?;
        }
        Ok(ReconnectHistogram {
            buckets,
            count: r.u64("histogram count")?,
            total_secs: r.f64("histogram total_secs")?,
            max_secs: r.f64("histogram max_secs")?,
        })
    }
}

/// Fault-injection and recovery counters, embedded in `RawMetrics` so
/// engine-equivalence checks cover them bitwise.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultMetrics {
    /// Super-peers crashed by `crash_cluster` / `crash_fraction`.
    pub injected_crash: u64,
    /// Transmissions dropped by active `message_loss` windows.
    pub injected_drop: u64,
    /// Transmissions delayed by active `message_delay` windows.
    pub injected_delay: u64,
    /// Flood transmissions blocked by an active partition.
    pub injected_partition_block: u64,
    /// Submission attempts that hit a flaky partner.
    pub injected_flaky: u64,
    /// Client/partner queries that reached the submission path.
    pub queries_issued: u64,
    /// Queries answered on the first attempt.
    pub answered_direct: u64,
    /// Queries recovered by retrying the same partner.
    pub recovered_retry: u64,
    /// Queries recovered by failing over to the second partner.
    pub recovered_failover: u64,
    /// Queries that exhausted retry and failover.
    pub queries_lost: u64,
    /// Virtual client latency spent in timeouts and backoff, seconds.
    pub retry_wait_secs: f64,
    /// Simulated latency added by `message_delay`, seconds.
    pub delay_added_secs: f64,
    /// Orphaned clients that exhausted the rejoin-attempt cap.
    pub orphan_gave_up: u64,
    /// Time-to-reconnect distribution for recovered orphans.
    pub reconnect: ReconnectHistogram,
}

impl FaultMetrics {
    /// Records one submission result.
    pub fn record_submission(&mut self, sub: &Submission) {
        self.queries_issued += 1;
        match sub.outcome {
            QueryOutcome::Direct => self.answered_direct += 1,
            QueryOutcome::Retry => self.recovered_retry += 1,
            QueryOutcome::Failover => self.recovered_failover += 1,
            QueryOutcome::Lost => self.queries_lost += 1,
        }
        self.injected_drop += (sub.primary_drops + sub.failover_drops) as u64;
        self.injected_flaky += (sub.primary_flakes + sub.failover_flakes) as u64;
        self.retry_wait_secs += sub.wait_secs;
    }

    /// Queries that were answered (directly or after recovery).
    pub fn queries_recovered(&self) -> u64 {
        self.recovered_retry + self.recovered_failover
    }

    /// Conservation check: every issued query is accounted exactly
    /// once.
    pub fn conserved(&self) -> bool {
        self.queries_issued
            == self.answered_direct
                + self.recovered_retry
                + self.recovered_failover
                + self.queries_lost
    }

    /// Writes the counters into a snapshot payload.
    pub(crate) fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.injected_crash);
        w.u64(self.injected_drop);
        w.u64(self.injected_delay);
        w.u64(self.injected_partition_block);
        w.u64(self.injected_flaky);
        w.u64(self.queries_issued);
        w.u64(self.answered_direct);
        w.u64(self.recovered_retry);
        w.u64(self.recovered_failover);
        w.u64(self.queries_lost);
        w.f64(self.retry_wait_secs);
        w.f64(self.delay_added_secs);
        w.u64(self.orphan_gave_up);
        self.reconnect.snap(w);
    }

    /// Reads counters written by [`FaultMetrics::snap`].
    pub(crate) fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(FaultMetrics {
            injected_crash: r.u64("fault injected_crash")?,
            injected_drop: r.u64("fault injected_drop")?,
            injected_delay: r.u64("fault injected_delay")?,
            injected_partition_block: r.u64("fault injected_partition_block")?,
            injected_flaky: r.u64("fault injected_flaky")?,
            queries_issued: r.u64("fault queries_issued")?,
            answered_direct: r.u64("fault answered_direct")?,
            recovered_retry: r.u64("fault recovered_retry")?,
            recovered_failover: r.u64("fault recovered_failover")?,
            queries_lost: r.u64("fault queries_lost")?,
            retry_wait_secs: r.f64("fault retry_wait_secs")?,
            delay_added_secs: r.f64("fault delay_added_secs")?,
            orphan_gave_up: r.u64("fault orphan_gave_up")?,
            reconnect: ReconnectHistogram::unsnap(r)?,
        })
    }
}

/// Tracks which windowed fault is currently active.
#[derive(Debug, Clone, Default)]
struct WindowFlags {
    active: Vec<bool>,
}

/// The shared fault-injection state machine (see module docs).
#[derive(Debug, Clone)]
pub struct FaultState {
    plan: FaultPlan,
    rng: SpRng,
    windows: WindowFlags,
    /// Effective per-transmission drop probability over active windows.
    drop_prob: f64,
    /// Effective per-transmission delay probability.
    delay_prob: f64,
    /// Latency added per delayed transmission (sum of active windows).
    delay_secs: f64,
    /// Effective per-submission flake probability.
    flaky_prob: f64,
    /// Per-cluster-slot partition depth (blocked while > 0).
    partitioned: Vec<u32>,
    /// Cluster slots resolved at each partition window's start, so the
    /// window end releases exactly what it blocked even under churn.
    resolved_partitions: Vec<Vec<ClusterId>>,
}

impl FaultState {
    /// Builds the state for a plan. An empty plan produces an inert
    /// state: no draws, no blocked edges, no retry caps.
    pub fn new(plan: FaultPlan, fault_seed: u64) -> FaultState {
        let n = plan.faults.len();
        FaultState {
            plan,
            rng: SpRng::seed_from_u64(fault_seed ^ 0x000F_A417_5EED),
            windows: WindowFlags {
                active: vec![false; n],
            },
            drop_prob: 0.0,
            delay_prob: 0.0,
            delay_secs: 0.0,
            flaky_prob: 0.0,
            partitioned: Vec::new(),
            resolved_partitions: vec![Vec::new(); n],
        }
    }

    /// An inert state (empty plan); the engines' default.
    pub fn inactive() -> FaultState {
        FaultState::new(FaultPlan::default(), 0)
    }

    /// Whether the plan injects anything at all.
    pub fn is_active(&self) -> bool {
        !self.plan.faults.is_empty()
    }

    /// The plan driving this state.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The retry policy in force.
    pub fn retry(&self) -> &RetryPolicy {
        &self.plan.retry
    }

    /// The rejoin-attempt cap, or `None` when no faults are active
    /// (so plain churn runs keep the uncapped legacy behavior).
    pub fn rejoin_cap(&self) -> Option<u32> {
        if self.is_active() {
            Some(self.plan.retry.max_rejoin_attempts)
        } else {
            None
        }
    }

    /// The fault schedule: `(index, time, start)` triples to seed into
    /// the event queue at bootstrap, in declaration order.
    pub fn schedule(&self) -> Vec<(u32, f64, bool)> {
        let mut out = Vec::with_capacity(self.plan.faults.len() * 2);
        for (i, fault) in self.plan.faults.iter().enumerate() {
            out.push((i as u32, fault.start_secs(), true));
            if let Some(end) = fault.end_secs() {
                out.push((i as u32, end, false));
            }
        }
        out
    }

    /// Whether any active window can drop transmissions (callers skip
    /// the per-transmission draw entirely when not).
    #[inline]
    pub fn drops_possible(&self) -> bool {
        self.drop_prob > 0.0
    }

    /// Whether any active window can delay transmissions.
    #[inline]
    pub fn delays_possible(&self) -> bool {
        self.delay_prob > 0.0
    }

    /// Whether any cluster is currently partitioned.
    #[inline]
    pub fn partitions_possible(&self) -> bool {
        !self.partitioned.is_empty() && self.partitioned.iter().any(|&c| c > 0)
    }

    /// One drop draw for a flood transmission. Call only while
    /// [`drops_possible`](FaultState::drops_possible).
    #[inline]
    pub fn draw_drop(&mut self) -> bool {
        self.rng.unit_f64() < self.drop_prob
    }

    /// One delay draw for a surviving transmission; returns the added
    /// latency. Call only while
    /// [`delays_possible`](FaultState::delays_possible).
    #[inline]
    pub fn draw_delay(&mut self) -> Option<f64> {
        if self.rng.unit_f64() < self.delay_prob {
            Some(self.delay_secs)
        } else {
            None
        }
    }

    /// Whether the cluster slot is inside an active partition.
    #[inline]
    pub fn is_partitioned(&self, cluster: ClusterId) -> bool {
        self.partitioned
            .get(cluster as usize)
            .is_some_and(|&c| c > 0)
    }

    /// Blocks a scenario-resolved cluster set: same depth counters as
    /// a fault-plan partition window, so the flood hot path needs no
    /// extra branch for scenario splits. The caller keeps the resolved
    /// list and releases exactly it via
    /// [`scenario_partition_end`](FaultState::scenario_partition_end).
    pub fn scenario_partition_begin(&mut self, clusters: &[ClusterId]) {
        for &slot in clusters {
            let slot = slot as usize;
            if slot >= self.partitioned.len() {
                self.partitioned.resize(slot + 1, 0);
            }
            self.partitioned[slot] += 1;
        }
    }

    /// Releases a cluster set previously blocked by
    /// [`scenario_partition_begin`](FaultState::scenario_partition_begin).
    pub fn scenario_partition_end(&mut self, clusters: &[ClusterId]) {
        for &slot in clusters {
            if let Some(c) = self.partitioned.get_mut(slot as usize) {
                *c = c.saturating_sub(1);
            }
        }
    }

    /// Applies the fault event `(index, start)` and returns what the
    /// engine must execute. `alive` is the engine's alive-cluster list
    /// in iteration order — both engines pass identical lists, so the
    /// crash and partition resolutions match.
    pub fn on_fault_event(&mut self, index: u32, start: bool, alive: &[ClusterId]) -> FaultAction {
        let i = index as usize;
        let fault = self.plan.faults[i].clone();
        match fault {
            FaultSpec::CrashCluster { cluster_index, .. } => {
                if alive.is_empty() {
                    return FaultAction::None;
                }
                FaultAction::Crash(vec![alive[cluster_index % alive.len()]])
            }
            FaultSpec::CrashFraction { fraction, .. } => {
                if alive.is_empty() {
                    return FaultAction::None;
                }
                let n = ((fraction * alive.len() as f64).round() as usize).min(alive.len());
                if n == 0 {
                    return FaultAction::None;
                }
                // Partial Fisher–Yates over a copy of the alive list,
                // driven by the fault stream: deterministic, distinct,
                // order-stable across engines.
                let mut pool: Vec<ClusterId> = alive.to_vec();
                for k in 0..n {
                    let j = k + self.rng.index(pool.len() - k);
                    pool.swap(k, j);
                }
                pool.truncate(n);
                FaultAction::Crash(pool)
            }
            FaultSpec::Partition { ref clusters, .. } => {
                if start {
                    let mut resolved = Vec::with_capacity(clusters.len());
                    if !alive.is_empty() {
                        for &ci in clusters {
                            let slot = alive[ci % alive.len()];
                            if !resolved.contains(&slot) {
                                resolved.push(slot);
                            }
                        }
                    }
                    for &slot in &resolved {
                        let slot = slot as usize;
                        if slot >= self.partitioned.len() {
                            self.partitioned.resize(slot + 1, 0);
                        }
                        self.partitioned[slot] += 1;
                    }
                    self.resolved_partitions[i] = resolved;
                } else {
                    for slot in std::mem::take(&mut self.resolved_partitions[i]) {
                        let slot = slot as usize;
                        if let Some(c) = self.partitioned.get_mut(slot) {
                            *c = c.saturating_sub(1);
                        }
                    }
                }
                FaultAction::None
            }
            FaultSpec::MessageLoss { .. }
            | FaultSpec::MessageDelay { .. }
            | FaultSpec::FlakyPartners { .. } => {
                self.windows.active[i] = start;
                self.recompute_windows();
                FaultAction::None
            }
        }
    }

    /// Re-derives the effective probabilities from the active windows.
    /// Overlapping windows compose independently
    /// (`1 − Π(1 − qᵢ)`); delays sum their added latency.
    fn recompute_windows(&mut self) {
        let mut keep_drop = 1.0;
        let mut keep_delay = 1.0;
        let mut keep_flaky = 1.0;
        let mut delay_secs = 0.0;
        for (i, fault) in self.plan.faults.iter().enumerate() {
            if !self.windows.active[i] {
                continue;
            }
            match *fault {
                FaultSpec::MessageLoss { drop_prob, .. } => keep_drop *= 1.0 - drop_prob,
                FaultSpec::MessageDelay {
                    delay_prob,
                    delay_secs: d,
                    ..
                } => {
                    keep_delay *= 1.0 - delay_prob;
                    delay_secs += d;
                }
                FaultSpec::FlakyPartners { flake_prob, .. } => keep_flaky *= 1.0 - flake_prob,
                _ => {}
            }
        }
        self.drop_prob = 1.0 - keep_drop;
        self.delay_prob = 1.0 - keep_delay;
        self.flaky_prob = 1.0 - keep_flaky;
        self.delay_secs = delay_secs;
    }

    /// Writes the *mutable* fault state into a snapshot payload. The
    /// plan itself is not written — the caller embeds it (as canonical
    /// JSON) and rebuilds via [`FaultState::new`] before calling
    /// [`FaultState::unsnap_state`]. The derived window probabilities
    /// are re-derived exactly by `recompute_windows` (a pure fold over
    /// the plan), so only the window flags travel.
    pub(crate) fn snap_state(&self, w: &mut SnapWriter) {
        let s = self.rng.state();
        for &word in &s {
            w.u64(word);
        }
        w.len(self.windows.active.len());
        for &a in &self.windows.active {
            w.bool(a);
        }
        w.len(self.partitioned.len());
        for &depth in &self.partitioned {
            w.u32(depth);
        }
        w.len(self.resolved_partitions.len());
        for set in &self.resolved_partitions {
            w.len(set.len());
            for &c in set {
                w.u32(c);
            }
        }
    }

    /// Restores the mutable state written by
    /// [`FaultState::snap_state`] into a freshly built `FaultState`
    /// (same plan, any seed — the RNG position is overwritten).
    pub(crate) fn unsnap_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = r.u64("fault rng word")?;
        }
        self.rng = SpRng::from_state(s);
        let n = r.len("fault windows len")?;
        if n != self.plan.faults.len() {
            return Err(SnapshotError::Malformed(format!(
                "snapshot has {n} fault windows but the plan has {}",
                self.plan.faults.len()
            )));
        }
        for i in 0..n {
            self.windows.active[i] = r.bool("fault window active")?;
        }
        let n = r.len("fault partitioned len")?;
        self.partitioned = Vec::with_capacity(n);
        for _ in 0..n {
            self.partitioned.push(r.u32("fault partition depth")?);
        }
        let n = r.len("fault resolved partitions len")?;
        if n != self.resolved_partitions.len() {
            return Err(SnapshotError::Malformed(format!(
                "snapshot has {n} resolved partition sets but the plan has {}",
                self.resolved_partitions.len()
            )));
        }
        for set in &mut self.resolved_partitions {
            let m = r.len("resolved partition set len")?;
            set.clear();
            set.reserve(m);
            for _ in 0..m {
                set.push(r.u32("resolved partition cluster")?);
            }
        }
        self.recompute_windows();
        Ok(())
    }

    /// Drives one client submission through timeout/retry/failover.
    ///
    /// `partners` is the size of the destination virtual super-peer.
    /// The fast path — no active loss window and no (applicable) flaky
    /// window — returns [`Submission::DIRECT`] without touching the
    /// RNG, so fault-free stretches of a run stay draw-free.
    pub fn submit_query(&mut self, partners: usize) -> Submission {
        let flaky = if partners >= 2 { self.flaky_prob } else { 0.0 };
        if self.drop_prob == 0.0 && flaky == 0.0 {
            return Submission::DIRECT;
        }
        let retry = self.plan.retry;
        let attempts = 1 + retry.max_retries;
        let mut sub = Submission::DIRECT;

        // Primary partner sequence.
        for attempt in 0..attempts {
            match self.attempt_fate(flaky) {
                AttemptFate::Ok => {
                    sub.outcome = if attempt == 0 {
                        QueryOutcome::Direct
                    } else {
                        QueryOutcome::Retry
                    };
                    return sub;
                }
                AttemptFate::Dropped => sub.primary_drops += 1,
                AttemptFate::Flaked => sub.primary_flakes += 1,
            }
            sub.wait_secs += retry.timeout_secs
                + retry.backoff_base_secs * retry.backoff_factor.powi(attempt as i32);
        }

        // Failover to the second round-robin partner, if one exists.
        if partners >= 2 {
            for attempt in 0..attempts {
                match self.attempt_fate(flaky) {
                    AttemptFate::Ok => {
                        sub.outcome = QueryOutcome::Failover;
                        return sub;
                    }
                    AttemptFate::Dropped => sub.failover_drops += 1,
                    AttemptFate::Flaked => sub.failover_flakes += 1,
                }
                sub.wait_secs += retry.timeout_secs
                    + retry.backoff_base_secs * retry.backoff_factor.powi(attempt as i32);
            }
        }

        sub.outcome = QueryOutcome::Lost;
        sub
    }

    #[inline]
    fn attempt_fate(&mut self, flaky: f64) -> AttemptFate {
        if self.drop_prob > 0.0 && self.rng.unit_f64() < self.drop_prob {
            return AttemptFate::Dropped;
        }
        if flaky > 0.0 && self.rng.unit_f64() < flaky {
            return AttemptFate::Flaked;
        }
        AttemptFate::Ok
    }
}

enum AttemptFate {
    Ok,
    Dropped,
    Flaked,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_with(faults: Vec<FaultSpec>) -> FaultPlan {
        FaultPlan {
            faults,
            retry: RetryPolicy::default(),
        }
    }

    #[test]
    fn inactive_state_is_draw_free() {
        let mut fs = FaultState::inactive();
        assert!(!fs.is_active());
        assert!(fs.rejoin_cap().is_none());
        assert!(!fs.drops_possible());
        assert!(!fs.partitions_possible());
        let sub = fs.submit_query(2);
        assert_eq!(sub, Submission::DIRECT);
        assert!(fs.schedule().is_empty());
    }

    #[test]
    fn schedule_emits_start_and_end_pairs() {
        let fs = FaultState::new(
            plan_with(vec![
                FaultSpec::CrashFraction {
                    at_secs: 10.0,
                    fraction: 0.5,
                },
                FaultSpec::MessageLoss {
                    from_secs: 5.0,
                    until_secs: 20.0,
                    drop_prob: 0.5,
                },
            ]),
            7,
        );
        assert_eq!(
            fs.schedule(),
            vec![(0, 10.0, true), (1, 5.0, true), (1, 20.0, false)]
        );
    }

    #[test]
    fn crash_fraction_picks_distinct_clusters() {
        let mut fs = FaultState::new(
            plan_with(vec![FaultSpec::CrashFraction {
                at_secs: 1.0,
                fraction: 0.5,
            }]),
            42,
        );
        let alive: Vec<ClusterId> = (0..10).collect();
        let FaultAction::Crash(victims) = fs.on_fault_event(0, true, &alive) else {
            panic!("expected crash");
        };
        assert_eq!(victims.len(), 5);
        let mut sorted = victims.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5, "victims must be distinct");
    }

    #[test]
    fn crash_picks_are_seed_deterministic() {
        let alive: Vec<ClusterId> = (0..16).collect();
        let pick = |seed| {
            let mut fs = FaultState::new(
                plan_with(vec![FaultSpec::CrashFraction {
                    at_secs: 1.0,
                    fraction: 0.25,
                }]),
                seed,
            );
            match fs.on_fault_event(0, true, &alive) {
                FaultAction::Crash(v) => v,
                other => panic!("expected crash, got {other:?}"),
            }
        };
        assert_eq!(pick(1), pick(1));
        assert_ne!(pick(1), pick(2), "fault seed must matter");
    }

    #[test]
    fn partition_window_blocks_then_releases() {
        let mut fs = FaultState::new(
            plan_with(vec![FaultSpec::Partition {
                from_secs: 0.0,
                until_secs: 10.0,
                clusters: vec![1, 3],
            }]),
            0,
        );
        let alive: Vec<ClusterId> = vec![10, 11, 12, 13];
        assert_eq!(fs.on_fault_event(0, true, &alive), FaultAction::None);
        assert!(fs.partitions_possible());
        assert!(fs.is_partitioned(11));
        assert!(fs.is_partitioned(13));
        assert!(!fs.is_partitioned(10));
        assert_eq!(fs.on_fault_event(0, false, &alive), FaultAction::None);
        assert!(!fs.is_partitioned(11));
        assert!(!fs.partitions_possible());
    }

    #[test]
    fn loss_window_toggles_drop_probability() {
        let mut fs = FaultState::new(
            plan_with(vec![FaultSpec::MessageLoss {
                from_secs: 0.0,
                until_secs: 10.0,
                drop_prob: 1.0,
            }]),
            0,
        );
        assert!(!fs.drops_possible());
        fs.on_fault_event(0, true, &[]);
        assert!(fs.drops_possible());
        assert!(fs.draw_drop(), "q=1 must always drop");
        fs.on_fault_event(0, false, &[]);
        assert!(!fs.drops_possible());
    }

    #[test]
    fn certain_loss_exhausts_retry_then_failover() {
        let mut fs = FaultState::new(
            plan_with(vec![FaultSpec::MessageLoss {
                from_secs: 0.0,
                until_secs: 10.0,
                drop_prob: 1.0,
            }]),
            0,
        );
        fs.on_fault_event(0, true, &[]);
        let k1 = fs.submit_query(1);
        assert_eq!(k1.outcome, QueryOutcome::Lost);
        assert_eq!(k1.primary_drops, 1 + RetryPolicy::default().max_retries);
        assert_eq!(k1.failover_drops, 0, "no failover without a second partner");
        let k2 = fs.submit_query(2);
        assert_eq!(k2.outcome, QueryOutcome::Lost);
        assert!(k2.failover_drops > 0);
        assert!(k2.wait_secs > k1.wait_secs);
    }

    #[test]
    fn flaky_partner_forces_failover_for_k2_only() {
        let mut fs = FaultState::new(
            plan_with(vec![FaultSpec::FlakyPartners {
                from_secs: 0.0,
                until_secs: 10.0,
                flake_prob: 1.0,
            }]),
            0,
        );
        fs.on_fault_event(0, true, &[]);
        // k=1 clusters have no redundancy to be flaky about.
        assert_eq!(fs.submit_query(1), Submission::DIRECT);
        // k=2: with flake_prob 1 every attempt on both partners flakes.
        let sub = fs.submit_query(2);
        assert_eq!(sub.outcome, QueryOutcome::Lost);
        assert!(sub.primary_flakes > 0 && sub.failover_flakes > 0);
    }

    #[test]
    fn submission_metrics_conserve() {
        let mut fm = FaultMetrics::default();
        let mut fs = FaultState::new(
            plan_with(vec![FaultSpec::MessageLoss {
                from_secs: 0.0,
                until_secs: 10.0,
                drop_prob: 0.4,
            }]),
            9,
        );
        fs.on_fault_event(0, true, &[]);
        for _ in 0..500 {
            let sub = fs.submit_query(2);
            fm.record_submission(&sub);
        }
        assert_eq!(fm.queries_issued, 500);
        assert!(fm.conserved());
        assert!(fm.answered_direct > 0);
        assert!(fm.recovered_retry > 0, "q=0.4 should force some retries");
    }

    #[test]
    fn reconnect_histogram_buckets_by_log2() {
        let mut h = ReconnectHistogram::default();
        for secs in [0.0, 0.5, 1.0, 3.0, 1024.0] {
            h.record(secs);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.buckets()[0], 3, "sub-2s reconnects share bucket 0");
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[10], 1);
        assert_eq!(h.max_secs(), 1024.0);
        assert!(h.mean_secs() > 0.0);
    }

    #[test]
    fn overlapping_loss_windows_compose() {
        let mut fs = FaultState::new(
            plan_with(vec![
                FaultSpec::MessageLoss {
                    from_secs: 0.0,
                    until_secs: 10.0,
                    drop_prob: 0.5,
                },
                FaultSpec::MessageLoss {
                    from_secs: 0.0,
                    until_secs: 10.0,
                    drop_prob: 0.5,
                },
            ]),
            0,
        );
        fs.on_fault_event(0, true, &[]);
        fs.on_fault_event(1, true, &[]);
        assert!((fs.drop_prob - 0.75).abs() < 1e-12);
        fs.on_fault_event(0, false, &[]);
        assert!((fs.drop_prob - 0.5).abs() < 1e-12);
    }
}
