//! Overlay self-healing: repair bookkeeping shared by both engines.
//!
//! When fault injection kills every partner of a cluster and the run's
//! [`RepairPolicy`](sp_model::repair::RepairPolicy) promotes, the
//! cluster does not dissolve. It enters a *headless window*: clients
//! stay attached (their queries go unanswered and are charged as
//! lost), the overlay edges stay up, and an
//! [`Event::Repair`](crate::events::Event::Repair) is scheduled a
//! short, deterministic delay later — the simulated cost of detecting
//! the outage and running the Section 5.3 election. At repair time the
//! clients elect a replacement super-peer: the highest-capacity
//! eligible client (most files shared, ties broken by lowest peer id —
//! a pure function of cluster state, no RNG draw, identical in both
//! engines). The winner is promoted in place, so it *inherits the dead
//! super-peer's neighbor links* (they belong to the cluster slot), and
//! re-indexes every adopted client at the paper's per-metadata join
//! cost (Table 2). Under
//! [`RepairPolicy::PromotePartner`](sp_model::repair::RepairPolicy::PromotePartner)
//! the repaired cluster then recruits a replacement partner through
//! the ordinary recruitment machinery, paying the full
//! index-mirroring cost, to restore k-redundancy.
//!
//! Everything observable lives in [`RepairMetrics`], which is embedded
//! in `RawMetrics` so the engine-equivalence tests cover repair
//! bitwise. The reachability timeline is fed by the
//! `sp_graph::PartitionMonitor` union-find, observed at every sample
//! tick and immediately after every crash fault (the dip a 120-second
//! sampling grid would miss).

use crate::events::SimTime;
use crate::faults::ReconnectHistogram;

/// One observation of super-peer overlay connectivity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReachPoint {
    /// Simulated time of the observation, seconds.
    pub time: SimTime,
    /// Connected components of the live super-peer graph.
    pub components: u32,
    /// Fraction of live peers inside the largest component, in
    /// `[0, 1]` (1.0 when the network is empty).
    pub reachable_fraction: f64,
}

/// Self-healing counters, embedded in `RawMetrics` so the
/// engine-equivalence checks cover them bitwise.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RepairMetrics {
    /// Clients elected and promoted to replacement super-peers.
    pub promotions: u64,
    /// Replacement partners recruited by repaired clusters
    /// (`promote+partner` only).
    pub partner_recruitments: u64,
    /// Adopted clients re-indexed by promoted super-peers.
    pub reindexed_clients: u64,
    /// Metadata bytes transferred by repair re-indexing.
    pub reindex_bytes: f64,
    /// Headless clusters whose clients all left before the repair
    /// event fired (the cluster dissolves like an unrepaired failure).
    pub abandoned: u64,
    /// Client queries issued during a headless window (charged as
    /// lost — there is no super-peer to answer them).
    pub queries_during_outage: u64,
    /// Time from super-peer death to completed election, per repair.
    pub time_to_repair: ReconnectHistogram,
    /// Connectivity timeline: sample ticks, post-crash probes, and the
    /// final state at simulation end.
    pub reachability: Vec<ReachPoint>,
    /// Super-peer graph components at simulation end.
    pub final_components: u32,
    /// Largest-component peer fraction at simulation end.
    pub final_reachable_fraction: f64,
}

impl RepairMetrics {
    /// Smallest reachable fraction observed at or after `from_secs`
    /// (1.0 when no observation qualifies — an empty network is
    /// trivially whole).
    pub fn min_reachable_since(&self, from_secs: f64) -> f64 {
        self.reachability
            .iter()
            .filter(|p| p.time >= from_secs)
            .map(|p| p.reachable_fraction)
            .fold(1.0, f64::min)
    }

    /// Largest live component count observed over the whole run (0
    /// when nothing was observed).
    pub fn max_components(&self) -> u32 {
        self.reachability
            .iter()
            .map(|p| p.components)
            .max()
            .unwrap_or(0)
    }
}

/// Per-cluster-slot headless-window bookkeeping. Both engines keep a
/// `Vec<RepairPending>` parallel to the cluster slab; the slot is
/// `active` from the moment the last partner dies to the moment the
/// repair election runs (or the last client leaves).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RepairPending {
    /// Whether this cluster slot is currently headless awaiting
    /// repair.
    pub active: bool,
    /// When the last partner died (for the time-to-repair histogram).
    pub down_since: SimTime,
    /// Whether an adaptation tick was swallowed during the headless
    /// window and must be rescheduled after repair.
    pub adapt_stalled: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_reachable_ignores_earlier_points() {
        let mut m = RepairMetrics::default();
        m.reachability.push(ReachPoint {
            time: 10.0,
            components: 1,
            reachable_fraction: 0.2,
        });
        m.reachability.push(ReachPoint {
            time: 50.0,
            components: 2,
            reachable_fraction: 0.8,
        });
        m.reachability.push(ReachPoint {
            time: 90.0,
            components: 1,
            reachable_fraction: 0.95,
        });
        assert_eq!(m.min_reachable_since(0.0), 0.2);
        assert_eq!(m.min_reachable_since(40.0), 0.8);
        assert_eq!(m.min_reachable_since(100.0), 1.0, "no points → whole");
        assert_eq!(m.max_components(), 2);
    }

    #[test]
    fn default_is_empty_and_equal() {
        assert_eq!(RepairMetrics::default(), RepairMetrics::default());
        assert_eq!(RepairMetrics::default().max_components(), 0);
        assert_eq!(RepairPending::default(), RepairPending::default());
        assert!(!RepairPending::default().active);
    }
}
