//! Event queues: time-ordered heaps with stable FIFO tie-breaking.
//!
//! Two implementations share one ordering contract (earliest time
//! first, ties broken by schedule order):
//!
//! * [`BinaryEventQueue`] — the original `std::collections::BinaryHeap`
//!   wrapper. It cannot cancel: events for peers that have since left
//!   stay in the heap as *tombstones* until their time comes up, and
//!   are dropped at dispatch by a generation check. Kept as the
//!   baseline for the [`reference`](crate::reference) engine and the
//!   queue-equivalence tests.
//! * [`IndexedEventQueue`] — an indexed binary heap over a slab of
//!   event entries. [`schedule`](IndexedEventQueue::schedule) returns
//!   an [`EventHandle`] that can later
//!   [`cancel`](IndexedEventQueue::cancel) the event in O(log n), so
//!   churn removes a departed peer's pending events instead of leaving
//!   tombstones. Handles are generation-guarded: cancelling an event
//!   that already fired (or whose slab slot was reused) is a safe
//!   no-op, never a double-delivery or a misfire.
//!
//! Both queues pop in exactly the same order for the same schedule
//! sequence (enforced by `tests/queue_equivalence.rs`), which is what
//! lets the fast engine reproduce the reference engine bit for bit.
//!
//! Events reference peers and clusters by slot id plus a *generation*
//! counter; slots are reused after churn, so a handler first checks the
//! generation and silently drops stale events (e.g. a query scheduled
//! for a peer that has since left).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulated time, in seconds.
pub type SimTime = f64;

/// Peer slot id.
pub type PeerId = u32;

/// Cluster slot id.
pub type ClusterId = u32;

/// Everything that can happen in the simulated network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A brand-new peer arrives (attributes sampled at handling time).
    PeerJoin,
    /// A peer's session ends.
    PeerLeave {
        /// The departing peer.
        peer: PeerId,
        /// Generation guard.
        generation: u32,
    },
    /// A peer submits a query.
    Query {
        /// The querying peer.
        peer: PeerId,
        /// Generation guard.
        generation: u32,
    },
    /// A peer updates its collection.
    Update {
        /// The updating peer.
        peer: PeerId,
        /// Generation guard.
        generation: u32,
    },
    /// An orphaned client retries connecting to the network.
    ClientRejoin {
        /// The orphaned peer.
        peer: PeerId,
        /// Generation guard.
        generation: u32,
        /// When the client lost its super-peer (for downtime
        /// accounting).
        orphaned_at: SimTime,
        /// Connection-protocol attempts already made. When a fault
        /// plan's retry policy caps rejoin attempts, exceeding the cap
        /// makes the client give up for good.
        attempt: u32,
    },
    /// A cluster that lost a partner tries to recruit a replacement
    /// from its clients.
    RecruitPartner {
        /// The recruiting cluster.
        cluster: ClusterId,
        /// Generation guard.
        generation: u32,
    },
    /// A super-peer evaluates the Section 5.3 local rules.
    AdaptTick {
        /// The adapting cluster.
        cluster: ClusterId,
        /// Generation guard.
        generation: u32,
    },
    /// A headless cluster (every partner killed by fault injection)
    /// runs the repair election: its clients elect a replacement
    /// super-peer which inherits the overlay links and re-indexes the
    /// adopted clients. Only scheduled when the run's
    /// [`RepairPolicy`](sp_model::repair::RepairPolicy) promotes.
    Repair {
        /// The headless cluster awaiting repair.
        cluster: ClusterId,
        /// Generation guard.
        generation: u32,
    },
    /// Periodic metrics sampling.
    Sample,
    /// A fault-plan entry takes effect (`start: true`) or a windowed
    /// fault expires (`start: false`). `index` addresses the plan's
    /// fault list; fault events carry no generation guard because the
    /// plan outlives every peer.
    Fault {
        /// Index into the run's `FaultPlan::faults`.
        index: u32,
        /// Window start (or instantaneous injection) vs. window end.
        start: bool,
    },
    /// A scenario phase opens (`start: true`) or closes
    /// (`start: false`). `index` addresses the scenario plan's phase
    /// list; like fault events, phase events carry no generation guard
    /// because the plan outlives every peer.
    Phase {
        /// Index into the run's `ScenarioPlan::phases`.
        index: u32,
        /// Window start vs. window end.
        start: bool,
    },
}

#[derive(Debug, Clone, Copy)]
struct Scheduled {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want the
        // earliest event first; ties break FIFO by sequence number.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Time-ordered event queue without cancellation (the original
/// implementation; see the module docs for the trade-off).
#[derive(Debug, Default)]
pub struct BinaryEventQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
}

impl BinaryEventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN.
    pub fn schedule(&mut self, time: SimTime, event: Event) {
        assert!(!time.is_nan(), "cannot schedule at NaN");
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Handle to a scheduled event in an [`IndexedEventQueue`].
///
/// Generation-guarded: once the event fires or is cancelled, the
/// handle goes stale and further [`cancel`](IndexedEventQueue::cancel)
/// calls through it are no-ops — even if the underlying slab slot has
/// been reused for a different event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventHandle {
    idx: u32,
    generation: u32,
}

impl EventHandle {
    /// The null handle: cancels to a no-op, compares unequal to any
    /// live handle. Slot maps start out full of these.
    pub const NULL: EventHandle = EventHandle {
        idx: u32::MAX,
        generation: 0,
    };

    /// Whether this is the null handle.
    pub fn is_null(&self) -> bool {
        self.idx == u32::MAX
    }
}

impl Default for EventHandle {
    fn default() -> Self {
        EventHandle::NULL
    }
}

/// One slab entry. `pos == FREE` marks a vacant slot awaiting reuse.
#[derive(Debug, Clone, Copy)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
    generation: u32,
    pos: u32,
}

const FREE: u32 = u32::MAX;

/// Indexed binary heap with O(log n) cancellation.
///
/// Entries live in a slab (recycled through a free list, so steady
/// state allocates nothing); the heap stores slab indices and every
/// entry tracks its heap position, so removal from the middle is a
/// swap-with-last plus one sift. Pop order is identical to
/// [`BinaryEventQueue`]: earliest time first, FIFO on ties.
///
/// Generic over the event payload so every engine can reuse the same
/// scheduling machinery: the churn engines instantiate it with
/// [`Event`] (the default), the sharded scale engine with its own
/// per-shard event type.
#[derive(Debug)]
pub struct IndexedEventQueue<E = Event> {
    entries: Vec<Entry<E>>,
    free: Vec<u32>,
    heap: Vec<u32>,
    seq: u64,
    high_water: usize,
}

impl<E> Default for IndexedEventQueue<E> {
    fn default() -> Self {
        IndexedEventQueue {
            entries: Vec::new(),
            free: Vec::new(),
            heap: Vec::new(),
            seq: 0,
            high_water: 0,
        }
    }
}

impl<E: Copy> IndexedEventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at absolute time `time`; the returned handle
    /// can cancel it until it fires.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN.
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventHandle {
        assert!(!time.is_nan(), "cannot schedule at NaN");
        let seq = self.seq;
        self.seq += 1;
        let idx = match self.free.pop() {
            Some(idx) => {
                let e = &mut self.entries[idx as usize];
                e.time = time;
                e.seq = seq;
                e.event = event;
                idx
            }
            None => {
                let idx = self.entries.len() as u32;
                self.entries.push(Entry {
                    time,
                    seq,
                    event,
                    generation: 0,
                    pos: FREE,
                });
                idx
            }
        };
        let pos = self.heap.len() as u32;
        self.heap.push(idx);
        self.entries[idx as usize].pos = pos;
        self.sift_up(pos as usize);
        self.high_water = self.high_water.max(self.heap.len());
        EventHandle {
            idx,
            generation: self.entries[idx as usize].generation,
        }
    }

    /// Cancels a pending event. Returns whether anything was removed:
    /// `false` for the null handle, an event that already fired, or a
    /// handle from a previous occupant of a reused slot.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if handle.is_null() {
            return false;
        }
        let Some(e) = self.entries.get(handle.idx as usize) else {
            return false;
        };
        if e.generation != handle.generation || e.pos == FREE {
            return false;
        }
        let pos = e.pos as usize;
        self.remove_at(pos);
        self.release(handle.idx);
        true
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.heap.is_empty() {
            return None;
        }
        let idx = self.heap[0];
        self.remove_at(0);
        let e = self.entries[idx as usize];
        self.release(idx);
        Some((e.time, e.event))
    }

    /// The timestamp of the earliest pending event, if any. Tick-based
    /// engines use this to drain exactly the events due in the current
    /// tick without popping ahead.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap
            .first()
            .map(|&idx| self.entries[idx as usize].time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Largest number of simultaneously pending events ever observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    fn release(&mut self, idx: u32) {
        let e = &mut self.entries[idx as usize];
        e.pos = FREE;
        e.generation = e.generation.wrapping_add(1);
        self.free.push(idx);
    }

    /// Earlier-than comparison between heap slots.
    #[inline]
    fn before(&self, a: u32, b: u32) -> bool {
        let (ea, eb) = (&self.entries[a as usize], &self.entries[b as usize]);
        match ea.time.total_cmp(&eb.time) {
            Ordering::Less => true,
            Ordering::Greater => false,
            Ordering::Equal => ea.seq < eb.seq,
        }
    }

    fn remove_at(&mut self, pos: usize) {
        let last = self.heap.len() - 1;
        self.heap.swap(pos, last);
        self.entries[self.heap[pos] as usize].pos = pos as u32;
        self.heap.pop();
        if pos < self.heap.len() {
            // The moved element may violate either direction.
            let pos = self.sift_down(pos);
            self.sift_up(pos);
        }
    }

    fn sift_up(&mut self, mut pos: usize) -> usize {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if self.before(self.heap[pos], self.heap[parent]) {
                self.heap.swap(pos, parent);
                self.entries[self.heap[pos] as usize].pos = pos as u32;
                self.entries[self.heap[parent] as usize].pos = parent as u32;
                pos = parent;
            } else {
                break;
            }
        }
        pos
    }

    fn sift_down(&mut self, mut pos: usize) -> usize {
        loop {
            let (l, r) = (2 * pos + 1, 2 * pos + 2);
            let mut best = pos;
            if l < self.heap.len() && self.before(self.heap[l], self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && self.before(self.heap[r], self.heap[best]) {
                best = r;
            }
            if best == pos {
                return pos;
            }
            self.heap.swap(pos, best);
            self.entries[self.heap[pos] as usize].pos = pos as u32;
            self.entries[self.heap[best] as usize].pos = best as u32;
            pos = best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_pops_in_time_order() {
        let mut q = BinaryEventQueue::new();
        q.schedule(5.0, Event::Sample);
        q.schedule(1.0, Event::PeerJoin);
        q.schedule(3.0, Event::Sample);
        let times: Vec<f64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(times, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn binary_ties_break_fifo() {
        let mut q = BinaryEventQueue::new();
        q.schedule(2.0, Event::PeerJoin);
        q.schedule(
            2.0,
            Event::PeerLeave {
                peer: 7,
                generation: 0,
            },
        );
        assert_eq!(q.pop().unwrap().1, Event::PeerJoin);
        assert!(matches!(
            q.pop().unwrap().1,
            Event::PeerLeave { peer: 7, .. }
        ));
    }

    #[test]
    fn binary_len_tracks_contents() {
        let mut q = BinaryEventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, Event::Sample);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn binary_nan_time_panics() {
        BinaryEventQueue::new().schedule(f64::NAN, Event::Sample);
    }

    #[test]
    fn indexed_pops_in_time_order() {
        let mut q = IndexedEventQueue::new();
        q.schedule(5.0, Event::Sample);
        q.schedule(1.0, Event::PeerJoin);
        q.schedule(3.0, Event::Sample);
        let times: Vec<f64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(times, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn indexed_ties_break_fifo() {
        let mut q = IndexedEventQueue::new();
        for peer in 0..8 {
            q.schedule(
                2.0,
                Event::Query {
                    peer,
                    generation: 0,
                },
            );
        }
        for expect in 0..8 {
            assert!(matches!(
                q.pop().unwrap().1,
                Event::Query { peer, .. } if peer == expect
            ));
        }
    }

    #[test]
    fn indexed_cancel_removes_event() {
        let mut q = IndexedEventQueue::new();
        let a = q.schedule(1.0, Event::PeerJoin);
        let b = q.schedule(2.0, Event::Sample);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "second cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, Event::Sample);
        assert!(!q.cancel(b), "cancel after fire is a no-op");
        assert!(q.pop().is_none());
    }

    #[test]
    fn indexed_stale_handle_never_cancels_reused_slot() {
        let mut q = IndexedEventQueue::new();
        let a = q.schedule(1.0, Event::PeerJoin);
        q.pop();
        // The slab slot is recycled for a fresh event.
        let b = q.schedule(2.0, Event::Sample);
        assert!(!q.cancel(a), "stale handle must not hit the new event");
        assert_eq!(q.len(), 1);
        assert!(q.cancel(b));
    }

    #[test]
    fn indexed_null_handle_is_inert() {
        let mut q = IndexedEventQueue::<Event>::new();
        assert!(EventHandle::NULL.is_null());
        assert!(EventHandle::default().is_null());
        assert!(!q.cancel(EventHandle::NULL));
    }

    #[test]
    fn indexed_high_water_tracks_max_depth() {
        let mut q = IndexedEventQueue::new();
        q.schedule(1.0, Event::Sample);
        q.schedule(2.0, Event::Sample);
        q.pop();
        q.schedule(3.0, Event::Sample);
        assert_eq!(q.high_water(), 2);
        q.schedule(4.0, Event::Sample);
        q.schedule(5.0, Event::Sample);
        // 1 remaining after the pop + 3 scheduled since = depth 4.
        assert_eq!(q.high_water(), 4);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn indexed_nan_time_panics() {
        IndexedEventQueue::new().schedule(f64::NAN, Event::Sample);
    }

    #[test]
    fn indexed_peek_time_is_nondestructive() {
        let mut q = IndexedEventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(4.0, Event::Sample);
        q.schedule(2.0, Event::PeerJoin);
        assert_eq!(q.peek_time(), Some(2.0));
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.peek_time(), Some(4.0));
    }

    #[test]
    fn indexed_queue_is_generic_over_payload() {
        // The scale engine instantiates the queue with its own event
        // type; any Copy payload must work with the same ordering and
        // cancellation semantics.
        let mut q: IndexedEventQueue<u32> = IndexedEventQueue::new();
        let a = q.schedule(3.0, 30);
        q.schedule(1.0, 10);
        q.schedule(2.0, 20);
        assert!(q.cancel(a));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![10, 20]);
    }
}
