//! Event queues: time-ordered heaps with stable FIFO tie-breaking.
//!
//! Two implementations share one ordering contract (earliest time
//! first, ties broken by schedule order):
//!
//! * [`BinaryEventQueue`] — the original `std::collections::BinaryHeap`
//!   wrapper. It cannot cancel: events for peers that have since left
//!   stay in the heap as *tombstones* until their time comes up, and
//!   are dropped at dispatch by a generation check. Kept as the
//!   baseline for the [`reference`](crate::reference) engine and the
//!   queue-equivalence tests.
//! * [`IndexedEventQueue`] — an indexed binary heap over a slab of
//!   event entries. [`schedule`](IndexedEventQueue::schedule) returns
//!   an [`EventHandle`] that can later
//!   [`cancel`](IndexedEventQueue::cancel) the event in O(log n), so
//!   churn removes a departed peer's pending events instead of leaving
//!   tombstones. Handles are generation-guarded: cancelling an event
//!   that already fired (or whose slab slot was reused) is a safe
//!   no-op, never a double-delivery or a misfire.
//!
//! Both queues pop in exactly the same order for the same schedule
//! sequence (enforced by `tests/queue_equivalence.rs`), which is what
//! lets the fast engine reproduce the reference engine bit for bit.
//!
//! Events reference peers and clusters by slot id plus a *generation*
//! counter; slots are reused after churn, so a handler first checks the
//! generation and silently drops stale events (e.g. a query scheduled
//! for a peer that has since left).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use sp_model::snapshot::{SnapReader, SnapWriter, SnapshotError};

/// Simulated time, in seconds.
pub type SimTime = f64;

/// Peer slot id.
pub type PeerId = u32;

/// Cluster slot id.
pub type ClusterId = u32;

/// Everything that can happen in the simulated network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A brand-new peer arrives (attributes sampled at handling time).
    PeerJoin,
    /// A peer's session ends.
    PeerLeave {
        /// The departing peer.
        peer: PeerId,
        /// Generation guard.
        generation: u32,
    },
    /// A peer submits a query.
    Query {
        /// The querying peer.
        peer: PeerId,
        /// Generation guard.
        generation: u32,
    },
    /// A peer updates its collection.
    Update {
        /// The updating peer.
        peer: PeerId,
        /// Generation guard.
        generation: u32,
    },
    /// An orphaned client retries connecting to the network.
    ClientRejoin {
        /// The orphaned peer.
        peer: PeerId,
        /// Generation guard.
        generation: u32,
        /// When the client lost its super-peer (for downtime
        /// accounting).
        orphaned_at: SimTime,
        /// Connection-protocol attempts already made. When a fault
        /// plan's retry policy caps rejoin attempts, exceeding the cap
        /// makes the client give up for good.
        attempt: u32,
    },
    /// A cluster that lost a partner tries to recruit a replacement
    /// from its clients.
    RecruitPartner {
        /// The recruiting cluster.
        cluster: ClusterId,
        /// Generation guard.
        generation: u32,
    },
    /// A super-peer evaluates the Section 5.3 local rules.
    AdaptTick {
        /// The adapting cluster.
        cluster: ClusterId,
        /// Generation guard.
        generation: u32,
    },
    /// A headless cluster (every partner killed by fault injection)
    /// runs the repair election: its clients elect a replacement
    /// super-peer which inherits the overlay links and re-indexes the
    /// adopted clients. Only scheduled when the run's
    /// [`RepairPolicy`](sp_model::repair::RepairPolicy) promotes.
    Repair {
        /// The headless cluster awaiting repair.
        cluster: ClusterId,
        /// Generation guard.
        generation: u32,
    },
    /// Periodic metrics sampling.
    Sample,
    /// A fault-plan entry takes effect (`start: true`) or a windowed
    /// fault expires (`start: false`). `index` addresses the plan's
    /// fault list; fault events carry no generation guard because the
    /// plan outlives every peer.
    Fault {
        /// Index into the run's `FaultPlan::faults`.
        index: u32,
        /// Window start (or instantaneous injection) vs. window end.
        start: bool,
    },
    /// A scenario phase opens (`start: true`) or closes
    /// (`start: false`). `index` addresses the scenario plan's phase
    /// list; like fault events, phase events carry no generation guard
    /// because the plan outlives every peer.
    Phase {
        /// Index into the run's `ScenarioPlan::phases`.
        index: u32,
        /// Window start vs. window end.
        start: bool,
    },
}

impl Event {
    /// Writes this event into a snapshot payload (tag byte + fields).
    pub(crate) fn snap(&self, w: &mut SnapWriter) {
        match *self {
            Event::PeerJoin => w.u8(0),
            Event::PeerLeave { peer, generation } => {
                w.u8(1);
                w.u32(peer);
                w.u32(generation);
            }
            Event::Query { peer, generation } => {
                w.u8(2);
                w.u32(peer);
                w.u32(generation);
            }
            Event::Update { peer, generation } => {
                w.u8(3);
                w.u32(peer);
                w.u32(generation);
            }
            Event::ClientRejoin {
                peer,
                generation,
                orphaned_at,
                attempt,
            } => {
                w.u8(4);
                w.u32(peer);
                w.u32(generation);
                w.f64(orphaned_at);
                w.u32(attempt);
            }
            Event::RecruitPartner {
                cluster,
                generation,
            } => {
                w.u8(5);
                w.u32(cluster);
                w.u32(generation);
            }
            Event::AdaptTick {
                cluster,
                generation,
            } => {
                w.u8(6);
                w.u32(cluster);
                w.u32(generation);
            }
            Event::Repair {
                cluster,
                generation,
            } => {
                w.u8(7);
                w.u32(cluster);
                w.u32(generation);
            }
            Event::Sample => w.u8(8),
            Event::Fault { index, start } => {
                w.u8(9);
                w.u32(index);
                w.bool(start);
            }
            Event::Phase { index, start } => {
                w.u8(10);
                w.u32(index);
                w.bool(start);
            }
        }
    }

    /// Reads one event written by [`Event::snap`].
    pub(crate) fn unsnap(r: &mut SnapReader<'_>) -> Result<Event, SnapshotError> {
        Ok(match r.u8("event tag")? {
            0 => Event::PeerJoin,
            1 => Event::PeerLeave {
                peer: r.u32("event peer")?,
                generation: r.u32("event generation")?,
            },
            2 => Event::Query {
                peer: r.u32("event peer")?,
                generation: r.u32("event generation")?,
            },
            3 => Event::Update {
                peer: r.u32("event peer")?,
                generation: r.u32("event generation")?,
            },
            4 => Event::ClientRejoin {
                peer: r.u32("event peer")?,
                generation: r.u32("event generation")?,
                orphaned_at: r.f64("event orphaned_at")?,
                attempt: r.u32("event attempt")?,
            },
            5 => Event::RecruitPartner {
                cluster: r.u32("event cluster")?,
                generation: r.u32("event generation")?,
            },
            6 => Event::AdaptTick {
                cluster: r.u32("event cluster")?,
                generation: r.u32("event generation")?,
            },
            7 => Event::Repair {
                cluster: r.u32("event cluster")?,
                generation: r.u32("event generation")?,
            },
            8 => Event::Sample,
            9 => Event::Fault {
                index: r.u32("event index")?,
                start: r.bool("event start")?,
            },
            10 => Event::Phase {
                index: r.u32("event index")?,
                start: r.bool("event start")?,
            },
            tag => return Err(SnapshotError::Malformed(format!("unknown event tag {tag}"))),
        })
    }
}

#[derive(Debug, Clone, Copy)]
struct Scheduled {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want the
        // earliest event first; ties break FIFO by sequence number.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Time-ordered event queue without cancellation (the original
/// implementation; see the module docs for the trade-off).
#[derive(Debug, Default)]
pub struct BinaryEventQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
}

impl BinaryEventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN.
    pub fn schedule(&mut self, time: SimTime, event: Event) {
        assert!(!time.is_nan(), "cannot schedule at NaN");
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Writes the queue into a snapshot payload. The heap's internal
    /// `Vec` order is implementation-defined but pop order is totally
    /// ordered by `(time, seq)`, so rebuilding by re-pushing the
    /// serialized triples reproduces the exact pop sequence.
    pub(crate) fn snap(&self, w: &mut SnapWriter) {
        w.len(self.heap.len());
        for s in self.heap.iter() {
            w.f64(s.time);
            w.u64(s.seq);
            s.event.snap(w);
        }
        w.u64(self.seq);
    }

    /// Reads a queue written by [`BinaryEventQueue::snap`].
    pub(crate) fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let n = r.len("binary queue len")?;
        let mut heap = BinaryHeap::with_capacity(n);
        for _ in 0..n {
            let time = r.f64("scheduled time")?;
            let seq = r.u64("scheduled seq")?;
            let event = Event::unsnap(r)?;
            heap.push(Scheduled { time, seq, event });
        }
        let seq = r.u64("binary queue seq")?;
        Ok(BinaryEventQueue { heap, seq })
    }
}

/// Handle to a scheduled event in an [`IndexedEventQueue`].
///
/// Generation-guarded: once the event fires or is cancelled, the
/// handle goes stale and further [`cancel`](IndexedEventQueue::cancel)
/// calls through it are no-ops — even if the underlying slab slot has
/// been reused for a different event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventHandle {
    idx: u32,
    generation: u32,
}

impl EventHandle {
    /// The null handle: cancels to a no-op, compares unequal to any
    /// live handle. Slot maps start out full of these.
    pub const NULL: EventHandle = EventHandle {
        idx: u32::MAX,
        generation: 0,
    };

    /// Whether this is the null handle.
    pub fn is_null(&self) -> bool {
        self.idx == u32::MAX
    }

    /// Writes the handle into a snapshot payload.
    pub(crate) fn snap(&self, w: &mut SnapWriter) {
        w.u32(self.idx);
        w.u32(self.generation);
    }

    /// Reads a handle written by [`EventHandle::snap`].
    pub(crate) fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(EventHandle {
            idx: r.u32("handle idx")?,
            generation: r.u32("handle generation")?,
        })
    }
}

impl Default for EventHandle {
    fn default() -> Self {
        EventHandle::NULL
    }
}

/// One slab entry. `pos == FREE` marks a vacant slot awaiting reuse.
#[derive(Debug, Clone, Copy)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
    generation: u32,
    pos: u32,
}

const FREE: u32 = u32::MAX;

/// Indexed binary heap with O(log n) cancellation.
///
/// Entries live in a slab (recycled through a free list, so steady
/// state allocates nothing); the heap stores slab indices and every
/// entry tracks its heap position, so removal from the middle is a
/// swap-with-last plus one sift. Pop order is identical to
/// [`BinaryEventQueue`]: earliest time first, FIFO on ties.
///
/// Generic over the event payload so every engine can reuse the same
/// scheduling machinery: the churn engines instantiate it with
/// [`Event`] (the default), the sharded scale engine with its own
/// per-shard event type.
#[derive(Debug)]
pub struct IndexedEventQueue<E = Event> {
    entries: Vec<Entry<E>>,
    free: Vec<u32>,
    heap: Vec<u32>,
    seq: u64,
    high_water: usize,
}

impl<E> Default for IndexedEventQueue<E> {
    fn default() -> Self {
        IndexedEventQueue {
            entries: Vec::new(),
            free: Vec::new(),
            heap: Vec::new(),
            seq: 0,
            high_water: 0,
        }
    }
}

impl<E: Copy> IndexedEventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at absolute time `time`; the returned handle
    /// can cancel it until it fires.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN.
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventHandle {
        assert!(!time.is_nan(), "cannot schedule at NaN");
        let seq = self.seq;
        self.seq += 1;
        let idx = match self.free.pop() {
            Some(idx) => {
                let e = &mut self.entries[idx as usize];
                e.time = time;
                e.seq = seq;
                e.event = event;
                idx
            }
            None => {
                let idx = self.entries.len() as u32;
                self.entries.push(Entry {
                    time,
                    seq,
                    event,
                    generation: 0,
                    pos: FREE,
                });
                idx
            }
        };
        let pos = self.heap.len() as u32;
        self.heap.push(idx);
        self.entries[idx as usize].pos = pos;
        self.sift_up(pos as usize);
        self.high_water = self.high_water.max(self.heap.len());
        EventHandle {
            idx,
            generation: self.entries[idx as usize].generation,
        }
    }

    /// Cancels a pending event. Returns whether anything was removed:
    /// `false` for the null handle, an event that already fired, or a
    /// handle from a previous occupant of a reused slot.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if handle.is_null() {
            return false;
        }
        let Some(e) = self.entries.get(handle.idx as usize) else {
            return false;
        };
        if e.generation != handle.generation || e.pos == FREE {
            return false;
        }
        let pos = e.pos as usize;
        self.remove_at(pos);
        self.release(handle.idx);
        true
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.heap.is_empty() {
            return None;
        }
        let idx = self.heap[0];
        self.remove_at(0);
        let e = self.entries[idx as usize];
        self.release(idx);
        Some((e.time, e.event))
    }

    /// The timestamp of the earliest pending event, if any. Tick-based
    /// engines use this to drain exactly the events due in the current
    /// tick without popping ahead.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap
            .first()
            .map(|&idx| self.entries[idx as usize].time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Largest number of simultaneously pending events ever observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Writes the queue into a snapshot payload **verbatim** — slab
    /// entries (including vacant ones), free-list order, heap layout,
    /// and counters. The free-list order governs which slab slot the
    /// next `schedule` reuses (and therefore which handle it returns),
    /// so a structural re-push rebuild would diverge; only a verbatim
    /// copy keeps a restored run bitwise identical.
    pub(crate) fn snap(&self, w: &mut SnapWriter, enc: impl Fn(&E, &mut SnapWriter)) {
        w.len(self.entries.len());
        for e in &self.entries {
            w.f64(e.time);
            w.u64(e.seq);
            w.u32(e.generation);
            w.u32(e.pos);
            enc(&e.event, w);
        }
        w.len(self.free.len());
        for &idx in &self.free {
            w.u32(idx);
        }
        w.len(self.heap.len());
        for &idx in &self.heap {
            w.u32(idx);
        }
        w.u64(self.seq);
        w.len(self.high_water);
    }

    /// Reads a queue written by [`IndexedEventQueue::snap`], validating
    /// that heap and free-list indices stay inside the slab.
    pub(crate) fn unsnap(
        r: &mut SnapReader<'_>,
        dec: impl Fn(&mut SnapReader<'_>) -> Result<E, SnapshotError>,
    ) -> Result<Self, SnapshotError> {
        let n_entries = r.len("queue entries len")?;
        let mut entries = Vec::with_capacity(n_entries);
        for _ in 0..n_entries {
            let time = r.f64("entry time")?;
            let seq = r.u64("entry seq")?;
            let generation = r.u32("entry generation")?;
            let pos = r.u32("entry pos")?;
            let event = dec(r)?;
            entries.push(Entry {
                time,
                seq,
                event,
                generation,
                pos,
            });
        }
        let n_free = r.len("queue free len")?;
        let mut free = Vec::with_capacity(n_free);
        for _ in 0..n_free {
            let idx = r.u32("free idx")?;
            if idx as usize >= entries.len() {
                return Err(SnapshotError::Malformed(format!(
                    "free-list index {idx} outside slab of {}",
                    entries.len()
                )));
            }
            free.push(idx);
        }
        let n_heap = r.len("queue heap len")?;
        let mut heap = Vec::with_capacity(n_heap);
        for pos in 0..n_heap {
            let idx = r.u32("heap idx")?;
            let Some(entry) = entries.get(idx as usize) else {
                return Err(SnapshotError::Malformed(format!(
                    "heap index {idx} outside slab of {}",
                    entries.len()
                )));
            };
            if entry.pos as usize != pos {
                return Err(SnapshotError::Malformed(format!(
                    "slab entry {idx} records heap pos {} but sits at {pos}",
                    entry.pos
                )));
            }
            heap.push(idx);
        }
        let seq = r.u64("queue seq")?;
        let high_water = r.len("queue high water")?;
        Ok(IndexedEventQueue {
            entries,
            free,
            heap,
            seq,
            high_water,
        })
    }

    fn release(&mut self, idx: u32) {
        let e = &mut self.entries[idx as usize];
        e.pos = FREE;
        e.generation = e.generation.wrapping_add(1);
        self.free.push(idx);
    }

    /// Earlier-than comparison between heap slots.
    #[inline]
    fn before(&self, a: u32, b: u32) -> bool {
        let (ea, eb) = (&self.entries[a as usize], &self.entries[b as usize]);
        match ea.time.total_cmp(&eb.time) {
            Ordering::Less => true,
            Ordering::Greater => false,
            Ordering::Equal => ea.seq < eb.seq,
        }
    }

    fn remove_at(&mut self, pos: usize) {
        let last = self.heap.len() - 1;
        self.heap.swap(pos, last);
        self.entries[self.heap[pos] as usize].pos = pos as u32;
        self.heap.pop();
        if pos < self.heap.len() {
            // The moved element may violate either direction.
            let pos = self.sift_down(pos);
            self.sift_up(pos);
        }
    }

    fn sift_up(&mut self, mut pos: usize) -> usize {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if self.before(self.heap[pos], self.heap[parent]) {
                self.heap.swap(pos, parent);
                self.entries[self.heap[pos] as usize].pos = pos as u32;
                self.entries[self.heap[parent] as usize].pos = parent as u32;
                pos = parent;
            } else {
                break;
            }
        }
        pos
    }

    fn sift_down(&mut self, mut pos: usize) -> usize {
        loop {
            let (l, r) = (2 * pos + 1, 2 * pos + 2);
            let mut best = pos;
            if l < self.heap.len() && self.before(self.heap[l], self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && self.before(self.heap[r], self.heap[best]) {
                best = r;
            }
            if best == pos {
                return pos;
            }
            self.heap.swap(pos, best);
            self.entries[self.heap[pos] as usize].pos = pos as u32;
            self.entries[self.heap[best] as usize].pos = best as u32;
            pos = best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_pops_in_time_order() {
        let mut q = BinaryEventQueue::new();
        q.schedule(5.0, Event::Sample);
        q.schedule(1.0, Event::PeerJoin);
        q.schedule(3.0, Event::Sample);
        let times: Vec<f64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(times, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn binary_ties_break_fifo() {
        let mut q = BinaryEventQueue::new();
        q.schedule(2.0, Event::PeerJoin);
        q.schedule(
            2.0,
            Event::PeerLeave {
                peer: 7,
                generation: 0,
            },
        );
        assert_eq!(q.pop().unwrap().1, Event::PeerJoin);
        assert!(matches!(
            q.pop().unwrap().1,
            Event::PeerLeave { peer: 7, .. }
        ));
    }

    #[test]
    fn binary_len_tracks_contents() {
        let mut q = BinaryEventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, Event::Sample);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn binary_nan_time_panics() {
        BinaryEventQueue::new().schedule(f64::NAN, Event::Sample);
    }

    #[test]
    fn indexed_pops_in_time_order() {
        let mut q = IndexedEventQueue::new();
        q.schedule(5.0, Event::Sample);
        q.schedule(1.0, Event::PeerJoin);
        q.schedule(3.0, Event::Sample);
        let times: Vec<f64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(times, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn indexed_ties_break_fifo() {
        let mut q = IndexedEventQueue::new();
        for peer in 0..8 {
            q.schedule(
                2.0,
                Event::Query {
                    peer,
                    generation: 0,
                },
            );
        }
        for expect in 0..8 {
            assert!(matches!(
                q.pop().unwrap().1,
                Event::Query { peer, .. } if peer == expect
            ));
        }
    }

    #[test]
    fn indexed_cancel_removes_event() {
        let mut q = IndexedEventQueue::new();
        let a = q.schedule(1.0, Event::PeerJoin);
        let b = q.schedule(2.0, Event::Sample);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "second cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, Event::Sample);
        assert!(!q.cancel(b), "cancel after fire is a no-op");
        assert!(q.pop().is_none());
    }

    #[test]
    fn indexed_stale_handle_never_cancels_reused_slot() {
        let mut q = IndexedEventQueue::new();
        let a = q.schedule(1.0, Event::PeerJoin);
        q.pop();
        // The slab slot is recycled for a fresh event.
        let b = q.schedule(2.0, Event::Sample);
        assert!(!q.cancel(a), "stale handle must not hit the new event");
        assert_eq!(q.len(), 1);
        assert!(q.cancel(b));
    }

    #[test]
    fn indexed_null_handle_is_inert() {
        let mut q = IndexedEventQueue::<Event>::new();
        assert!(EventHandle::NULL.is_null());
        assert!(EventHandle::default().is_null());
        assert!(!q.cancel(EventHandle::NULL));
    }

    #[test]
    fn indexed_high_water_tracks_max_depth() {
        let mut q = IndexedEventQueue::new();
        q.schedule(1.0, Event::Sample);
        q.schedule(2.0, Event::Sample);
        q.pop();
        q.schedule(3.0, Event::Sample);
        assert_eq!(q.high_water(), 2);
        q.schedule(4.0, Event::Sample);
        q.schedule(5.0, Event::Sample);
        // 1 remaining after the pop + 3 scheduled since = depth 4.
        assert_eq!(q.high_water(), 4);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn indexed_nan_time_panics() {
        IndexedEventQueue::new().schedule(f64::NAN, Event::Sample);
    }

    #[test]
    fn indexed_peek_time_is_nondestructive() {
        let mut q = IndexedEventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(4.0, Event::Sample);
        q.schedule(2.0, Event::PeerJoin);
        assert_eq!(q.peek_time(), Some(2.0));
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.peek_time(), Some(4.0));
    }

    #[test]
    fn binary_queue_snap_round_trips_pop_order() {
        let mut q = BinaryEventQueue::new();
        q.schedule(5.0, Event::Sample);
        q.schedule(
            5.0,
            Event::Query {
                peer: 3,
                generation: 1,
            },
        );
        q.schedule(1.5, Event::PeerJoin);
        let mut w = sp_model::SnapWriter::new();
        q.snap(&mut w);
        let data = w.seal(sp_model::snapshot::ENGINE_REFERENCE);
        let mut r = sp_model::SnapReader::open(&data).unwrap();
        let mut restored = BinaryEventQueue::unsnap(&mut r).unwrap();
        r.finish().unwrap();
        loop {
            let (a, b) = (q.pop(), restored.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        // Sequence counters continue identically after restore.
        q.schedule(9.0, Event::Sample);
        restored.schedule(9.0, Event::Sample);
        assert_eq!(q.pop(), restored.pop());
    }

    #[test]
    fn indexed_queue_snap_preserves_free_list_and_handles() {
        let mut q = IndexedEventQueue::new();
        let a = q.schedule(1.0, Event::PeerJoin);
        let _b = q.schedule(2.0, Event::Sample);
        let c = q.schedule(
            3.0,
            Event::Fault {
                index: 4,
                start: true,
            },
        );
        q.cancel(a);
        q.pop();
        let mut w = sp_model::SnapWriter::new();
        q.snap(&mut w, |e, w| e.snap(w));
        let data = w.seal(sp_model::snapshot::ENGINE_FAST);
        let mut r = sp_model::SnapReader::open(&data).unwrap();
        let mut restored = IndexedEventQueue::unsnap(&mut r, Event::unsnap).unwrap();
        r.finish().unwrap();
        // Stale handles stay stale; live handles stay cancellable.
        // Mirror every mutation on both queues so their free lists
        // stay in lockstep for the handle-identity check below.
        assert!(!restored.cancel(a));
        assert!(restored.cancel(c));
        assert!(q.cancel(c));
        // Future schedules must reuse the same slab slots, returning
        // identical handles on both queues.
        for _ in 0..4 {
            let h1 = q.schedule(7.0, Event::Sample);
            let h2 = restored.schedule(7.0, Event::Sample);
            assert_eq!(h1, h2);
        }
        loop {
            let (x, y) = (q.pop(), restored.pop());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }

    #[test]
    fn indexed_queue_unsnap_rejects_out_of_range_indices() {
        let mut w = sp_model::SnapWriter::new();
        w.len(0); // no entries
        w.len(1); // one free index...
        w.u32(5); // ...pointing outside the slab
        w.len(0);
        w.u64(0);
        w.len(0);
        let data = w.seal(sp_model::snapshot::ENGINE_FAST);
        let mut r = sp_model::SnapReader::open(&data).unwrap();
        assert!(matches!(
            IndexedEventQueue::<Event>::unsnap(&mut r, Event::unsnap),
            Err(sp_model::SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn every_event_variant_round_trips() {
        let variants = [
            Event::PeerJoin,
            Event::PeerLeave {
                peer: 1,
                generation: 2,
            },
            Event::Query {
                peer: 3,
                generation: 4,
            },
            Event::Update {
                peer: 5,
                generation: 6,
            },
            Event::ClientRejoin {
                peer: 7,
                generation: 8,
                orphaned_at: 9.5,
                attempt: 2,
            },
            Event::RecruitPartner {
                cluster: 10,
                generation: 11,
            },
            Event::AdaptTick {
                cluster: 12,
                generation: 13,
            },
            Event::Repair {
                cluster: 14,
                generation: 15,
            },
            Event::Sample,
            Event::Fault {
                index: 16,
                start: true,
            },
            Event::Phase {
                index: 17,
                start: false,
            },
        ];
        let mut w = sp_model::SnapWriter::new();
        for e in &variants {
            e.snap(&mut w);
        }
        let data = w.seal(sp_model::snapshot::ENGINE_FAST);
        let mut r = sp_model::SnapReader::open(&data).unwrap();
        for e in &variants {
            assert_eq!(Event::unsnap(&mut r).unwrap(), *e);
        }
        r.finish().unwrap();
    }

    #[test]
    fn indexed_queue_is_generic_over_payload() {
        // The scale engine instantiates the queue with its own event
        // type; any Copy payload must work with the same ordering and
        // cancellation semantics.
        let mut q: IndexedEventQueue<u32> = IndexedEventQueue::new();
        let a = q.schedule(3.0, 30);
        q.schedule(1.0, 10);
        q.schedule(2.0, 20);
        assert!(q.cancel(a));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![10, 20]);
    }
}
