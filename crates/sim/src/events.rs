//! Event queue: a time-ordered heap with stable FIFO tie-breaking.
//!
//! Events reference peers and clusters by slot id plus a *generation*
//! counter; slots are reused after churn, so a handler first checks the
//! generation and silently drops stale events (e.g. a query scheduled
//! for a peer that has since left).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulated time, in seconds.
pub type SimTime = f64;

/// Peer slot id.
pub type PeerId = u32;

/// Cluster slot id.
pub type ClusterId = u32;

/// Everything that can happen in the simulated network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A brand-new peer arrives (attributes sampled at handling time).
    PeerJoin,
    /// A peer's session ends.
    PeerLeave {
        /// The departing peer.
        peer: PeerId,
        /// Generation guard.
        generation: u32,
    },
    /// A peer submits a query.
    Query {
        /// The querying peer.
        peer: PeerId,
        /// Generation guard.
        generation: u32,
    },
    /// A peer updates its collection.
    Update {
        /// The updating peer.
        peer: PeerId,
        /// Generation guard.
        generation: u32,
    },
    /// An orphaned client retries connecting to the network.
    ClientRejoin {
        /// The orphaned peer.
        peer: PeerId,
        /// Generation guard.
        generation: u32,
        /// When the client lost its super-peer (for downtime
        /// accounting).
        orphaned_at: SimTime,
    },
    /// A cluster that lost a partner tries to recruit a replacement
    /// from its clients.
    RecruitPartner {
        /// The recruiting cluster.
        cluster: ClusterId,
        /// Generation guard.
        generation: u32,
    },
    /// A super-peer evaluates the Section 5.3 local rules.
    AdaptTick {
        /// The adapting cluster.
        cluster: ClusterId,
        /// Generation guard.
        generation: u32,
    },
    /// Periodic metrics sampling.
    Sample,
}

#[derive(Debug, Clone, Copy)]
struct Scheduled {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want the
        // earliest event first; ties break FIFO by sequence number.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Time-ordered event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN.
    pub fn schedule(&mut self, time: SimTime, event: Event) {
        assert!(!time.is_nan(), "cannot schedule at NaN");
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(5.0, Event::Sample);
        q.schedule(1.0, Event::PeerJoin);
        q.schedule(3.0, Event::Sample);
        let times: Vec<f64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(times, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.schedule(2.0, Event::PeerJoin);
        q.schedule(
            2.0,
            Event::PeerLeave {
                peer: 7,
                generation: 0,
            },
        );
        assert_eq!(q.pop().unwrap().1, Event::PeerJoin);
        assert!(matches!(
            q.pop().unwrap().1,
            Event::PeerLeave { peer: 7, .. }
        ));
    }

    #[test]
    fn len_tracks_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, Event::Sample);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_panics() {
        EventQueue::new().schedule(f64::NAN, Event::Sample);
    }
}
