//! Differential scenario-campaign runner: the standing fuzz gate for
//! the two-engine determinism contract.
//!
//! A campaign fans `count` seeded scenarios across worker threads via
//! the same thread-budget cascade as every other multi-trial driver
//! ([`run_sim_trials`]), so the whole campaign — including its
//! aggregate fingerprint — is bitwise identical at any thread count.
//! Each trial seed deterministically expands into
//!
//! 1. a randomized [`ScenarioPlan`] (phased churn bursts, correlated
//!    mass leaves, split windows, flash crowds on rotated hot keys,
//!    capacity classes, an embedded fault plan, a repair policy),
//! 2. a simulation seed, fault seed, and scenario seed,
//!
//! and the scenario runs through **both** engines
//! ([`Simulation`] and [`ReferenceSimulation`]) with identical
//! options. The differential oracle then demands
//!
//! * bitwise-equal [`RawMetrics`] from the two engines (the
//!   first differing field is named in the divergence reason),
//! * query conservation ([`FaultMetrics::conserved`]
//!   — every issued query accounted exactly once) in both engines,
//! * the **extended** conservation identity when the generated plan
//!   carries an overload policy
//!   ([`OverloadMetrics::conserved`](crate::overload::OverloadMetrics::conserved)
//!   — issued = lost + delivered + shed + rejected), in both engines,
//! * sane repair/availability invariants (fractions inside `[0, 1]`).
//!
//! Because the campaign fingerprint hashes the full `RawMetrics`
//! rendering, the overload ledger (shed/reject counters, latency
//! histogram, queue timeline) folds into it automatically: a run that
//! sheds one more query than yesterday moves the nightly fingerprint.
//!
//! Every divergence carries a self-contained reproducer document
//! (seeds + full scenario JSON) so a nightly failure replays locally
//! with `spnet campaign --count 1 --seed <trial_seed>` or by feeding
//! the embedded scenario to `spnet simulate --scenario`.
//!
//! Campaigns degrade gracefully instead of all-or-nothing: a scenario
//! whose engine run *panics* is caught per trial, **quarantined** in
//! the report (with its panic message, the full plan, and a tick-0
//! engine snapshot for postmortem replay), and the rest of the
//! campaign completes. A partially-failed or preempted campaign
//! resumes from its own report via [`run_campaign_with`] /
//! `spnet campaign --resume`: scenarios the report records as
//! completed are skipped (their fingerprints are re-folded from the
//! report), everything else — including previously quarantined
//! scenarios — re-runs.
//!
//! [`FaultMetrics::conserved`]: crate::faults::FaultMetrics::conserved

use std::panic::{catch_unwind, AssertUnwindSafe};

use sp_model::config::Config;
use sp_model::faults::{FaultPlan, FaultSpec, Parser, Value};
use sp_model::overload::{BrownoutConfig, OverloadPolicy, ShedDiscipline};
use sp_model::repair::RepairPolicy;
use sp_model::scenario::{
    CapacityClass, PhaseKind, PhaseSpec, ScenarioPlan, SCENARIO_SCHEMA_VERSION,
};
use sp_model::trials::panic_message;
use sp_stats::SpRng;

use crate::engine::{RawMetrics, SimOptions, Simulation};
use crate::reference::ReferenceSimulation;
use crate::scenario::{run_sim_trials, SimTrialOptions};

/// Version of the campaign-report JSON this module writes; a report
/// stamped with a newer version is rejected by
/// [`CampaignResume::from_report_json`] with a named error.
pub const CAMPAIGN_SCHEMA_VERSION: u32 = 1;

/// Campaign configuration.
#[derive(Debug, Clone, Copy)]
pub struct CampaignOptions {
    /// Number of scenarios to generate and run.
    pub count: usize,
    /// Root seed; scenario `i` derives everything from the RNG split
    /// `seed → i` (same cascade as [`run_sim_trials`]).
    pub seed: u64,
    /// Worker-thread budget; 0 = one per available core.
    pub threads: usize,
    /// Simulated users per scenario (`Config::graph_size`).
    pub users: usize,
    /// Target cluster size (`Config::cluster_size`).
    pub cluster_size: usize,
    /// Simulated duration per scenario, seconds.
    pub duration_secs: f64,
    /// Test-only hook: the scenario at this index panics inside its
    /// engine run, exercising the quarantine path end to end.
    pub inject_panic: Option<usize>,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            count: 32,
            seed: 42,
            threads: 0,
            users: 120,
            cluster_size: 12,
            duration_secs: 1200.0,
            inject_panic: None,
        }
    }
}

/// One scenario's campaign outcome.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Scenario index within the campaign.
    pub index: usize,
    /// The split-derived trial seed this scenario expanded from.
    pub trial_seed: u64,
    /// Main simulation seed fed to both engines.
    pub sim_seed: u64,
    /// Dedicated fault-stream seed fed to both engines.
    pub fault_seed: u64,
    /// Dedicated scenario-stream seed fed to both engines.
    pub scenario_seed: u64,
    /// Phase kinds exercised, in declaration order.
    pub phase_kinds: Vec<&'static str>,
    /// Fault kinds of the embedded fault plan.
    pub fault_kinds: Vec<&'static str>,
    /// Number of capacity classes (0 = homogeneous).
    pub capacity_classes: usize,
    /// Repair policy the scenario healed with.
    pub repair: RepairPolicy,
    /// FNV-1a fingerprint of the fast engine's metrics.
    pub fingerprint: u64,
    /// Why the oracle rejected this scenario (`None` = passed).
    pub divergence: Option<String>,
    /// The generated plan, rendered as JSON.
    pub plan_json: String,
    /// Panic message captured by the quarantine wrapper (`None` = the
    /// engine runs completed, whatever the oracle said).
    pub panic: Option<String>,
    /// Tick-0 fast-engine snapshot of the quarantined scenario (empty
    /// unless `panic` is set, or when even snapshot construction
    /// panicked); restoring and running it replays the failure.
    pub panic_snapshot: Vec<u8>,
}

/// One oracle rejection, with everything needed to replay it.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Scenario index within the campaign.
    pub index: usize,
    /// The split-derived trial seed.
    pub trial_seed: u64,
    /// Main simulation seed.
    pub sim_seed: u64,
    /// Fault-stream seed.
    pub fault_seed: u64,
    /// Scenario-stream seed.
    pub scenario_seed: u64,
    /// First oracle check that failed.
    pub reason: String,
    /// The offending scenario plan, as JSON.
    pub plan_json: String,
}

impl Divergence {
    /// Renders a self-contained reproducer document: population
    /// shape, duration, the campaign seed, all three per-trial seeds,
    /// the failure reason, and the full scenario plan (stamped with
    /// the scenario grammar version so a future parser rejects it by
    /// name instead of misreading it).
    pub fn reproducer_json(&self, opts: &CampaignOptions) -> String {
        reproducer_document(
            opts,
            self.index,
            self.trial_seed,
            self.sim_seed,
            self.fault_seed,
            self.scenario_seed,
            "divergence",
            &self.reason,
            &self.plan_json,
        )
    }
}

/// One quarantined scenario: its engine run panicked, the campaign
/// caught it per trial and completed without it. Carries everything a
/// postmortem needs, including a tick-0 engine snapshot whose
/// restore-and-run replays the panic deterministically.
#[derive(Debug, Clone)]
pub struct Quarantine {
    /// Scenario index within the campaign.
    pub index: usize,
    /// The split-derived trial seed.
    pub trial_seed: u64,
    /// Main simulation seed.
    pub sim_seed: u64,
    /// Fault-stream seed.
    pub fault_seed: u64,
    /// Scenario-stream seed.
    pub scenario_seed: u64,
    /// The captured panic message.
    pub reason: String,
    /// The offending scenario plan, as JSON.
    pub plan_json: String,
    /// Tick-0 fast-engine snapshot (empty when even snapshot
    /// construction panicked).
    pub snapshot: Vec<u8>,
    /// Where the caller wrote the reproducer JSON (filled in by the
    /// CLI before the report is rendered; `None` = not written).
    pub reproducer_path: Option<String>,
    /// Where the caller wrote [`Quarantine::snapshot`] (filled in by
    /// the CLI before the report is rendered; `None` = not written).
    pub snapshot_path: Option<String>,
}

impl Quarantine {
    /// Renders the same self-contained reproducer document as
    /// [`Divergence::reproducer_json`], tagged as a quarantine.
    pub fn reproducer_json(&self, opts: &CampaignOptions) -> String {
        reproducer_document(
            opts,
            self.index,
            self.trial_seed,
            self.sim_seed,
            self.fault_seed,
            self.scenario_seed,
            "quarantine",
            &self.reason,
            &self.plan_json,
        )
    }
}

/// The shared reproducer-document renderer: population shape,
/// duration, campaign seed, per-trial seeds, grammar version, kind
/// tag, reason, and the embedded scenario plan (always the last key).
#[allow(clippy::too_many_arguments)]
fn reproducer_document(
    opts: &CampaignOptions,
    index: usize,
    trial_seed: u64,
    sim_seed: u64,
    fault_seed: u64,
    scenario_seed: u64,
    kind: &str,
    reason: &str,
    plan_json: &str,
) -> String {
    let mut s = String::with_capacity(512 + plan_json.len());
    s.push_str("{\n");
    s.push_str(&format!(
        "  \"scenario_schema_version\": {SCENARIO_SCHEMA_VERSION},\n"
    ));
    s.push_str(&format!("  \"kind\": \"{kind}\",\n"));
    s.push_str(&format!("  \"index\": {index},\n"));
    s.push_str(&format!("  \"users\": {},\n", opts.users));
    s.push_str(&format!("  \"cluster_size\": {},\n", opts.cluster_size));
    s.push_str(&format!("  \"duration_secs\": {},\n", opts.duration_secs));
    s.push_str(&format!("  \"campaign_seed\": {},\n", opts.seed));
    s.push_str(&format!("  \"trial_seed\": {trial_seed},\n"));
    s.push_str(&format!("  \"sim_seed\": {sim_seed},\n"));
    s.push_str(&format!("  \"fault_seed\": {fault_seed},\n"));
    s.push_str(&format!("  \"scenario_seed\": {scenario_seed},\n"));
    s.push_str(&format!("  \"reason\": {},\n", json_string(reason)));
    s.push_str("  \"scenario\": ");
    indent_embedded(&mut s, plan_json);
    s.push_str("\n}\n");
    s
}

/// Aggregated campaign result.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The options the campaign ran with.
    pub options: CampaignOptions,
    /// Scenarios run (equals `options.count`).
    pub scenarios: usize,
    /// Phase windows exercised per kind, `(kind, count)` sorted by
    /// kind name.
    pub phases_covered: Vec<(&'static str, u64)>,
    /// Fault specs exercised per kind, sorted by kind name.
    pub faults_covered: Vec<(&'static str, u64)>,
    /// Scenarios per repair policy, in [`RepairPolicy::ALL`] order.
    pub repair_covered: Vec<(&'static str, u64)>,
    /// Order-sensitive FNV-1a fold of every completed scenario's
    /// fingerprint (quarantined scenarios contribute nothing) —
    /// bitwise identical across thread counts and the value the CI
    /// smoke pins.
    pub fingerprint: u64,
    /// Oracle rejections (empty = green).
    pub divergences: Vec<Divergence>,
    /// Scenarios whose engine runs panicked; the rest of the campaign
    /// completed without them (empty = nothing quarantined).
    pub quarantined: Vec<Quarantine>,
    /// Green scenarios — ran to completion AND passed the oracle —
    /// recorded `(index, trial_seed, fingerprint)` so a resumed
    /// campaign can skip them and re-fold their fingerprints.
    pub completed: Vec<CompletedScenario>,
}

/// One green scenario recorded in a report for `--resume`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedScenario {
    /// Scenario index within the campaign.
    pub index: usize,
    /// The split-derived trial seed (verified on resume; a mismatch
    /// means the report belongs to different options and the scenario
    /// is re-run instead of skipped).
    pub trial_seed: u64,
    /// The scenario's metrics fingerprint, re-folded on resume.
    pub fingerprint: u64,
}

impl CampaignReport {
    /// One-line summary for terminals and smoke greps.
    pub fn summary_line(&self) -> String {
        format!(
            "campaign: {} scenarios, seed {}, fingerprint {:#018x}, divergences {}, \
             quarantined {}",
            self.scenarios,
            self.options.seed,
            self.fingerprint,
            self.divergences.len(),
            self.quarantined.len()
        )
    }

    /// Renders the machine-readable campaign report.
    ///
    /// Trial seeds and fingerprints inside `completed` are hex
    /// *strings*: the workspace's hand-rolled JSON reader holds
    /// numbers as `f64`, which cannot round-trip full 64-bit seeds.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        s.push_str(&format!(
            "  \"schema_version\": {CAMPAIGN_SCHEMA_VERSION},\n"
        ));
        s.push_str(&format!("  \"scenarios\": {},\n", self.scenarios));
        s.push_str(&format!("  \"seed\": {},\n", self.options.seed));
        s.push_str(&format!("  \"seed_hex\": \"{:#x}\",\n", self.options.seed));
        s.push_str(&format!("  \"users\": {},\n", self.options.users));
        s.push_str(&format!(
            "  \"cluster_size\": {},\n",
            self.options.cluster_size
        ));
        s.push_str(&format!(
            "  \"duration_secs\": {},\n",
            self.options.duration_secs
        ));
        s.push_str(&format!(
            "  \"fingerprint\": \"{:#018x}\",\n",
            self.fingerprint
        ));
        let counts = |pairs: &[(&'static str, u64)]| -> String {
            let body: Vec<String> = pairs.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
            format!("{{{}}}", body.join(", "))
        };
        s.push_str(&format!(
            "  \"phases_covered\": {},\n",
            counts(&self.phases_covered)
        ));
        s.push_str(&format!(
            "  \"faults_covered\": {},\n",
            counts(&self.faults_covered)
        ));
        s.push_str(&format!(
            "  \"repair_covered\": {},\n",
            counts(&self.repair_covered)
        ));
        s.push_str("  \"completed\": [");
        for (i, c) in self.completed.iter().enumerate() {
            let sep = if i + 1 < self.completed.len() {
                ","
            } else {
                ""
            };
            s.push_str(&format!(
                "\n    {{\"index\": {}, \"trial_seed\": \"{:#x}\", \
                 \"fingerprint\": \"{:#018x}\"}}{sep}",
                c.index, c.trial_seed, c.fingerprint
            ));
        }
        if !self.completed.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n");
        s.push_str("  \"quarantined\": [");
        for (i, q) in self.quarantined.iter().enumerate() {
            let sep = if i + 1 < self.quarantined.len() {
                ","
            } else {
                ""
            };
            let opt = |p: &Option<String>| match p {
                Some(path) => json_string(path),
                None => "null".to_string(),
            };
            s.push_str(&format!(
                "\n    {{\"index\": {}, \"trial_seed\": \"{:#x}\", \"reason\": {}, \
                 \"reproducer\": {}, \"snapshot\": {}}}{sep}",
                q.index,
                q.trial_seed,
                json_string(&q.reason),
                opt(&q.reproducer_path),
                opt(&q.snapshot_path)
            ));
        }
        if !self.quarantined.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n");
        s.push_str("  \"divergences\": [");
        for (i, d) in self.divergences.iter().enumerate() {
            let sep = if i + 1 < self.divergences.len() {
                ","
            } else {
                ""
            };
            s.push_str(&format!(
                "\n    {{\"index\": {}, \"trial_seed\": {}, \"reason\": {}}}{sep}",
                d.index,
                d.trial_seed,
                json_string(&d.reason)
            ));
        }
        if !self.divergences.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

/// Resume state parsed from a previous campaign report: the options
/// the campaign ran with and which scenarios it completed.
#[derive(Debug, Clone)]
pub struct CampaignResume {
    /// Scenario count of the original campaign.
    pub count: usize,
    /// Campaign seed of the original campaign.
    pub seed: u64,
    /// Users per scenario of the original campaign.
    pub users: usize,
    /// Cluster size of the original campaign.
    pub cluster_size: usize,
    /// Per-scenario duration of the original campaign, seconds.
    pub duration_secs: f64,
    /// Scenarios the report records as green.
    pub completed: Vec<CompletedScenario>,
}

impl CampaignResume {
    /// Parses a report written by [`CampaignReport::to_json`]. Reports
    /// stamped with a newer [`CAMPAIGN_SCHEMA_VERSION`] are rejected
    /// by name; missing fields and malformed values name the field.
    pub fn from_report_json(text: &str) -> Result<CampaignResume, String> {
        let doc = Parser::new(text)
            .parse_document()
            .map_err(|e| format!("campaign report: {e}"))?;
        let root = doc.as_object("campaign report").map_err(|e| e.0)?;
        let hex = |raw: &str, ctx: &str| -> Result<u64, String> {
            let digits = raw
                .strip_prefix("0x")
                .ok_or_else(|| format!("{ctx}: expected a 0x-prefixed hex string, got {raw:?}"))?;
            u64::from_str_radix(digits, 16).map_err(|e| format!("{ctx}: {e}"))
        };
        let mut count = None;
        let mut seed = None;
        let mut seed_hex = None;
        let mut users = None;
        let mut cluster_size = None;
        let mut duration_secs = None;
        let mut completed = Vec::new();
        for (key, val) in root {
            match key.as_str() {
                "schema_version" => {
                    let version = val.as_u32("schema_version").map_err(|e| e.0)?;
                    if version > CAMPAIGN_SCHEMA_VERSION {
                        return Err(format!(
                            "campaign report schema_version {version} is newer than this \
                             binary's {CAMPAIGN_SCHEMA_VERSION}; upgrade spnet to resume it"
                        ));
                    }
                }
                "scenarios" => {
                    count = Some(val.as_u32("scenarios").map_err(|e| e.0)? as usize);
                }
                "seed" => seed = Some(val.as_f64("seed").map_err(|e| e.0)? as u64),
                "seed_hex" => {
                    seed_hex = Some(hex(&val.as_str("seed_hex").map_err(|e| e.0)?, "seed_hex")?);
                }
                "users" => users = Some(val.as_u32("users").map_err(|e| e.0)? as usize),
                "cluster_size" => {
                    cluster_size = Some(val.as_u32("cluster_size").map_err(|e| e.0)? as usize);
                }
                "duration_secs" => {
                    duration_secs = Some(val.as_f64("duration_secs").map_err(|e| e.0)?);
                }
                "completed" => {
                    for (i, item) in val
                        .as_array("completed")
                        .map_err(|e| e.0)?
                        .iter()
                        .enumerate()
                    {
                        let ctx = format!("completed[{i}]");
                        let obj = item.as_object(&ctx).map_err(|e| e.0)?;
                        let field = |name: &str| -> Result<&Value, String> {
                            obj.iter()
                                .find(|(k, _)| k == name)
                                .map(|(_, v)| v)
                                .ok_or_else(|| format!("{ctx}: missing \"{name}\""))
                        };
                        completed.push(CompletedScenario {
                            index: field("index")?.as_u32(&ctx).map_err(|e| e.0)? as usize,
                            trial_seed: hex(
                                &field("trial_seed")?.as_str(&ctx).map_err(|e| e.0)?,
                                &ctx,
                            )?,
                            fingerprint: hex(
                                &field("fingerprint")?.as_str(&ctx).map_err(|e| e.0)?,
                                &ctx,
                            )?,
                        });
                    }
                }
                // Coverage tables, fingerprint, divergences, and any
                // future additions are not needed to resume.
                _ => {}
            }
        }
        Ok(CampaignResume {
            count: count.ok_or("campaign report: missing \"scenarios\"")?,
            // The hex spelling is authoritative (numbers above 2^53
            // lose bits through the f64-backed reader); the decimal
            // field keeps old reports and jq pipelines working.
            seed: seed_hex
                .or(seed)
                .ok_or("campaign report: missing \"seed\"")?,
            users: users.ok_or("campaign report: missing \"users\"")?,
            cluster_size: cluster_size.ok_or("campaign report: missing \"cluster_size\"")?,
            duration_secs: duration_secs.ok_or("campaign report: missing \"duration_secs\"")?,
            completed,
        })
    }

    /// The [`CampaignOptions`] equivalent to the original run's
    /// (thread budget and test hooks are the caller's choice — they
    /// never affect results).
    pub fn options(&self, threads: usize) -> CampaignOptions {
        CampaignOptions {
            count: self.count,
            seed: self.seed,
            threads,
            users: self.users,
            cluster_size: self.cluster_size,
            duration_secs: self.duration_secs,
            inject_panic: None,
        }
    }
}

/// Runs a differential campaign (see module docs).
pub fn run_campaign(opts: &CampaignOptions) -> CampaignReport {
    run_campaign_with(opts, None)
}

/// Runs a differential campaign, optionally resuming a previous one:
/// scenarios the resume state records as green are skipped (their
/// stored fingerprints re-fold into the campaign fingerprint, so a
/// resumed all-green campaign reports the same fingerprint as an
/// uninterrupted one), everything else — never-run, divergent, and
/// previously quarantined scenarios — runs normally. A completed
/// record whose trial seed does not match the seed this campaign
/// derives for that index belongs to different options and is ignored
/// (the scenario re-runs).
pub fn run_campaign_with(
    opts: &CampaignOptions,
    resume: Option<&CampaignResume>,
) -> CampaignReport {
    let config = Config {
        graph_size: opts.users,
        cluster_size: opts.cluster_size,
        ..Config::default()
    };
    let trial_opts = SimTrialOptions {
        trials: opts.count,
        seed: opts.seed,
        threads: opts.threads,
        repair: RepairPolicy::Off,
        kind: "campaign",
    };
    // Map index → stored fingerprint for records that pass the
    // trial-seed consistency check (same derivation as
    // `run_sim_trials`, so a report from different options skips
    // nothing instead of poisoning the fold).
    let root = SpRng::seed_from_u64(opts.seed);
    let skip: std::collections::BTreeMap<usize, u64> = resume
        .map(|r| {
            r.completed
                .iter()
                .filter(|c| c.index < opts.count)
                .filter(|c| root.split(c.index as u64).next_raw() == c.trial_seed)
                .map(|c| (c.index, c.fingerprint))
                .collect()
        })
        .unwrap_or_default();
    let duration = opts.duration_secs;
    let inject = opts.inject_panic;
    let outcomes = run_sim_trials(&trial_opts, |trial_seed, index| {
        run_one(
            &config,
            duration,
            trial_seed,
            index,
            skip.get(&index).copied(),
            inject,
        )
    });

    let mut phases: Vec<(&'static str, u64)> = Vec::new();
    let mut faults: Vec<(&'static str, u64)> = Vec::new();
    let mut repairs: Vec<(&'static str, u64)> = RepairPolicy::ALL
        .iter()
        .map(|p| (policy_name(*p), 0))
        .collect();
    let mut fingerprint = FNV_OFFSET;
    let mut divergences = Vec::new();
    let mut quarantined = Vec::new();
    let mut completed = Vec::new();
    for o in &outcomes {
        if let Some(reason) = &o.panic {
            quarantined.push(Quarantine {
                index: o.index,
                trial_seed: o.trial_seed,
                sim_seed: o.sim_seed,
                fault_seed: o.fault_seed,
                scenario_seed: o.scenario_seed,
                reason: reason.clone(),
                plan_json: o.plan_json.clone(),
                snapshot: o.panic_snapshot.clone(),
                reproducer_path: None,
                snapshot_path: None,
            });
            continue;
        }
        for k in &o.phase_kinds {
            bump(&mut phases, k);
        }
        for k in &o.fault_kinds {
            bump(&mut faults, k);
        }
        if let Some(slot) = repairs
            .iter_mut()
            .find(|(name, _)| *name == policy_name(o.repair))
        {
            slot.1 += 1;
        }
        fingerprint = fnv_fold(fingerprint, o.fingerprint);
        if let Some(reason) = &o.divergence {
            divergences.push(Divergence {
                index: o.index,
                trial_seed: o.trial_seed,
                sim_seed: o.sim_seed,
                fault_seed: o.fault_seed,
                scenario_seed: o.scenario_seed,
                reason: reason.clone(),
                plan_json: o.plan_json.clone(),
            });
        } else {
            completed.push(CompletedScenario {
                index: o.index,
                trial_seed: o.trial_seed,
                fingerprint: o.fingerprint,
            });
        }
    }
    phases.sort_unstable();
    faults.sort_unstable();
    CampaignReport {
        options: *opts,
        scenarios: outcomes.len(),
        phases_covered: phases,
        faults_covered: faults,
        repair_covered: repairs,
        fingerprint,
        divergences,
        quarantined,
        completed,
    }
}

/// Expands one trial seed into a scenario, runs both engines, and
/// applies the differential oracle. A `completed_fingerprint` from a
/// resume skips the engine runs (the plan is still regenerated — RNG
/// only — so coverage tables stay exact); a panic in either engine is
/// caught and reported as a quarantine outcome instead of unwinding
/// the campaign.
fn run_one(
    config: &Config,
    duration: f64,
    trial_seed: u64,
    index: usize,
    completed_fingerprint: Option<u64>,
    inject: Option<usize>,
) -> ScenarioOutcome {
    let mut rng = SpRng::seed_from_u64(trial_seed);
    let plan = generate_plan(&mut rng, config, duration);
    let sim_seed = rng.next_raw();
    let fault_seed = rng.next_raw();
    let scenario_seed = rng.next_raw();
    let opts = SimOptions {
        duration_secs: duration,
        seed: sim_seed,
        fault_seed,
        scenario_seed,
        ..SimOptions::default()
    };
    let base = |fingerprint: u64,
                divergence: Option<String>,
                panic: Option<String>,
                panic_snapshot: Vec<u8>| ScenarioOutcome {
        index,
        trial_seed,
        sim_seed,
        fault_seed,
        scenario_seed,
        phase_kinds: plan.phases.iter().map(|p| p.kind.kind_name()).collect(),
        fault_kinds: plan
            .faults
            .faults
            .iter()
            .map(FaultSpec::kind_name)
            .collect(),
        capacity_classes: plan.capacity_classes.len(),
        repair: plan.repair,
        fingerprint,
        divergence,
        plan_json: plan.to_json(),
        panic,
        panic_snapshot,
    };
    if let Some(fp) = completed_fingerprint {
        return base(fp, None, None, Vec::new());
    }
    match catch_unwind(AssertUnwindSafe(|| {
        if inject == Some(index) {
            panic!("injected campaign panic (test hook) at scenario {index}");
        }
        let fast = Simulation::with_scenario(config, opts, &plan).run();
        let reference = ReferenceSimulation::with_scenario(config, opts, &plan).run();
        (fast, reference)
    })) {
        Ok((fast, reference)) => {
            let divergence = oracle(&fast, &reference, !plan.overload.is_empty());
            base(fingerprint(&fast), divergence, None, Vec::new())
        }
        Err(payload) => {
            let reason = panic_message(payload.as_ref()).to_string();
            // Best-effort tick-0 snapshot for postmortem replay; if
            // even construction panics, quarantine with what we have.
            let snapshot = catch_unwind(AssertUnwindSafe(|| {
                Simulation::with_scenario(config, opts, &plan).snapshot()
            }))
            .unwrap_or_default();
            base(0, None, Some(reason), snapshot)
        }
    }
}

/// The differential oracle: engine equality, conservation, and range
/// invariants. With an active overload policy the extended identity
/// (issued = lost + delivered + shed + rejected) is demanded too.
/// Returns the first failure's description.
fn oracle(fast: &RawMetrics, reference: &RawMetrics, overload_active: bool) -> Option<String> {
    if fast != reference {
        return Some(describe_divergence(fast, reference));
    }
    if !fast.faults.conserved() {
        return Some(format!(
            "fast engine violates query conservation: issued {} != direct {} + retry {} \
             + failover {} + lost {}",
            fast.faults.queries_issued,
            fast.faults.answered_direct,
            fast.faults.recovered_retry,
            fast.faults.recovered_failover,
            fast.faults.queries_lost
        ));
    }
    if !reference.faults.conserved() {
        return Some("reference engine violates query conservation".to_string());
    }
    if overload_active {
        if !fast
            .overload
            .conserved(fast.faults.queries_issued, fast.faults.queries_lost)
        {
            return Some(format!(
                "fast engine violates extended overload conservation: issued {} != \
                 lost {} + delivered {} + shed {} + rejected {}",
                fast.faults.queries_issued,
                fast.faults.queries_lost,
                fast.overload.delivered,
                fast.overload.shed_discipline
                    + fast.overload.shed_dead
                    + fast.overload.shed_residual,
                fast.overload.rejected_queue + fast.overload.rejected_budget
            ));
        }
        if !reference.overload.conserved(
            reference.faults.queries_issued,
            reference.faults.queries_lost,
        ) {
            return Some("reference engine violates extended overload conservation".to_string());
        }
    }
    let avail = fast.availability();
    if !(0.0..=1.0).contains(&avail) {
        return Some(format!("availability out of range: {avail}"));
    }
    let reach = fast.repair.final_reachable_fraction;
    if !(0.0..=1.0).contains(&reach) {
        return Some(format!("final_reachable_fraction out of range: {reach}"));
    }
    None
}

/// Names the first differing metrics field so a nightly log localizes
/// the divergence without a debugger.
fn describe_divergence(fast: &RawMetrics, reference: &RawMetrics) -> String {
    let field = if fast.queries != reference.queries {
        format!("queries ({} vs {})", fast.queries, reference.queries)
    } else if fast.cluster_failures != reference.cluster_failures {
        format!(
            "cluster_failures ({} vs {})",
            fast.cluster_failures, reference.cluster_failures
        )
    } else if fast.orphan_events != reference.orphan_events {
        format!(
            "orphan_events ({} vs {})",
            fast.orphan_events, reference.orphan_events
        )
    } else if fast.faults != reference.faults {
        "faults (injection/recovery counters)".to_string()
    } else if fast.repair != reference.repair {
        "repair (promotion/reachability accounting)".to_string()
    } else if fast.overload != reference.overload {
        "overload (queue/shed/brownout ledger)".to_string()
    } else if fast.timeline != reference.timeline {
        "timeline samples".to_string()
    } else if fast.client_connected_secs.to_bits() != reference.client_connected_secs.to_bits() {
        format!(
            "client_connected_secs ({} vs {})",
            fast.client_connected_secs, reference.client_connected_secs
        )
    } else {
        "load statistics".to_string()
    };
    format!("engines diverge on {field}")
}

/// Generates a randomized-but-valid scenario plan from a dedicated
/// generator stream. Same-kind windows are laid out behind a per-kind
/// cursor, so the plan always validates; everything lands inside
/// `[5%, 95%]` of the run so bootstrap and final accounting stay
/// exercised. Phases occasionally carry a query-rate multiplier and
/// about a third of plans carry an overload policy (half the
/// capacity-sized preset, half fully randomized knobs), so the
/// differential gate fuzzes the overload ledger alongside churn,
/// faults, and repair.
fn generate_plan(rng: &mut SpRng, config: &Config, duration: f64) -> ScenarioPlan {
    let span = |rng: &mut SpRng, lo: f64, hi: f64| lo + rng.unit_f64() * (hi - lo);
    let mut plan = ScenarioPlan::default();

    // Phases: up to four, kinds drawn independently.
    let mut cursors = [duration * 0.05; 4];
    let want_phases = rng.index(5);
    for _ in 0..want_phases {
        let kind_idx = rng.index(4);
        let from = cursors[kind_idx] + span(rng, 0.02, 0.10) * duration;
        let until = from + span(rng, 0.05, 0.20) * duration;
        if until > duration * 0.95 {
            continue; // ran off the end of the run; skip this window
        }
        cursors[kind_idx] = until;
        let kind = match kind_idx {
            0 => PhaseKind::FlashCrowd {
                query_rate_mult: span(rng, 1.5, 6.0),
                hot_shift: rng.index(1024) as u32,
            },
            1 => PhaseKind::ChurnBurst {
                lifespan_mult: span(rng, 0.2, 0.9),
            },
            2 => PhaseKind::MassLeave {
                fraction: span(rng, 0.05, 0.4),
            },
            _ => PhaseKind::Split {
                fraction: span(rng, 0.1, 0.5),
            },
        };
        // A quarter of the non-flash-crowd windows also scale the raw
        // query arrival rate — the overload pressure knob. FlashCrowd
        // expresses its spike through its own query_rate_mult, and the
        // DSL rejects a second multiplier there.
        let rate_mult = if !matches!(kind, PhaseKind::FlashCrowd { .. }) && rng.chance(0.25) {
            span(rng, 0.5, 4.0)
        } else {
            1.0
        };
        plan.phases.push(PhaseSpec {
            rate_mult,
            from_secs: from,
            until_secs: until,
            kind,
        });
    }

    // Capacity classes: up to three.
    for _ in 0..rng.index(4) {
        plan.capacity_classes.push(CapacityClass {
            weight: span(rng, 1.0, 5.0),
            files_mult: span(rng, 0.1, 4.0),
            lifespan_mult: span(rng, 0.5, 2.0),
        });
    }

    // Embedded faults: each family joins with its own probability.
    let mut faults = FaultPlan::default();
    if rng.chance(0.5) {
        faults.faults.push(FaultSpec::CrashFraction {
            at_secs: span(rng, 0.2, 0.6) * duration,
            fraction: span(rng, 0.1, 0.35),
        });
    }
    if rng.chance(0.4) {
        let from = span(rng, 0.1, 0.5) * duration;
        faults.faults.push(FaultSpec::MessageLoss {
            from_secs: from,
            until_secs: from + span(rng, 0.1, 0.3) * duration,
            drop_prob: span(rng, 0.05, 0.3),
        });
    }
    if rng.chance(0.3) {
        let from = span(rng, 0.1, 0.5) * duration;
        faults.faults.push(FaultSpec::FlakyPartners {
            from_secs: from,
            until_secs: from + span(rng, 0.1, 0.3) * duration,
            flake_prob: span(rng, 0.1, 0.5),
        });
    }
    plan.faults = faults;
    plan.repair = RepairPolicy::ALL[rng.index(RepairPolicy::ALL.len())];

    // Overload control joins about a third of the plans. Half of those
    // use the capacity-model preset (the configuration the benchmark
    // and CLI recommend); the rest randomize every knob inside its
    // valid range so the shed disciplines, budget, brownout hysteresis,
    // and re-homing all see fuzz coverage.
    if rng.chance(0.35) {
        plan.overload = if rng.chance(0.5) {
            OverloadPolicy::sized_for(config)
        } else {
            let service_rate = config.cluster_size as f64 * config.query_rate * span(rng, 1.0, 4.0);
            let discipline = match rng.index(3) {
                0 => ShedDiscipline::RejectAtAdmission,
                1 => ShedDiscipline::DropOldest,
                _ => ShedDiscipline::DropLowestTtl,
            };
            let with_budget = rng.chance(0.5);
            let brownout = if rng.chance(0.5) {
                let exit = span(rng, 0.1, 1.0);
                Some(BrownoutConfig {
                    enter_backlog_secs: exit + span(rng, 0.5, 3.0),
                    exit_backlog_secs: exit,
                    min_dwell_secs: span(rng, 1.0, 20.0),
                    ttl_decrement: rng.index(4) as u16,
                    fanout_limit: 1 + rng.index(6) as u32,
                })
            } else {
                None
            };
            OverloadPolicy {
                service_rate,
                // 0 = measure-only (unbounded queue): the uncontrolled
                // baseline must survive the differential gate too.
                queue_capacity: if rng.chance(0.15) {
                    0
                } else {
                    2 + rng.index(30) as u32
                },
                discipline,
                client_tokens_per_sec: if with_budget {
                    config.query_rate * span(rng, 2.0, 20.0)
                } else {
                    0.0
                },
                client_token_burst: if with_budget {
                    span(rng, 1.0, 6.0)
                } else {
                    0.0
                },
                brownout,
                rehome_strikes: if rng.chance(0.4) {
                    1 + rng.index(8) as u32
                } else {
                    0
                },
            }
        };
    }
    plan.validate().expect("generated plan must validate");
    plan
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a run's full metrics (the derived `Debug` rendering is
/// deterministic, including shortest-round-trip float formatting, so
/// the fingerprint moves iff any field's bits move).
fn fingerprint(metrics: &RawMetrics) -> u64 {
    let mut h = FNV_OFFSET;
    for b in format!("{metrics:?}").bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Folds one scenario fingerprint into the campaign fingerprint
/// (order-sensitive, so a swapped result would be caught too).
fn fnv_fold(acc: u64, fp: u64) -> u64 {
    let mut h = acc;
    for b in fp.to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

fn policy_name(p: RepairPolicy) -> &'static str {
    match p {
        RepairPolicy::Off => "off",
        RepairPolicy::Promote => "promote",
        RepairPolicy::PromotePartner => "promote+partner",
    }
}

fn bump(counts: &mut Vec<(&'static str, u64)>, key: &'static str) {
    if let Some(slot) = counts.iter_mut().find(|(k, _)| *k == key) {
        slot.1 += 1;
    } else {
        counts.push((key, 1));
    }
}

/// Escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Appends an embedded JSON document, indenting continuation lines two
/// spaces so the enclosing document stays readable.
fn indent_embedded(out: &mut String, doc: &str) {
    for (i, line) in doc.trim_end().lines().enumerate() {
        if i > 0 {
            out.push_str("\n  ");
        }
        out.push_str(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_plans_validate_and_vary() {
        let config = Config::default();
        let mut distinct = std::collections::BTreeSet::new();
        let (mut with_overload, mut with_rate_mult) = (0usize, 0usize);
        for seed in 0..64 {
            let mut rng = SpRng::seed_from_u64(seed);
            let plan = generate_plan(&mut rng, &config, 1200.0);
            plan.validate().expect("generator must emit valid plans");
            if !plan.overload.is_empty() {
                plan.overload
                    .validate()
                    .expect("generated policy validates");
                with_overload += 1;
            }
            with_rate_mult += plan.phases.iter().filter(|p| p.rate_mult != 1.0).count();
            distinct.insert(plan.to_json());
        }
        assert!(distinct.len() > 32, "plans must vary with the seed");
        assert!(with_overload > 8, "overload policies must see coverage");
        assert!(with_rate_mult > 4, "rate multipliers must see coverage");
    }

    #[test]
    fn small_campaign_is_green_and_thread_invariant() {
        let opts = CampaignOptions {
            count: 4,
            seed: 7,
            threads: 1,
            users: 60,
            cluster_size: 10,
            duration_secs: 400.0,
            inject_panic: None,
        };
        let one = run_campaign(&opts);
        assert_eq!(one.scenarios, 4);
        assert!(
            one.divergences.is_empty(),
            "oracle rejected: {:?}",
            one.divergences
        );
        let four = run_campaign(&CampaignOptions { threads: 4, ..opts });
        assert_eq!(
            one.fingerprint, four.fingerprint,
            "campaign fingerprint must be thread-count invariant"
        );
        let report = one.to_json();
        assert!(report.contains("\"divergences\": []"));
        assert!(report.contains("\"fingerprint\""));
    }

    #[test]
    fn oracle_names_the_first_differing_field() {
        let a = RawMetrics::default();
        let b = RawMetrics {
            queries: 5,
            ..RawMetrics::default()
        };
        let reason = oracle(&a, &b, false).expect("must diverge");
        assert!(reason.contains("queries (0 vs 5)"), "got: {reason}");
        assert_eq!(oracle(&a, &a, false), None);
        // Same bitwise metrics, fault ledger balanced, but an
        // unbalanced overload ledger: the extended identity fires only
        // when a policy was active.
        let mut c = RawMetrics::default();
        c.faults.queries_issued = 10;
        c.faults.answered_direct = 10;
        c.overload.delivered = 9;
        assert_eq!(oracle(&c, &c, false), None);
        let reason = oracle(&c, &c, true).expect("extended conservation must fire");
        assert!(
            reason.contains("extended overload conservation"),
            "got: {reason}"
        );
    }

    #[test]
    fn reproducer_json_embeds_the_scenario() {
        let d = Divergence {
            index: 3,
            trial_seed: 1,
            sim_seed: 2,
            fault_seed: 3,
            scenario_seed: 4,
            reason: "engines diverge on \"queries\"".to_string(),
            plan_json: ScenarioPlan::default().to_json(),
        };
        let doc = d.reproducer_json(&CampaignOptions::default());
        assert!(doc.contains("\"scenario\": {"));
        assert!(doc.contains("\\\"queries\\\""));
        assert!(
            doc.contains(&format!(
                "\"scenario_schema_version\": {SCENARIO_SCHEMA_VERSION}"
            )),
            "reproducers must name the scenario schema they embed"
        );
        assert!(
            doc.contains("\"campaign_seed\""),
            "reproducers must carry the campaign seed"
        );
        // The embedded plan must parse back.
        let start = doc.find("\"scenario\": ").expect("embedded") + "\"scenario\": ".len();
        let embedded: String = doc[start..doc.rfind('}').expect("closing")].to_string();
        ScenarioPlan::from_json(&embedded).expect("embedded plan parses");
    }

    #[test]
    fn injected_panic_is_quarantined_not_fatal() {
        let opts = CampaignOptions {
            count: 3,
            seed: 11,
            threads: 1,
            users: 60,
            cluster_size: 10,
            duration_secs: 300.0,
            inject_panic: Some(1),
        };
        let report = run_campaign(&opts);
        assert_eq!(report.scenarios, 3);
        assert_eq!(report.quarantined.len(), 1, "one scenario must quarantine");
        let q = &report.quarantined[0];
        assert_eq!(q.index, 1);
        assert!(
            q.reason.contains("injected campaign panic"),
            "got: {}",
            q.reason
        );
        assert!(
            !q.snapshot.is_empty(),
            "quarantine must capture a tick-0 snapshot"
        );
        // The other two scenarios complete normally.
        assert_eq!(report.completed.len(), 2);
        // The quarantined scenario contributes nothing to the fold:
        // the same campaign minus scenario 1 folds identically.
        let clean = run_campaign(&CampaignOptions {
            inject_panic: None,
            ..opts
        });
        assert_ne!(report.fingerprint, clean.fingerprint);
        let json = report.to_json();
        assert!(json.contains("\"quarantined\": ["));
        assert!(json.contains("injected campaign panic"));
        // Quarantine reproducers parse back like divergence ones.
        let doc = q.reproducer_json(&opts);
        assert!(doc.contains("\"kind\": \"quarantine\""));
        let start = doc.find("\"scenario\": ").expect("embedded") + "\"scenario\": ".len();
        ScenarioPlan::from_json(&doc[start..doc.rfind('}').expect("closing")])
            .expect("embedded plan parses");
    }

    #[test]
    fn resume_skips_completed_and_reproduces_the_fingerprint() {
        let opts = CampaignOptions {
            count: 4,
            seed: 9,
            threads: 1,
            users: 60,
            cluster_size: 10,
            duration_secs: 300.0,
            inject_panic: None,
        };
        let full = run_campaign(&opts);
        assert_eq!(full.completed.len(), 4);
        // Simulate an interrupted campaign: only the first two
        // scenarios were recorded as green.
        let partial = CampaignResume {
            count: opts.count,
            seed: opts.seed,
            users: opts.users,
            cluster_size: opts.cluster_size,
            duration_secs: opts.duration_secs,
            completed: full.completed[..2].to_vec(),
        };
        let resumed = run_campaign_with(&opts, Some(&partial));
        assert_eq!(
            resumed.fingerprint, full.fingerprint,
            "resumed campaign must reproduce the uninterrupted fingerprint"
        );
        assert_eq!(resumed.completed, full.completed);
        // A resume record whose trial seed doesn't match this
        // campaign's derivation is ignored, not folded.
        let alien = CampaignResume {
            completed: vec![CompletedScenario {
                index: 0,
                trial_seed: 0xdead_beef,
                fingerprint: 42,
            }],
            ..partial
        };
        let rerun = run_campaign_with(&opts, Some(&alien));
        assert_eq!(
            rerun.fingerprint, full.fingerprint,
            "mismatched resume records must re-run, not poison the fold"
        );
    }

    #[test]
    fn campaign_report_round_trips_through_resume_parser() {
        let opts = CampaignOptions {
            count: 3,
            seed: u64::MAX - 5, // exercises the hex path: not f64-exact
            threads: 1,
            users: 60,
            cluster_size: 10,
            duration_secs: 300.0,
            inject_panic: None,
        };
        let report = run_campaign(&opts);
        let resume = CampaignResume::from_report_json(&report.to_json()).expect("parses");
        assert_eq!(resume.count, 3);
        assert_eq!(
            resume.seed,
            u64::MAX - 5,
            "seed_hex must round-trip exactly"
        );
        assert_eq!(resume.users, 60);
        assert_eq!(resume.cluster_size, 10);
        assert_eq!(resume.duration_secs, 300.0);
        assert_eq!(resume.completed, report.completed);
        let resumed = run_campaign_with(&resume.options(1), Some(&resume));
        assert_eq!(resumed.fingerprint, report.fingerprint);
    }

    #[test]
    fn future_campaign_schema_versions_are_rejected_by_name() {
        let future = format!(
            "{{\n  \"schema_version\": {},\n  \"scenarios\": 1,\n  \"seed\": 1\n}}\n",
            CAMPAIGN_SCHEMA_VERSION + 1
        );
        let err = CampaignResume::from_report_json(&future).expect_err("must reject");
        assert!(
            err.contains("newer than this binary's"),
            "rejection must name the version gap: {err}"
        );
        assert!(CampaignResume::from_report_json("not json").is_err());
    }
}
