//! Differential scenario-campaign runner: the standing fuzz gate for
//! the two-engine determinism contract.
//!
//! A campaign fans `count` seeded scenarios across worker threads via
//! the same thread-budget cascade as every other multi-trial driver
//! ([`run_sim_trials`]), so the whole campaign — including its
//! aggregate fingerprint — is bitwise identical at any thread count.
//! Each trial seed deterministically expands into
//!
//! 1. a randomized [`ScenarioPlan`] (phased churn bursts, correlated
//!    mass leaves, split windows, flash crowds on rotated hot keys,
//!    capacity classes, an embedded fault plan, a repair policy),
//! 2. a simulation seed, fault seed, and scenario seed,
//!
//! and the scenario runs through **both** engines
//! ([`Simulation`] and [`ReferenceSimulation`]) with identical
//! options. The differential oracle then demands
//!
//! * bitwise-equal [`RawMetrics`] from the two engines (the
//!   first differing field is named in the divergence reason),
//! * query conservation ([`FaultMetrics::conserved`]
//!   — every issued query accounted exactly once) in both engines,
//! * sane repair/availability invariants (fractions inside `[0, 1]`).
//!
//! Every divergence carries a self-contained reproducer document
//! (seeds + full scenario JSON) so a nightly failure replays locally
//! with `spnet campaign --count 1 --seed <trial_seed>` or by feeding
//! the embedded scenario to `spnet simulate --scenario`.
//!
//! [`FaultMetrics::conserved`]: crate::faults::FaultMetrics::conserved

use sp_model::config::Config;
use sp_model::faults::{FaultPlan, FaultSpec};
use sp_model::repair::RepairPolicy;
use sp_model::scenario::{CapacityClass, PhaseKind, PhaseSpec, ScenarioPlan};
use sp_stats::SpRng;

use crate::engine::{RawMetrics, SimOptions, Simulation};
use crate::reference::ReferenceSimulation;
use crate::scenario::{run_sim_trials, SimTrialOptions};

/// Campaign configuration.
#[derive(Debug, Clone, Copy)]
pub struct CampaignOptions {
    /// Number of scenarios to generate and run.
    pub count: usize,
    /// Root seed; scenario `i` derives everything from the RNG split
    /// `seed → i` (same cascade as [`run_sim_trials`]).
    pub seed: u64,
    /// Worker-thread budget; 0 = one per available core.
    pub threads: usize,
    /// Simulated users per scenario (`Config::graph_size`).
    pub users: usize,
    /// Target cluster size (`Config::cluster_size`).
    pub cluster_size: usize,
    /// Simulated duration per scenario, seconds.
    pub duration_secs: f64,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            count: 32,
            seed: 42,
            threads: 0,
            users: 120,
            cluster_size: 12,
            duration_secs: 1200.0,
        }
    }
}

/// One scenario's campaign outcome.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Scenario index within the campaign.
    pub index: usize,
    /// The split-derived trial seed this scenario expanded from.
    pub trial_seed: u64,
    /// Main simulation seed fed to both engines.
    pub sim_seed: u64,
    /// Dedicated fault-stream seed fed to both engines.
    pub fault_seed: u64,
    /// Dedicated scenario-stream seed fed to both engines.
    pub scenario_seed: u64,
    /// Phase kinds exercised, in declaration order.
    pub phase_kinds: Vec<&'static str>,
    /// Fault kinds of the embedded fault plan.
    pub fault_kinds: Vec<&'static str>,
    /// Number of capacity classes (0 = homogeneous).
    pub capacity_classes: usize,
    /// Repair policy the scenario healed with.
    pub repair: RepairPolicy,
    /// FNV-1a fingerprint of the fast engine's metrics.
    pub fingerprint: u64,
    /// Why the oracle rejected this scenario (`None` = passed).
    pub divergence: Option<String>,
    /// The generated plan, rendered as JSON.
    pub plan_json: String,
}

/// One oracle rejection, with everything needed to replay it.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Scenario index within the campaign.
    pub index: usize,
    /// The split-derived trial seed.
    pub trial_seed: u64,
    /// Main simulation seed.
    pub sim_seed: u64,
    /// Fault-stream seed.
    pub fault_seed: u64,
    /// Scenario-stream seed.
    pub scenario_seed: u64,
    /// First oracle check that failed.
    pub reason: String,
    /// The offending scenario plan, as JSON.
    pub plan_json: String,
}

impl Divergence {
    /// Renders a self-contained reproducer document: population
    /// shape, duration, all three seeds, the failure reason, and the
    /// full scenario plan.
    pub fn reproducer_json(&self, opts: &CampaignOptions) -> String {
        let mut s = String::with_capacity(512 + self.plan_json.len());
        s.push_str("{\n");
        s.push_str(&format!("  \"index\": {},\n", self.index));
        s.push_str(&format!("  \"users\": {},\n", opts.users));
        s.push_str(&format!("  \"cluster_size\": {},\n", opts.cluster_size));
        s.push_str(&format!("  \"duration_secs\": {},\n", opts.duration_secs));
        s.push_str(&format!("  \"campaign_seed\": {},\n", opts.seed));
        s.push_str(&format!("  \"trial_seed\": {},\n", self.trial_seed));
        s.push_str(&format!("  \"sim_seed\": {},\n", self.sim_seed));
        s.push_str(&format!("  \"fault_seed\": {},\n", self.fault_seed));
        s.push_str(&format!("  \"scenario_seed\": {},\n", self.scenario_seed));
        s.push_str(&format!("  \"reason\": {},\n", json_string(&self.reason)));
        s.push_str("  \"scenario\": ");
        indent_embedded(&mut s, &self.plan_json);
        s.push_str("\n}\n");
        s
    }
}

/// Aggregated campaign result.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The options the campaign ran with.
    pub options: CampaignOptions,
    /// Scenarios run (equals `options.count`).
    pub scenarios: usize,
    /// Phase windows exercised per kind, `(kind, count)` sorted by
    /// kind name.
    pub phases_covered: Vec<(&'static str, u64)>,
    /// Fault specs exercised per kind, sorted by kind name.
    pub faults_covered: Vec<(&'static str, u64)>,
    /// Scenarios per repair policy, in [`RepairPolicy::ALL`] order.
    pub repair_covered: Vec<(&'static str, u64)>,
    /// Order-sensitive FNV-1a fold of every scenario fingerprint —
    /// bitwise identical across thread counts and the value the CI
    /// smoke pins.
    pub fingerprint: u64,
    /// Oracle rejections (empty = green).
    pub divergences: Vec<Divergence>,
}

impl CampaignReport {
    /// One-line summary for terminals and smoke greps.
    pub fn summary_line(&self) -> String {
        format!(
            "campaign: {} scenarios, seed {}, fingerprint {:#018x}, divergences {}",
            self.scenarios,
            self.options.seed,
            self.fingerprint,
            self.divergences.len()
        )
    }

    /// Renders the machine-readable campaign report.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        s.push_str(&format!("  \"scenarios\": {},\n", self.scenarios));
        s.push_str(&format!("  \"seed\": {},\n", self.options.seed));
        s.push_str(&format!("  \"users\": {},\n", self.options.users));
        s.push_str(&format!(
            "  \"cluster_size\": {},\n",
            self.options.cluster_size
        ));
        s.push_str(&format!(
            "  \"duration_secs\": {},\n",
            self.options.duration_secs
        ));
        s.push_str(&format!(
            "  \"fingerprint\": \"{:#018x}\",\n",
            self.fingerprint
        ));
        let counts = |pairs: &[(&'static str, u64)]| -> String {
            let body: Vec<String> = pairs.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
            format!("{{{}}}", body.join(", "))
        };
        s.push_str(&format!(
            "  \"phases_covered\": {},\n",
            counts(&self.phases_covered)
        ));
        s.push_str(&format!(
            "  \"faults_covered\": {},\n",
            counts(&self.faults_covered)
        ));
        s.push_str(&format!(
            "  \"repair_covered\": {},\n",
            counts(&self.repair_covered)
        ));
        s.push_str("  \"divergences\": [");
        for (i, d) in self.divergences.iter().enumerate() {
            let sep = if i + 1 < self.divergences.len() {
                ","
            } else {
                ""
            };
            s.push_str(&format!(
                "\n    {{\"index\": {}, \"trial_seed\": {}, \"reason\": {}}}{sep}",
                d.index,
                d.trial_seed,
                json_string(&d.reason)
            ));
        }
        if !self.divergences.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

/// Runs a differential campaign (see module docs).
pub fn run_campaign(opts: &CampaignOptions) -> CampaignReport {
    let config = Config {
        graph_size: opts.users,
        cluster_size: opts.cluster_size,
        ..Config::default()
    };
    let trial_opts = SimTrialOptions {
        trials: opts.count,
        seed: opts.seed,
        threads: opts.threads,
        repair: RepairPolicy::Off,
    };
    let duration = opts.duration_secs;
    let outcomes = run_sim_trials(&trial_opts, |trial_seed, index| {
        run_one(&config, duration, trial_seed, index)
    });

    let mut phases: Vec<(&'static str, u64)> = Vec::new();
    let mut faults: Vec<(&'static str, u64)> = Vec::new();
    let mut repairs: Vec<(&'static str, u64)> = RepairPolicy::ALL
        .iter()
        .map(|p| (policy_name(*p), 0))
        .collect();
    let mut fingerprint = FNV_OFFSET;
    let mut divergences = Vec::new();
    for o in &outcomes {
        for k in &o.phase_kinds {
            bump(&mut phases, k);
        }
        for k in &o.fault_kinds {
            bump(&mut faults, k);
        }
        if let Some(slot) = repairs
            .iter_mut()
            .find(|(name, _)| *name == policy_name(o.repair))
        {
            slot.1 += 1;
        }
        fingerprint = fnv_fold(fingerprint, o.fingerprint);
        if let Some(reason) = &o.divergence {
            divergences.push(Divergence {
                index: o.index,
                trial_seed: o.trial_seed,
                sim_seed: o.sim_seed,
                fault_seed: o.fault_seed,
                scenario_seed: o.scenario_seed,
                reason: reason.clone(),
                plan_json: o.plan_json.clone(),
            });
        }
    }
    phases.sort_unstable();
    faults.sort_unstable();
    CampaignReport {
        options: *opts,
        scenarios: outcomes.len(),
        phases_covered: phases,
        faults_covered: faults,
        repair_covered: repairs,
        fingerprint,
        divergences,
    }
}

/// Expands one trial seed into a scenario, runs both engines, and
/// applies the differential oracle.
fn run_one(config: &Config, duration: f64, trial_seed: u64, index: usize) -> ScenarioOutcome {
    let mut rng = SpRng::seed_from_u64(trial_seed);
    let plan = generate_plan(&mut rng, duration);
    let sim_seed = rng.next_raw();
    let fault_seed = rng.next_raw();
    let scenario_seed = rng.next_raw();
    let opts = SimOptions {
        duration_secs: duration,
        seed: sim_seed,
        fault_seed,
        scenario_seed,
        ..SimOptions::default()
    };
    let fast = Simulation::with_scenario(config, opts, &plan).run();
    let reference = ReferenceSimulation::with_scenario(config, opts, &plan).run();
    let divergence = oracle(&fast, &reference);
    ScenarioOutcome {
        index,
        trial_seed,
        sim_seed,
        fault_seed,
        scenario_seed,
        phase_kinds: plan.phases.iter().map(|p| p.kind.kind_name()).collect(),
        fault_kinds: plan
            .faults
            .faults
            .iter()
            .map(FaultSpec::kind_name)
            .collect(),
        capacity_classes: plan.capacity_classes.len(),
        repair: plan.repair,
        fingerprint: fingerprint(&fast),
        divergence,
        plan_json: plan.to_json(),
    }
}

/// The differential oracle: engine equality, conservation, and range
/// invariants. Returns the first failure's description.
fn oracle(fast: &RawMetrics, reference: &RawMetrics) -> Option<String> {
    if fast != reference {
        return Some(describe_divergence(fast, reference));
    }
    if !fast.faults.conserved() {
        return Some(format!(
            "fast engine violates query conservation: issued {} != direct {} + retry {} \
             + failover {} + lost {}",
            fast.faults.queries_issued,
            fast.faults.answered_direct,
            fast.faults.recovered_retry,
            fast.faults.recovered_failover,
            fast.faults.queries_lost
        ));
    }
    if !reference.faults.conserved() {
        return Some("reference engine violates query conservation".to_string());
    }
    let avail = fast.availability();
    if !(0.0..=1.0).contains(&avail) {
        return Some(format!("availability out of range: {avail}"));
    }
    let reach = fast.repair.final_reachable_fraction;
    if !(0.0..=1.0).contains(&reach) {
        return Some(format!("final_reachable_fraction out of range: {reach}"));
    }
    None
}

/// Names the first differing metrics field so a nightly log localizes
/// the divergence without a debugger.
fn describe_divergence(fast: &RawMetrics, reference: &RawMetrics) -> String {
    let field = if fast.queries != reference.queries {
        format!("queries ({} vs {})", fast.queries, reference.queries)
    } else if fast.cluster_failures != reference.cluster_failures {
        format!(
            "cluster_failures ({} vs {})",
            fast.cluster_failures, reference.cluster_failures
        )
    } else if fast.orphan_events != reference.orphan_events {
        format!(
            "orphan_events ({} vs {})",
            fast.orphan_events, reference.orphan_events
        )
    } else if fast.faults != reference.faults {
        "faults (injection/recovery counters)".to_string()
    } else if fast.repair != reference.repair {
        "repair (promotion/reachability accounting)".to_string()
    } else if fast.timeline != reference.timeline {
        "timeline samples".to_string()
    } else if fast.client_connected_secs.to_bits() != reference.client_connected_secs.to_bits() {
        format!(
            "client_connected_secs ({} vs {})",
            fast.client_connected_secs, reference.client_connected_secs
        )
    } else {
        "load statistics".to_string()
    };
    format!("engines diverge on {field}")
}

/// Generates a randomized-but-valid scenario plan from a dedicated
/// generator stream. Same-kind windows are laid out behind a per-kind
/// cursor, so the plan always validates; everything lands inside
/// `[5%, 95%]` of the run so bootstrap and final accounting stay
/// exercised.
fn generate_plan(rng: &mut SpRng, duration: f64) -> ScenarioPlan {
    let span = |rng: &mut SpRng, lo: f64, hi: f64| lo + rng.unit_f64() * (hi - lo);
    let mut plan = ScenarioPlan::default();

    // Phases: up to four, kinds drawn independently.
    let mut cursors = [duration * 0.05; 4];
    let want_phases = rng.index(5);
    for _ in 0..want_phases {
        let kind_idx = rng.index(4);
        let from = cursors[kind_idx] + span(rng, 0.02, 0.10) * duration;
        let until = from + span(rng, 0.05, 0.20) * duration;
        if until > duration * 0.95 {
            continue; // ran off the end of the run; skip this window
        }
        cursors[kind_idx] = until;
        let kind = match kind_idx {
            0 => PhaseKind::FlashCrowd {
                query_rate_mult: span(rng, 1.5, 6.0),
                hot_shift: rng.index(1024) as u32,
            },
            1 => PhaseKind::ChurnBurst {
                lifespan_mult: span(rng, 0.2, 0.9),
            },
            2 => PhaseKind::MassLeave {
                fraction: span(rng, 0.05, 0.4),
            },
            _ => PhaseKind::Split {
                fraction: span(rng, 0.1, 0.5),
            },
        };
        plan.phases.push(PhaseSpec {
            from_secs: from,
            until_secs: until,
            kind,
        });
    }

    // Capacity classes: up to three.
    for _ in 0..rng.index(4) {
        plan.capacity_classes.push(CapacityClass {
            weight: span(rng, 1.0, 5.0),
            files_mult: span(rng, 0.1, 4.0),
            lifespan_mult: span(rng, 0.5, 2.0),
        });
    }

    // Embedded faults: each family joins with its own probability.
    let mut faults = FaultPlan::default();
    if rng.chance(0.5) {
        faults.faults.push(FaultSpec::CrashFraction {
            at_secs: span(rng, 0.2, 0.6) * duration,
            fraction: span(rng, 0.1, 0.35),
        });
    }
    if rng.chance(0.4) {
        let from = span(rng, 0.1, 0.5) * duration;
        faults.faults.push(FaultSpec::MessageLoss {
            from_secs: from,
            until_secs: from + span(rng, 0.1, 0.3) * duration,
            drop_prob: span(rng, 0.05, 0.3),
        });
    }
    if rng.chance(0.3) {
        let from = span(rng, 0.1, 0.5) * duration;
        faults.faults.push(FaultSpec::FlakyPartners {
            from_secs: from,
            until_secs: from + span(rng, 0.1, 0.3) * duration,
            flake_prob: span(rng, 0.1, 0.5),
        });
    }
    plan.faults = faults;
    plan.repair = RepairPolicy::ALL[rng.index(RepairPolicy::ALL.len())];
    plan.validate().expect("generated plan must validate");
    plan
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a run's full metrics (the derived `Debug` rendering is
/// deterministic, including shortest-round-trip float formatting, so
/// the fingerprint moves iff any field's bits move).
fn fingerprint(metrics: &RawMetrics) -> u64 {
    let mut h = FNV_OFFSET;
    for b in format!("{metrics:?}").bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Folds one scenario fingerprint into the campaign fingerprint
/// (order-sensitive, so a swapped result would be caught too).
fn fnv_fold(acc: u64, fp: u64) -> u64 {
    let mut h = acc;
    for b in fp.to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

fn policy_name(p: RepairPolicy) -> &'static str {
    match p {
        RepairPolicy::Off => "off",
        RepairPolicy::Promote => "promote",
        RepairPolicy::PromotePartner => "promote+partner",
    }
}

fn bump(counts: &mut Vec<(&'static str, u64)>, key: &'static str) {
    if let Some(slot) = counts.iter_mut().find(|(k, _)| *k == key) {
        slot.1 += 1;
    } else {
        counts.push((key, 1));
    }
}

/// Escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Appends an embedded JSON document, indenting continuation lines two
/// spaces so the enclosing document stays readable.
fn indent_embedded(out: &mut String, doc: &str) {
    for (i, line) in doc.trim_end().lines().enumerate() {
        if i > 0 {
            out.push_str("\n  ");
        }
        out.push_str(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_plans_validate_and_vary() {
        let mut distinct = std::collections::BTreeSet::new();
        for seed in 0..64 {
            let mut rng = SpRng::seed_from_u64(seed);
            let plan = generate_plan(&mut rng, 1200.0);
            plan.validate().expect("generator must emit valid plans");
            distinct.insert(plan.to_json());
        }
        assert!(distinct.len() > 32, "plans must vary with the seed");
    }

    #[test]
    fn small_campaign_is_green_and_thread_invariant() {
        let opts = CampaignOptions {
            count: 4,
            seed: 7,
            threads: 1,
            users: 60,
            cluster_size: 10,
            duration_secs: 400.0,
        };
        let one = run_campaign(&opts);
        assert_eq!(one.scenarios, 4);
        assert!(
            one.divergences.is_empty(),
            "oracle rejected: {:?}",
            one.divergences
        );
        let four = run_campaign(&CampaignOptions { threads: 4, ..opts });
        assert_eq!(
            one.fingerprint, four.fingerprint,
            "campaign fingerprint must be thread-count invariant"
        );
        let report = one.to_json();
        assert!(report.contains("\"divergences\": []"));
        assert!(report.contains("\"fingerprint\""));
    }

    #[test]
    fn oracle_names_the_first_differing_field() {
        let a = RawMetrics::default();
        let b = RawMetrics {
            queries: 5,
            ..RawMetrics::default()
        };
        let reason = oracle(&a, &b).expect("must diverge");
        assert!(reason.contains("queries (0 vs 5)"), "got: {reason}");
        assert_eq!(oracle(&a, &a), None);
    }

    #[test]
    fn reproducer_json_embeds_the_scenario() {
        let d = Divergence {
            index: 3,
            trial_seed: 1,
            sim_seed: 2,
            fault_seed: 3,
            scenario_seed: 4,
            reason: "engines diverge on \"queries\"".to_string(),
            plan_json: ScenarioPlan::default().to_json(),
        };
        let doc = d.reproducer_json(&CampaignOptions::default());
        assert!(doc.contains("\"scenario\": {"));
        assert!(doc.contains("\\\"queries\\\""));
        // The embedded plan must parse back.
        let start = doc.find("\"scenario\": ").expect("embedded") + "\"scenario\": ".len();
        let embedded: String = doc[start..doc.rfind('}').expect("closing")].to_string();
        ScenarioPlan::from_json(&embedded).expect("embedded plan parses");
    }
}
