//! The pre-rework simulation engine, preserved verbatim.
//!
//! [`ReferenceSimulation`] is the original event loop: a
//! [`BinaryEventQueue`] that accumulates tombstones for departed
//! peers, a fresh `Vec` clone of the partner list on every join /
//! update / adaptation event, and O(degree) connection counting on
//! every charged transmission. It exists for two reasons:
//!
//! 1. **Equivalence testing** — the fast engine
//!    ([`Simulation`](crate::engine::Simulation)) must produce
//!    *bitwise identical* [`RawMetrics`] on every seed; the
//!    determinism tests run both engines over a grid of
//!    configurations and compare.
//! 2. **Performance trajectory** — `repro_bench` times both engines
//!    on the standard churn workload and records the events/sec ratio
//!    in `repro_out/BENCH_sim.json`, so the speedup is measured
//!    against the real baseline rather than asserted.
//!
//! Aside from the `events_delivered` counter (needed to report
//! events/sec at all), nothing here should be "improved" — that is
//! the point of the file. New behavior goes into `engine.rs`, and the
//! equivalence tests decide whether it is still the same simulator.

use sp_design::local_rules::{advise, LocalAction, LocalView};
use sp_graph::PartitionMonitor;
use sp_model::config::Config;
use sp_model::faults::FaultPlan;
use sp_model::instance::{NetworkInstance, Topology};
use sp_model::load::Load;
use sp_model::query_model::QueryModel;
use sp_stats::dist::Sampler;
use sp_stats::{Poisson, SpRng};

use sp_model::scenario::ScenarioPlan;
use sp_model::snapshot::{SnapReader, SnapWriter, SnapshotError, ENGINE_REFERENCE};

use crate::checkpoint;
use crate::engine::{ForwardPolicy, RawMetrics, SimOptions, TimelinePoint};
use crate::events::{BinaryEventQueue, ClusterId, Event, PeerId, SimTime};
use crate::faults::{FaultAction, FaultState, QueryOutcome, Submission};
use crate::network::SimNetwork;
use crate::overload::{Admission, OverloadState};
use crate::phases::{PhaseAction, ScenarioState};
use crate::repair::{ReachPoint, RepairPending};

/// The original (pre-rework) simulation engine. Same behavior as
/// [`Simulation`](crate::engine::Simulation), slower mechanics.
pub struct ReferenceSimulation {
    /// Mutable network state (public for scenario inspection).
    pub net: SimNetwork,
    queue: BinaryEventQueue,
    rng: SpRng,
    now: SimTime,
    config: Config,
    model: QueryModel,
    opts: SimOptions,
    metrics: RawMetrics,
    delivered: u64,
    /// Fault-injection state machine (inert for an empty plan).
    faults: FaultState,
    // BFS scratch over cluster slots.
    stamp: Vec<u32>,
    stamp_cur: u32,
    bfs_parent: Vec<ClusterId>,
    bfs_depth: Vec<u16>,
    bfs_order: Vec<ClusterId>,
    /// Every query transmission of the current flood, including
    /// duplicates dropped at the receiver. The flag marks copies lost
    /// in flight (sender charged, receiver untouched).
    bfs_tx: Vec<(ClusterId, ClusterId, bool)>,
    bfs_candidates: Vec<ClusterId>,
    /// Per-cluster-slot headless-window bookkeeping (grown on demand).
    repair_pending: Vec<RepairPending>,
    /// Union-find over the live super-peer overlay, rebuilt per
    /// observation.
    monitor: PartitionMonitor,
    /// Set while a crash fault's victims run through `on_leave`:
    /// repair engages only for fault-injected deaths.
    in_fault_crash: bool,
    /// Scenario-phase state machine (inert for an empty plan).
    scenario: ScenarioState,
    /// Overload-control runtime (inert for an empty policy); mirror of
    /// the fast engine's field, called at identical simulated times.
    overload: OverloadState,
    /// The scenario plan the state machine was built from, retained so
    /// snapshots are self-contained.
    scenario_plan: ScenarioPlan,
}

impl ReferenceSimulation {
    /// Builds a simulation from a configuration: generates an
    /// `sp-model` instance, mirrors it into mutable state, and
    /// schedules every peer's initial events.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: &Config, opts: SimOptions) -> Self {
        Self::with_faults(config, opts, &FaultPlan::default())
    }

    /// Builds a simulation that injects the given fault plan; the
    /// oracle counterpart of
    /// [`Simulation::with_faults`](crate::engine::Simulation::with_faults).
    ///
    /// # Panics
    ///
    /// Panics if the configuration or the fault plan is invalid.
    pub fn with_faults(config: &Config, opts: SimOptions, plan: &FaultPlan) -> Self {
        Self::build(config, opts, plan, &ScenarioPlan::default())
    }

    /// Builds a simulation that plays the given scenario plan; the
    /// oracle counterpart of
    /// [`Simulation::with_scenario`](crate::engine::Simulation::with_scenario).
    /// The plan's `repair` policy overrides `opts.repair`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration or the scenario plan is invalid.
    pub fn with_scenario(config: &Config, opts: SimOptions, plan: &ScenarioPlan) -> Self {
        let mut opts = opts;
        opts.repair = plan.repair;
        if !plan.overload.is_empty() {
            opts.overload = plan.overload;
        }
        Self::build(config, opts, &plan.faults, plan)
    }

    fn build(config: &Config, opts: SimOptions, plan: &FaultPlan, scenario: &ScenarioPlan) -> Self {
        plan.validate().expect("invalid fault plan");
        let mut rng = SpRng::seed_from_u64(opts.seed);
        let inst = NetworkInstance::generate(config, &mut rng).expect("invalid configuration");
        let model = QueryModel::from_config(&config.query_model);
        let mut sim = ReferenceSimulation {
            net: SimNetwork::new(),
            queue: BinaryEventQueue::new(),
            rng,
            now: 0.0,
            config: config.clone(),
            model,
            opts,
            metrics: RawMetrics::default(),
            delivered: 0,
            faults: FaultState::new(plan.clone(), opts.fault_seed),
            stamp: Vec::new(),
            stamp_cur: 0,
            bfs_parent: Vec::new(),
            bfs_depth: Vec::new(),
            bfs_order: Vec::new(),
            bfs_tx: Vec::new(),
            bfs_candidates: Vec::new(),
            repair_pending: Vec::new(),
            monitor: PartitionMonitor::new(),
            in_fault_crash: false,
            scenario: ScenarioState::new(scenario, opts.scenario_seed),
            overload: OverloadState::new(opts.overload),
            scenario_plan: scenario.clone(),
        };
        sim.bootstrap(&inst);
        sim
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Accumulated metrics (mostly useful after [`run`](Self::run)).
    pub fn metrics(&self) -> &RawMetrics {
        &self.metrics
    }

    /// Events dispatched so far, *excluding* tombstones dropped by the
    /// generation guard — the number comparable across engines.
    pub fn events_delivered(&self) -> u64 {
        self.delivered
    }

    fn bootstrap(&mut self, inst: &NetworkInstance) {
        // Mirror clusters and membership.
        let mut cluster_ids = Vec::with_capacity(inst.num_clusters());
        for cluster in &inst.clusters {
            let lead = cluster.partners[0];
            let lead_peer = &inst.peers[lead as usize];
            let (files, lifespan) = self
                .scenario
                .admit_peer(lead_peer.files, lead_peer.lifespan_secs);
            let p = self.net.add_peer(files, 0.0);
            let c = self.net.add_cluster(p, inst.config.ttl);
            self.schedule_peer_events(p, lifespan);
            for &extra in &cluster.partners[1..] {
                let info = &inst.peers[extra as usize];
                let (files, lifespan) = self.scenario.admit_peer(info.files, info.lifespan_secs);
                let q = self.net.add_peer(files, 0.0);
                self.net.attach_client(q, c);
                self.net.promote_specific(c, q).expect("just attached");
                self.schedule_peer_events(q, lifespan);
            }
            for &cl in &cluster.clients {
                let info = &inst.peers[cl as usize];
                let (files, lifespan) = self.scenario.admit_peer(info.files, info.lifespan_secs);
                let q = self.net.add_peer(files, 0.0);
                self.net.attach_client(q, c);
                self.schedule_peer_events(q, lifespan);
            }
            cluster_ids.push(c);
        }
        // Mirror overlay edges.
        match &inst.topology {
            Topology::Explicit(g) => {
                for (a, b) in g.edges() {
                    self.net
                        .add_edge(cluster_ids[a as usize], cluster_ids[b as usize]);
                }
            }
            Topology::Complete { n } => {
                for a in 0..*n {
                    for b in (a + 1)..*n {
                        self.net.add_edge(cluster_ids[a], cluster_ids[b]);
                    }
                }
            }
        }
        debug_assert!(self.net.check_invariants().is_ok());
        // Periodic events.
        self.queue
            .schedule(self.opts.sample_interval_secs, Event::Sample);
        if let Some(adapt) = self.opts.adapt {
            for (i, &c) in cluster_ids.iter().enumerate() {
                // Stagger ticks so clusters don't adapt in lockstep.
                let offset = adapt.interval_secs * (1.0 + i as f64 / cluster_ids.len() as f64);
                self.queue.schedule(
                    offset,
                    Event::AdaptTick {
                        cluster: c,
                        generation: 0,
                    },
                );
            }
        }
        // Compile the fault plan into first-class queue events (both
        // engines schedule these at the same bootstrap point so
        // same-time events keep identical FIFO order).
        for (index, time, start) in self.faults.schedule() {
            self.queue.schedule(time, Event::Fault { index, start });
        }
        // Scenario phases immediately after the fault schedule, so the
        // two engines' FIFO sequence numbers line up here too.
        for (index, time, start) in self.scenario.schedule() {
            self.queue.schedule(time, Event::Phase { index, start });
        }
        let _ = inst; // roles fully mirrored
    }

    fn schedule_peer_events(&mut self, peer: PeerId, lifespan: f64) {
        let generation = self.net.peer_generation(peer);
        if self.overload.active() {
            // Same semantic point as the fast engine's
            // `reset_peer_handles`: the slot belongs to a new peer, so
            // its token bucket and strike streak restart.
            self.overload.reset_peer(peer);
        }
        self.queue
            .schedule(self.now + lifespan, Event::PeerLeave { peer, generation });
        if self.config.query_rate > 0.0 {
            let dt = self.exp_delay(self.config.query_rate * self.scenario.query_rate_mult());
            self.queue
                .schedule(self.now + dt, Event::Query { peer, generation });
        }
        if self.config.update_rate > 0.0 {
            let dt = self.exp_delay(self.config.update_rate);
            self.queue
                .schedule(self.now + dt, Event::Update { peer, generation });
        }
    }

    fn exp_delay(&mut self, rate: f64) -> f64 {
        debug_assert!(rate > 0.0);
        -self.rng.unit_f64().max(f64::MIN_POSITIVE).ln() / rate
    }

    /// Runs until the configured duration, then finalizes accounting.
    pub fn run(&mut self) -> RawMetrics {
        self.run_to(self.opts.duration_secs);
        self.now = self.opts.duration_secs;
        self.finalize();
        std::mem::take(&mut self.metrics)
    }

    /// Dispatches every event with time ≤ `bound`, leaving later
    /// events queued and the clock at the last dispatched event; the
    /// checkpoint boundary used by [`ReferenceSimulation::snapshot`]
    /// (mirror of [`Simulation::run_to`](crate::engine::Simulation::run_to)).
    pub fn run_to(&mut self, bound: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > bound {
                break;
            }
            let (t, event) = self.queue.pop().expect("peeked event vanished");
            self.now = t;
            self.dispatch(event);
        }
    }

    /// Whether overload control is active for this run (from the
    /// options on a fresh run, or the snapshot on a restored one).
    pub fn overload_active(&self) -> bool {
        self.overload.active()
    }

    /// Serializes the full mutable state of the run; the oracle
    /// counterpart of [`Simulation::snapshot`](crate::engine::Simulation::snapshot),
    /// sealed with its own engine tag so the two formats cannot be
    /// cross-restored by accident. The binary queue is rebuilt by
    /// re-pushing `(time, seq)` triples — pop order is total, so the
    /// restored pop sequence is exact.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        checkpoint::snap_config(&self.config, &mut w);
        checkpoint::snap_opts(&self.opts, &mut w);
        w.str(&self.faults.plan().to_json());
        w.str(&self.scenario_plan.to_json());
        w.f64(self.now);
        for s in self.rng.state() {
            w.u64(s);
        }
        self.queue.snap(&mut w);
        self.net.snap(&mut w);
        checkpoint::snap_raw_metrics(&self.metrics, &mut w);
        w.u64(self.delivered);
        self.faults.snap_state(&mut w);
        checkpoint::snap_repair_pending(&self.repair_pending, &mut w);
        self.scenario.snap_state(&mut w);
        self.overload.snap_state(&mut w);
        w.bool(self.in_fault_crash);
        w.seal(ENGINE_REFERENCE)
    }

    /// Rebuilds a reference simulation from a snapshot produced by
    /// [`ReferenceSimulation::snapshot`]; resuming yields metrics
    /// bitwise identical to the uninterrupted run.
    pub fn restore(data: &[u8]) -> Result<ReferenceSimulation, SnapshotError> {
        let mut r = SnapReader::open(data)?;
        r.expect_engine(ENGINE_REFERENCE)?;
        let config = checkpoint::unsnap_config(&mut r)?;
        config
            .validate()
            .map_err(|e| SnapshotError::Malformed(format!("embedded config: {e}")))?;
        let opts = checkpoint::unsnap_opts(&mut r)?;
        let fault_plan = FaultPlan::from_json(r.str("fault plan json")?)
            .map_err(|e| SnapshotError::Malformed(format!("embedded fault plan: {e}")))?;
        fault_plan
            .validate()
            .map_err(|e| SnapshotError::Malformed(format!("embedded fault plan: {e}")))?;
        let scenario_plan = ScenarioPlan::from_json(r.str("scenario plan json")?)
            .map_err(|e| SnapshotError::Malformed(format!("embedded scenario plan: {e}")))?;
        scenario_plan
            .validate()
            .map_err(|e| SnapshotError::Malformed(format!("embedded scenario plan: {e}")))?;
        let now = r.f64("now")?;
        let mut rng_state = [0u64; 4];
        for s in &mut rng_state {
            *s = r.u64("rng state")?;
        }
        let queue = BinaryEventQueue::unsnap(&mut r)?;
        let net = SimNetwork::unsnap(&mut r)?;
        let metrics = checkpoint::unsnap_raw_metrics(&mut r)?;
        let delivered = r.u64("delivered")?;
        let mut faults = FaultState::new(fault_plan, opts.fault_seed);
        faults.unsnap_state(&mut r)?;
        let repair_pending = checkpoint::unsnap_repair_pending(&mut r)?;
        let mut scenario = ScenarioState::new(&scenario_plan, opts.scenario_seed);
        scenario.unsnap_state(&mut r)?;
        let overload = OverloadState::unsnap_state(opts.overload, &mut r)?;
        let in_fault_crash = r.bool("in_fault_crash")?;
        r.finish()?;
        let model = QueryModel::from_config(&config.query_model);
        Ok(ReferenceSimulation {
            net,
            queue,
            rng: SpRng::from_state(rng_state),
            now,
            config,
            model,
            opts,
            metrics,
            delivered,
            faults,
            stamp: Vec::new(),
            stamp_cur: 0,
            bfs_parent: Vec::new(),
            bfs_depth: Vec::new(),
            bfs_order: Vec::new(),
            bfs_tx: Vec::new(),
            bfs_candidates: Vec::new(),
            repair_pending,
            monitor: PartitionMonitor::new(),
            in_fault_crash,
            scenario,
            overload,
            scenario_plan,
        })
    }

    fn dispatch(&mut self, event: Event) {
        // Count only events that survive their generation guard, so
        // the number is comparable with the tombstone-free engine.
        match event {
            Event::PeerLeave { peer, generation }
            | Event::Query { peer, generation }
            | Event::Update { peer, generation }
            | Event::ClientRejoin {
                peer, generation, ..
            } => {
                if self.net.peer(peer, generation).is_none() {
                    return;
                }
            }
            Event::RecruitPartner {
                cluster,
                generation,
            }
            | Event::AdaptTick {
                cluster,
                generation,
            }
            | Event::Repair {
                cluster,
                generation,
            } => {
                if self.net.cluster(cluster, generation).is_none() {
                    return;
                }
            }
            Event::PeerJoin | Event::Sample | Event::Fault { .. } | Event::Phase { .. } => {}
        }
        self.delivered += 1;
        match event {
            Event::PeerJoin => self.on_join(),
            Event::PeerLeave { peer, generation } => self.on_leave(peer, generation),
            Event::Query { peer, generation } => self.on_query(peer, generation),
            Event::Update { peer, generation } => self.on_update(peer, generation),
            Event::ClientRejoin {
                peer,
                generation,
                orphaned_at,
                attempt,
            } => self.on_rejoin(peer, generation, orphaned_at, attempt),
            Event::RecruitPartner {
                cluster,
                generation,
            } => self.on_recruit(cluster, generation),
            Event::AdaptTick {
                cluster,
                generation,
            } => self.on_adapt(cluster, generation),
            Event::Repair {
                cluster,
                generation,
            } => self.on_repair(cluster, generation),
            Event::Sample => self.on_sample(),
            Event::Fault { index, start } => self.on_fault(index, start),
            Event::Phase { index, start } => self.on_phase(index, start),
        }
    }

    // ---- connection counting ----

    fn partner_connections(&self, cluster: ClusterId) -> f64 {
        let c = self.net.clusters[cluster as usize]
            .as_ref()
            .expect("cluster alive");
        let neighbor_links: usize = c
            .neighbors
            .iter()
            .map(|&nb| {
                self.net.clusters[nb as usize]
                    .as_ref()
                    .map(|n| n.partners.len())
                    .unwrap_or(0)
            })
            .sum();
        c.partner_connections(neighbor_links)
    }

    fn client_connections(&self, cluster: ClusterId) -> f64 {
        self.net.clusters[cluster as usize]
            .as_ref()
            .map(|c| c.partners.len() as f64)
            .unwrap_or(1.0)
    }

    // ---- message charging ----

    #[allow(clippy::too_many_arguments)]
    fn charge_pair(
        &mut self,
        from: PeerId,
        to: PeerId,
        bytes: f64,
        send_units: f64,
        recv_units: f64,
        from_conns: f64,
        to_conns: f64,
    ) {
        let mux = self.config.costs.multiplex_per_connection;
        if self.net.peer_mut(from).is_some() {
            self.net.counters[from as usize].send(bytes, send_units + mux * from_conns);
        }
        if self.net.peer_mut(to).is_some() {
            self.net.counters[to as usize].recv(bytes, recv_units + mux * to_conns);
        }
    }

    /// Charges the failed attempts of one submission sequence: a
    /// dropped attempt costs the client its send (the packet left, the
    /// partner never saw it); a flaked attempt reached the partner
    /// (both endpoints pay) but produced no response.
    #[allow(clippy::too_many_arguments)]
    fn charge_submission_failures(
        &mut self,
        client: PeerId,
        partner: PeerId,
        drops: u32,
        flakes: u32,
        bytes: f64,
        send_units: f64,
        recv_units: f64,
        c_conns: f64,
        p_conns: f64,
    ) {
        let mux = self.config.costs.multiplex_per_connection;
        for _ in 0..drops {
            if self.net.peer_mut(client).is_some() {
                self.net.counters[client as usize].send(bytes, send_units + mux * c_conns);
            }
        }
        for _ in 0..flakes {
            self.charge_pair(
                client, partner, bytes, send_units, recv_units, c_conns, p_conns,
            );
        }
    }

    /// Picks the next round-robin partner of a cluster.
    fn rr_partner(&mut self, cluster: ClusterId) -> PeerId {
        let c = self.net.cluster_mut(cluster).expect("cluster alive");
        let idx = c.rr % c.partners.len();
        c.rr = c.rr.wrapping_add(1);
        c.partners[idx]
    }

    // ---- event handlers ----

    fn on_join(&mut self) {
        let files = self.config.population.sample_files(&mut self.rng);
        let lifespan = self.config.population.sample_lifespan(&mut self.rng);
        // Post-draw transform: capacity class + active churn burst.
        let (files, lifespan) = self.scenario.admit_peer(files, lifespan);
        let target_clusters = self.config.num_clusters();
        let peer = self.net.add_peer(files, self.now);
        if self.net.num_alive_clusters() < target_clusters || self.net.num_alive_clusters() == 0 {
            // Become a new super-peer: index own collection, wire into
            // the overlay at the suggested outdegree.
            let c = self.net.add_cluster(peer, self.config.ttl);
            if let Some(cl) = self.net.cluster_mut(c) {
                cl.last_adapt_at = self.now;
            }
            if self.net.peer_mut(peer).is_some() {
                let units = self.config.costs.process_join_units(files as f64);
                self.net.counters[peer as usize].work(units);
            }
            let want = self.config.avg_outdegree.round().max(1.0) as usize;
            let mut wired = 0;
            let mut attempts = 0;
            while wired < want && attempts < want * 4 {
                attempts += 1;
                if let Some(nb) = self.net.random_cluster(&mut self.rng) {
                    if nb != c && self.net.add_edge(c, nb) {
                        wired += 1;
                    }
                } else {
                    break;
                }
            }
            let generation = self.net.clusters[c as usize]
                .as_ref()
                .expect("new cluster")
                .generation;
            // A fresh cluster starts with a lone partner; under a
            // redundancy policy it must recruit up to k like any
            // cluster that lost a partner would.
            if self.config.redundancy_k > 1 {
                self.queue.schedule(
                    self.now + self.opts.recruit_delay_secs,
                    Event::RecruitPartner {
                        cluster: c,
                        generation,
                    },
                );
            }
            if let Some(adapt) = self.opts.adapt {
                self.queue.schedule(
                    self.now + adapt.interval_secs,
                    Event::AdaptTick {
                        cluster: c,
                        generation,
                    },
                );
            }
        } else {
            let c = self
                .net
                .random_cluster(&mut self.rng)
                .expect("clusters exist");
            self.attach_and_charge_join(peer, c);
        }
        self.schedule_peer_events(peer, lifespan);
    }

    /// Overload bookkeeping for a cluster about to be removed (mirror
    /// of the fast engine's helper).
    fn ov_cluster_down(&mut self, c: ClusterId) {
        if self.overload.active() {
            self.overload
                .cluster_down(c, self.now, &mut self.metrics.overload);
        }
    }

    /// Re-homing target for a struck-out client (mirror of the fast
    /// engine's pure fold: min queue depth, ties to lowest id).
    fn rehome_target(&self, from: ClusterId) -> Option<ClusterId> {
        let mut best: Option<(usize, ClusterId)> = None;
        for c in self.net.alive_clusters() {
            if c == from {
                continue;
            }
            if self.net.clusters[c as usize]
                .as_ref()
                .expect("alive")
                .partners
                .is_empty()
            {
                continue;
            }
            let d = self.overload.depth(c);
            if best.is_none_or(|(bd, bc)| d < bd || (d == bd && c < bc)) {
                best = Some((d, c));
            }
        }
        best.map(|(_, c)| c)
    }

    /// Credits a peer's connected time as a client up to now and
    /// restarts its attachment clock.
    fn credit_client_time(&mut self, peer: PeerId) {
        if let Some(p) = self.net.peer_mut(peer) {
            if p.cluster.is_some() {
                let attached_at = p.attached_at;
                p.attached_at = self.now;
                self.metrics.client_connected_secs += self.now - attached_at;
            }
        }
    }

    /// Attaches `peer` as a client of `c`, charging the join protocol
    /// (metadata to every partner).
    fn attach_and_charge_join(&mut self, peer: PeerId, c: ClusterId) {
        self.net.attach_client(peer, c);
        if let Some(p) = self.net.peer_mut(peer) {
            p.attached_at = self.now;
        }
        let files = self.net.peers[peer as usize]
            .as_ref()
            .expect("peer alive")
            .files as f64;
        let cm = self.config.costs;
        let partners: Vec<PeerId> = self.net.clusters[c as usize]
            .as_ref()
            .expect("cluster alive")
            .partners
            .clone();
        let p_conns = self.partner_connections(c);
        let c_conns = self.client_connections(c);
        for partner in partners {
            self.charge_pair(
                peer,
                partner,
                cm.join_bytes(files),
                cm.send_join_units(files),
                cm.recv_join_units(files),
                c_conns,
                p_conns,
            );
            if self.net.peer_mut(partner).is_some() {
                self.net.counters[partner as usize].work(cm.process_join_units(files));
            }
        }
    }

    fn on_leave(&mut self, peer: PeerId, generation: u32) {
        if self.net.peer(peer, generation).is_none() {
            return;
        }
        let info = self.net.peers[peer as usize].as_ref().expect("alive");
        let is_partner = info.is_partner;
        let attached = info.cluster;
        let attached_at = info.attached_at;

        if let Some(cluster) = attached {
            if is_partner {
                let c = self.net.detach_partner(peer);
                let survivors = self.net.clusters[c as usize]
                    .as_ref()
                    .expect("cluster alive")
                    .partners
                    .len();
                if survivors == 0 {
                    if self.repair_engages(c) {
                        self.begin_headless(c);
                    } else {
                        self.fail_cluster(c);
                    }
                } else if survivors < self.config.redundancy_k {
                    let generation = self.net.clusters[c as usize]
                        .as_ref()
                        .expect("cluster alive")
                        .generation;
                    self.queue.schedule(
                        self.now + self.opts.recruit_delay_secs,
                        Event::RecruitPartner {
                            cluster: c,
                            generation,
                        },
                    );
                }
            } else {
                self.metrics.client_connected_secs += self.now - attached_at;
                self.net.detach_client(peer);
                self.dissolve_if_abandoned(cluster);
            }
            let _ = cluster;
        } else if !is_partner {
            // Left while orphaned: the whole orphan period counts as
            // disconnected.
            self.metrics.client_disconnected_secs += self.now - attached_at;
        }

        let exited = self.net.remove_peer(peer);
        let alive_for = self.now - exited.joined_at;
        if alive_for > 1.0 {
            let rate = self.net.counters[peer as usize].mean_rate(alive_for);
            if is_partner {
                self.metrics.sp_in.push(rate.in_bw);
                self.metrics.sp_out.push(rate.out_bw);
                self.metrics.sp_proc.push(rate.proc);
            } else {
                self.metrics.client_in.push(rate.in_bw);
                self.metrics.client_out.push(rate.out_bw);
                self.metrics.client_proc.push(rate.proc);
            }
        }
        // Stable population: a departure triggers a fresh arrival.
        let dt = self.exp_delay(1.0 / self.opts.replenish_mean_secs.max(1e-9));
        self.queue.schedule(self.now + dt, Event::PeerJoin);
    }

    /// All partners died: orphan every client and dissolve the cluster.
    fn fail_cluster(&mut self, c: ClusterId) {
        self.metrics.cluster_failures += 1;
        let clients: Vec<PeerId> = self.net.clusters[c as usize]
            .as_ref()
            .expect("cluster alive")
            .clients
            .clone();
        for client in clients {
            let attached_at = self.net.peers[client as usize]
                .as_ref()
                .expect("client alive")
                .attached_at;
            self.metrics.client_connected_secs += self.now - attached_at;
            self.net.detach_client(client);
            if let Some(p) = self.net.peer_mut(client) {
                p.attached_at = self.now; // start of the orphan period
            }
            self.metrics.orphan_events += 1;
            let generation = self.net.peer_generation(client);
            let dt = self.exp_delay(1.0 / self.opts.rejoin_mean_secs.max(1e-9));
            self.queue.schedule(
                self.now + dt,
                Event::ClientRejoin {
                    peer: client,
                    generation,
                    orphaned_at: self.now,
                    attempt: 1,
                },
            );
        }
        self.ov_cluster_down(c);
        self.net.remove_cluster(c);
    }

    // ---- overlay repair (see `crate::repair`) ----

    /// Grows the pending slab to cover cluster slot `c` and returns a
    /// mutable handle to its slot.
    fn repair_slot(&mut self, c: ClusterId) -> &mut RepairPending {
        if self.repair_pending.len() <= c as usize {
            self.repair_pending
                .resize(c as usize + 1, RepairPending::default());
        }
        &mut self.repair_pending[c as usize]
    }

    /// Whether a cluster that just lost its last partner enters a
    /// headless repair window instead of dissolving (mirror of the
    /// fast engine's predicate).
    fn repair_engages(&self, c: ClusterId) -> bool {
        self.opts.repair.promotes()
            && self.in_fault_crash
            && !self.net.clusters[c as usize]
                .as_ref()
                .expect("cluster alive")
                .clients
                .is_empty()
    }

    /// Every partner was killed by fault injection and the policy
    /// promotes: enter the headless window and schedule the election.
    fn begin_headless(&mut self, c: ClusterId) {
        self.metrics.cluster_failures += 1;
        let generation = self.net.clusters[c as usize]
            .as_ref()
            .expect("cluster alive")
            .generation;
        let now = self.now;
        *self.repair_slot(c) = RepairPending {
            active: true,
            down_since: now,
            adapt_stalled: false,
        };
        self.queue.schedule(
            self.now + self.opts.repair_delay_secs,
            Event::Repair {
                cluster: c,
                generation,
            },
        );
    }

    /// A headless cluster whose last client departed has nobody left
    /// to elect: dissolve it like an unrepaired failure.
    fn dissolve_if_abandoned(&mut self, c: ClusterId) {
        if !self
            .repair_pending
            .get(c as usize)
            .map(|p| p.active)
            .unwrap_or(false)
        {
            return;
        }
        let empty = {
            let cl = self.net.clusters[c as usize].as_ref().expect("alive");
            cl.partners.is_empty() && cl.clients.is_empty()
        };
        if !empty {
            return;
        }
        self.repair_pending[c as usize] = RepairPending::default();
        self.metrics.repair.abandoned += 1;
        self.ov_cluster_down(c);
        self.net.remove_cluster(c);
    }

    /// The repair election (mirror of the fast engine; see its
    /// documentation for the full protocol).
    fn on_repair(&mut self, cluster: ClusterId, generation: u32) {
        let pending = *self.repair_slot(cluster);
        self.repair_pending[cluster as usize] = RepairPending::default();
        let (has_partner, has_client) = {
            let c = self.net.clusters[cluster as usize].as_ref().expect("alive");
            (!c.partners.is_empty(), !c.clients.is_empty())
        };
        if has_partner {
            return; // already healed through another path
        }
        if !has_client {
            self.metrics.repair.abandoned += 1;
            self.ov_cluster_down(cluster);
            self.net.remove_cluster(cluster);
            return;
        }
        // Election: highest capacity (most files shared), ties broken
        // by lowest peer id — no RNG draw.
        let winner = {
            let c = self.net.clusters[cluster as usize].as_ref().expect("alive");
            let mut best = c.clients[0];
            let mut best_files = self.net.peers[best as usize]
                .as_ref()
                .expect("client alive")
                .files;
            for &cand in &c.clients[1..] {
                let files = self.net.peers[cand as usize]
                    .as_ref()
                    .expect("client alive")
                    .files;
                if files > best_files || (files == best_files && cand < best) {
                    best = cand;
                    best_files = files;
                }
            }
            best
        };
        self.net
            .promote_specific(cluster, winner)
            .expect("elected client is attached");
        self.credit_client_time(winner);
        let cm = self.config.costs;
        let own_files = self.net.peers[winner as usize]
            .as_ref()
            .expect("alive")
            .files as f64;
        if self.net.peer_mut(winner).is_some() {
            self.net.counters[winner as usize].work(cm.process_join_units(own_files));
        }
        let clients: Vec<PeerId> = self.net.clusters[cluster as usize]
            .as_ref()
            .expect("alive")
            .clients
            .clone();
        let p_conns = self.partner_connections(cluster);
        let c_conns = self.client_connections(cluster);
        for &cl in &clients {
            let files = self.net.peers[cl as usize]
                .as_ref()
                .expect("client alive")
                .files as f64;
            self.charge_pair(
                cl,
                winner,
                cm.join_bytes(files),
                cm.send_join_units(files),
                cm.recv_join_units(files),
                c_conns,
                p_conns,
            );
            if self.net.peer_mut(winner).is_some() {
                self.net.counters[winner as usize].work(cm.process_join_units(files));
            }
            self.metrics.repair.reindexed_clients += 1;
            self.metrics.repair.reindex_bytes += cm.join_bytes(files);
        }
        self.metrics.repair.promotions += 1;
        self.metrics
            .repair
            .time_to_repair
            .record(self.now - pending.down_since);
        if pending.adapt_stalled {
            if let Some(adapt) = self.opts.adapt {
                if let Some(c) = self.net.cluster_mut(cluster) {
                    c.growth = 0;
                    c.max_response_hop = 0;
                    c.last_adapt_at = self.now;
                }
                self.queue.schedule(
                    self.now + adapt.interval_secs,
                    Event::AdaptTick {
                        cluster,
                        generation,
                    },
                );
            }
        }
        if self.opts.repair.recruits_partner() && self.config.redundancy_k > 1 {
            self.metrics.repair.partner_recruitments += 1;
            self.queue.schedule(
                self.now + self.opts.recruit_delay_secs,
                Event::RecruitPartner {
                    cluster,
                    generation,
                },
            );
        }
    }

    /// Rebuilds the partition monitor over the live super-peer overlay
    /// and returns (component count, largest-component peer fraction).
    fn observe_components(&mut self) -> (u32, f64) {
        let ReferenceSimulation { net, monitor, .. } = self;
        monitor.begin_epoch();
        for c in net.alive_clusters() {
            let cl = net.clusters[c as usize].as_ref().expect("alive");
            monitor.insert(c, cl.size() as u64);
        }
        for c in net.alive_clusters() {
            let cl = net.clusters[c as usize].as_ref().expect("alive");
            for &nb in &cl.neighbors {
                monitor.union(c, nb);
            }
        }
        let total = net.peers.iter().filter(|p| p.is_some()).count() as u64;
        let frac = if total == 0 {
            1.0
        } else {
            monitor.largest_weight() as f64 / total as f64
        };
        (monitor.component_count(), frac)
    }

    /// Appends one reachability observation to the repair timeline.
    fn observe_reachability(&mut self) {
        let (components, frac) = self.observe_components();
        self.metrics.repair.reachability.push(ReachPoint {
            time: self.now,
            components,
            reachable_fraction: frac,
        });
    }

    fn on_rejoin(&mut self, peer: PeerId, generation: u32, orphaned_at: SimTime, attempt: u32) {
        let Some(info) = self.net.peer(peer, generation) else {
            return;
        };
        if info.cluster.is_some() {
            return; // already re-homed (e.g. by an adaptive action)
        }
        // The connection protocol is a message exchange like any other:
        // while a loss window is active, this attempt's handshake can
        // be dropped in flight (fault stream, drawn after the discovery
        // pick so the main RNG sequence is untouched).
        let target = self.net.random_cluster(&mut self.rng);
        // Discovery can hand back a headless cluster (super-peer dead,
        // repair pending): re-resolve at the next tick *without*
        // burning a retry-budget attempt — the client never reached a
        // live peer to be refused by.
        if let Some(c) = target {
            if self.net.clusters[c as usize]
                .as_ref()
                .expect("alive")
                .partners
                .is_empty()
            {
                let dt = self.exp_delay(1.0 / self.opts.rejoin_mean_secs.max(1e-9));
                self.queue.schedule(
                    self.now + dt,
                    Event::ClientRejoin {
                        peer,
                        generation,
                        orphaned_at,
                        attempt,
                    },
                );
                return;
            }
        }
        let delivered =
            target.is_some() && !(self.faults.drops_possible() && self.faults.draw_drop());
        match target {
            Some(c) if delivered => {
                let downtime = self.now - orphaned_at;
                self.metrics.client_disconnected_secs += downtime;
                self.metrics.downtime.push(downtime);
                self.metrics.faults.reconnect.record(downtime);
                self.attach_and_charge_join(peer, c);
            }
            _ => {
                if target.is_some() {
                    self.metrics.faults.injected_drop += 1;
                }
                if self
                    .faults
                    .rejoin_cap()
                    .is_some_and(|cap| attempt >= cap.max(1))
                {
                    self.give_up_rejoin(peer, orphaned_at);
                } else {
                    let dt = self.exp_delay(1.0 / self.opts.rejoin_mean_secs.max(1e-9));
                    self.queue.schedule(
                        self.now + dt,
                        Event::ClientRejoin {
                            peer,
                            generation,
                            orphaned_at,
                            attempt: attempt + 1,
                        },
                    );
                }
            }
        }
    }

    /// An orphaned client exhausted the fault plan's rejoin-attempt
    /// cap: it departs for good, mirroring the orphaned-leave
    /// accounting (and, like any departure, triggers a replenishing
    /// arrival so the population stays stable).
    fn give_up_rejoin(&mut self, peer: PeerId, orphaned_at: SimTime) {
        self.metrics.client_disconnected_secs += self.now - orphaned_at;
        self.metrics.faults.orphan_gave_up += 1;
        let exited = self.net.remove_peer(peer);
        let alive_for = self.now - exited.joined_at;
        if alive_for > 1.0 {
            let rate = self.net.counters[peer as usize].mean_rate(alive_for);
            self.metrics.client_in.push(rate.in_bw);
            self.metrics.client_out.push(rate.out_bw);
            self.metrics.client_proc.push(rate.proc);
        }
        let dt = self.exp_delay(1.0 / self.opts.replenish_mean_secs.max(1e-9));
        self.queue.schedule(self.now + dt, Event::PeerJoin);
    }

    /// Applies a fault-plan event. Crash faults resolve their victims
    /// against the alive-cluster list (same iteration order in both
    /// engines) and then force each victim partner through the normal
    /// `on_leave` path, so recruitment, cluster failure, and orphaning
    /// behave exactly like organic churn.
    fn on_fault(&mut self, index: u32, start: bool) {
        let alive: Vec<ClusterId> = self.net.alive_clusters().collect();
        match self.faults.on_fault_event(index, start, &alive) {
            FaultAction::None => {}
            FaultAction::Crash(victims) => {
                // Snapshot (peer, generation) pairs first: crashing one
                // cluster's partners must not shift a later victim's
                // membership mid-iteration.
                let mut doomed: Vec<(PeerId, u32)> = Vec::new();
                for &c in &victims {
                    if let Some(cl) = self.net.clusters[c as usize].as_ref() {
                        for &p in &cl.partners {
                            doomed.push((p, self.net.peer_generation(p)));
                        }
                    }
                }
                // Repair engages only for fault-injected deaths:
                // organic churn keeps the legacy dissolve-and-orphan
                // path, so an empty fault plan is bitwise inert under
                // every repair policy.
                self.in_fault_crash = true;
                for (p, generation) in doomed {
                    if self.net.peer(p, generation).is_some() {
                        self.metrics.faults.injected_crash += 1;
                        self.on_leave(p, generation);
                    }
                }
                self.in_fault_crash = false;
                // Probe connectivity right after the blast.
                self.observe_reachability();
            }
        }
    }

    /// Applies a scenario phase boundary; the oracle counterpart of
    /// the fast engine's `on_phase`. Mass leaves run victims through
    /// the normal `on_leave` path with `in_fault_crash` left false
    /// (organic-style churn: repair does not engage); split windows
    /// route through the fault layer's partition depth counters.
    fn on_phase(&mut self, index: u32, start: bool) {
        match self.scenario.on_phase_event(index, start) {
            PhaseAction::None => {}
            PhaseAction::MassLeave { fraction } => {
                // Snapshot alive peers in slot order (identical in
                // both engines), then generation-guard each victim:
                // an earlier victim's departure cascade must not
                // shift later picks.
                let alive: Vec<(PeerId, u32)> = (0..self.net.peers.len())
                    .filter(|&slot| self.net.peers[slot].is_some())
                    .map(|slot| (slot as PeerId, self.net.peer_generation(slot as PeerId)))
                    .collect();
                let victims = self.scenario.pick_mass_leave(alive.len(), fraction);
                for i in victims {
                    let (p, generation) = alive[i];
                    if self.net.peer(p, generation).is_some() {
                        self.on_leave(p, generation);
                    }
                }
                // Probe connectivity right after the blast, exactly
                // like an injected crash wave.
                self.observe_reachability();
            }
            PhaseAction::SplitBegin { fraction } => {
                let alive: Vec<ClusterId> = self.net.alive_clusters().collect();
                let resolved = self.scenario.pick_split(&alive, fraction);
                self.faults.scenario_partition_begin(&resolved);
                self.scenario.store_split(index, resolved);
            }
            PhaseAction::SplitEnd => {
                let resolved = self.scenario.take_split(index);
                self.faults.scenario_partition_end(&resolved);
            }
        }
    }

    fn on_recruit(&mut self, cluster: ClusterId, generation: u32) {
        if self.net.cluster(cluster, generation).is_none() {
            return;
        }
        let have = self.net.clusters[cluster as usize]
            .as_ref()
            .expect("alive")
            .partners
            .len();
        if have >= self.config.redundancy_k {
            return;
        }
        if have == 0 {
            // Headless repair window: the deterministic election owns
            // the promotion; recruitment resumes only after it runs.
            return;
        }
        match self.net.promote_client(cluster, &mut self.rng) {
            Some(new_partner) => {
                self.credit_client_time(new_partner);
                self.charge_index_transfer(cluster, new_partner);
                // Still short (e.g. two partners died)? Keep recruiting.
                let have = self.net.clusters[cluster as usize]
                    .as_ref()
                    .expect("alive")
                    .partners
                    .len();
                if have < self.config.redundancy_k {
                    self.queue.schedule(
                        self.now + self.opts.recruit_delay_secs,
                        Event::RecruitPartner {
                            cluster,
                            generation,
                        },
                    );
                }
            }
            None => {
                // No client to promote yet; retry later.
                self.queue.schedule(
                    self.now + self.opts.recruit_delay_secs,
                    Event::RecruitPartner {
                        cluster,
                        generation,
                    },
                );
            }
        }
    }

    /// A freshly promoted partner downloads the full cluster index from
    /// a co-partner (or rebuilds from its own collection if alone).
    fn charge_index_transfer(&mut self, cluster: ClusterId, new_partner: PeerId) {
        let cm = self.config.costs;
        let (total_files, donor) = {
            let c = self.net.clusters[cluster as usize].as_ref().expect("alive");
            let donor = c.partners.iter().copied().find(|&p| p != new_partner);
            (c.total_files as f64, donor)
        };
        let p_conns = self.partner_connections(cluster);
        match donor {
            Some(d) => {
                self.charge_pair(
                    d,
                    new_partner,
                    cm.join_bytes(total_files),
                    cm.send_join_units(total_files),
                    cm.recv_join_units(total_files),
                    p_conns,
                    p_conns,
                );
                if self.net.peer_mut(new_partner).is_some() {
                    self.net.counters[new_partner as usize]
                        .work(cm.process_join_units(total_files));
                }
            }
            None => {
                if self.net.peer_mut(new_partner).is_some() {
                    self.net.counters[new_partner as usize]
                        .work(cm.process_join_units(total_files));
                }
            }
        }
    }

    fn on_query(&mut self, peer: PeerId, generation: u32) {
        let Some(info) = self.net.peer(peer, generation) else {
            return;
        };
        let source_cluster = info.cluster;
        let is_partner = info.is_partner;
        // Always reschedule the next query first.
        let dt = self.exp_delay(self.config.query_rate * self.scenario.query_rate_mult());
        self.queue
            .schedule(self.now + dt, Event::Query { peer, generation });
        let Some(mut sc) = source_cluster else {
            return; // orphaned client cannot search
        };

        // Deterministic re-homing: a client that has struck out
        // against a persistently saturated super-peer detaches and
        // joins the shallowest-queue live cluster before submitting,
        // paying the Table 2 join cost. Target choice is a pure fold
        // (min queue depth, ties to lowest cluster id) — no RNG draw,
        // the same winner in both engines.
        if !is_partner && self.overload.active() && self.overload.should_rehome(peer) {
            if let Some(target) = self.rehome_target(sc) {
                let files = self.net.peers[peer as usize]
                    .as_ref()
                    .expect("peer alive")
                    .files as f64;
                let partners_len = self.net.clusters[target as usize]
                    .as_ref()
                    .expect("alive")
                    .partners
                    .len();
                self.credit_client_time(peer);
                self.net.detach_client(peer);
                self.attach_and_charge_join(peer, target);
                self.metrics.overload.rehomed += 1;
                self.metrics.overload.rehome_bytes +=
                    partners_len as f64 * self.config.costs.join_bytes(files);
                self.overload.rehomed(peer);
                sc = target;
            }
        }

        let cm = self.config.costs;
        let j = self.model.sample_query(&mut self.rng);
        // Post-draw transform: rotate the Zipf head while a flash
        // crowd is active (identity otherwise).
        let j = self.scenario.shift_query(j, self.model.num_classes());
        let qbytes = cm.query_bytes();
        let (send_q, recv_q) = (cm.send_query_units(), cm.recv_query_units());

        // Client → super-peer submission, driven through the fault
        // plan's timeout/retry/failover state machine. Partner-sourced
        // queries submit to themselves: always a draw-free direct hit.
        if is_partner {
            self.metrics.faults.record_submission(&Submission::DIRECT);
        } else {
            let partners_len = self.net.clusters[sc as usize]
                .as_ref()
                .expect("alive")
                .partners
                .len();
            if partners_len == 0 {
                // Headless window: issued into the void and lost.
                self.metrics.faults.queries_issued += 1;
                self.metrics.faults.queries_lost += 1;
                self.metrics.repair.queries_during_outage += 1;
                return;
            }
            let sub = self.faults.submit_query(partners_len);
            let primary = self.rr_partner(sc);
            let c_conns = self.client_connections(sc);
            let p_conns = self.partner_connections(sc);
            self.charge_submission_failures(
                peer,
                primary,
                sub.primary_drops,
                sub.primary_flakes,
                qbytes,
                send_q,
                recv_q,
                c_conns,
                p_conns,
            );
            let lost = match sub.outcome {
                QueryOutcome::Direct | QueryOutcome::Retry => {
                    self.charge_pair(peer, primary, qbytes, send_q, recv_q, c_conns, p_conns);
                    false
                }
                QueryOutcome::Failover => {
                    let failover = self.rr_partner(sc);
                    self.charge_submission_failures(
                        peer,
                        failover,
                        sub.failover_drops,
                        sub.failover_flakes,
                        qbytes,
                        send_q,
                        recv_q,
                        c_conns,
                        p_conns,
                    );
                    self.charge_pair(peer, failover, qbytes, send_q, recv_q, c_conns, p_conns);
                    false
                }
                QueryOutcome::Lost => {
                    if partners_len >= 2 {
                        let failover = self.rr_partner(sc);
                        self.charge_submission_failures(
                            peer,
                            failover,
                            sub.failover_drops,
                            sub.failover_flakes,
                            qbytes,
                            send_q,
                            recv_q,
                            c_conns,
                            p_conns,
                        );
                    }
                    true
                }
            };
            self.metrics.faults.record_submission(&sub);
            if lost {
                return; // every attempt failed: the query never floods
            }
        }

        // Overload admission: the submission reached a live partner,
        // so the super-peer now decides whether to take the work.
        // Rejected queries never flood (the client's copy dies at the
        // super-peer's door) and land in the rejected ledger; admitted
        // ones may flood with a brownout-degraded TTL/fanout. The
        // whole gate is draw-free, so the empty policy is bitwise
        // inert.
        let ttl = self.net.clusters[sc as usize].as_ref().expect("alive").ttl;
        let (ttl, fanout_limit) = if self.overload.active() {
            match self.overload.admit(
                sc,
                peer,
                is_partner,
                self.now,
                ttl,
                &mut self.metrics.overload,
            ) {
                Admission::Rejected => return,
                Admission::Admitted { ttl, fanout_limit } => (ttl, fanout_limit),
            }
        } else {
            (ttl, None)
        };

        // Flood over the cluster overlay. A brownout fanout cap rides
        // the forwarding policy for just this flood.
        let saved_policy = self.opts.forward_policy;
        if let Some(f) = fanout_limit {
            let cap = match saved_policy {
                ForwardPolicy::FloodAll => f as usize,
                ForwardPolicy::RandomSubset { fanout } => fanout.min(f as usize),
            };
            self.opts.forward_policy = ForwardPolicy::RandomSubset { fanout: cap };
        }
        self.flood_bfs(sc, ttl);
        self.opts.forward_policy = saved_policy;

        // Charge every recorded transmission (first copies and dropped
        // duplicates alike — both consume bandwidth and processing).
        // A copy lost in flight still charges the sender — the packet
        // left — but the receiver neither pays nor advances its
        // round-robin cursor.
        let txs = std::mem::take(&mut self.bfs_tx);
        let mux = self.config.costs.multiplex_per_connection;
        for &(v, u, lost_in_flight) in &txs {
            let sender = self.rr_partner(v);
            let v_conns = self.partner_connections(v);
            if lost_in_flight {
                if self.net.peer_mut(sender).is_some() {
                    self.net.counters[sender as usize].send(qbytes, send_q + mux * v_conns);
                }
                continue;
            }
            let receiver = self.rr_partner(u);
            let u_conns = self.partner_connections(u);
            self.charge_pair(sender, receiver, qbytes, send_q, recv_q, v_conns, u_conns);
        }
        self.bfs_tx = txs;

        // Process queries, sample results, route responses.
        let order = std::mem::take(&mut self.bfs_order);
        let mut total_results = 0u64;
        let mut deepest_response = 0u16;
        for &v in &order {
            let vu = v as usize;
            let depth = self.bfs_depth[vu];
            // Index probe + sampled results.
            let x_tot = self.net.clusters[vu].as_ref().expect("alive").total_files;
            let lambda = self.model.expected_matches_for(j, x_tot as f64);
            let results = Poisson::new(lambda).sample(&mut self.rng);
            let probe_units = cm.process_query_units(results as f64);
            let prober = self.rr_partner(v);
            if self.net.peer_mut(prober).is_some() {
                self.net.counters[prober as usize].work(probe_units);
            }
            total_results += results;
            if results == 0 {
                continue;
            }
            deepest_response = deepest_response.max(depth);
            // Response travels the reverse path to the source.
            let members = self.net.clusters[vu].as_ref().expect("alive").size() as u64;
            let addrs = results.min(members) as f64;
            let rbytes = cm.response_bytes(addrs, results as f64);
            let r_send = cm.send_response_units(addrs, results as f64);
            let r_recv = cm.recv_response_units(addrs, results as f64);
            let mut hop = v;
            while hop != sc {
                let parent = self.bfs_parent[hop as usize];
                let sender = self.rr_partner(hop);
                let receiver = self.rr_partner(parent);
                let s_conns = self.partner_connections(hop);
                let r_conns = self.partner_connections(parent);
                self.charge_pair(sender, receiver, rbytes, r_send, r_recv, s_conns, r_conns);
                hop = parent;
            }
            // Deliver to a client source.
            if !is_partner {
                let partner = self.rr_partner(sc);
                let p_conns = self.partner_connections(sc);
                let c_conns = self.client_connections(sc);
                self.charge_pair(partner, peer, rbytes, r_send, r_recv, p_conns, c_conns);
            }
        }
        if let Some(c) = self.net.cluster_mut(sc) {
            c.max_response_hop = c.max_response_hop.max(deepest_response);
        }
        self.bfs_order = order;
        self.metrics.queries += 1;
        self.metrics.results.push(total_results as f64);
    }

    fn on_update(&mut self, peer: PeerId, generation: u32) {
        let Some(info) = self.net.peer(peer, generation) else {
            return;
        };
        let cluster = info.cluster;
        let is_partner = info.is_partner;
        let dt = self.exp_delay(self.config.update_rate);
        self.queue
            .schedule(self.now + dt, Event::Update { peer, generation });
        let Some(c) = cluster else { return };
        let cm = self.config.costs;
        let partners: Vec<PeerId> = self.net.clusters[c as usize]
            .as_ref()
            .expect("alive")
            .partners
            .clone();
        let p_conns = self.partner_connections(c);
        if is_partner {
            if self.net.peer_mut(peer).is_some() {
                self.net.counters[peer as usize].work(cm.process_update_units());
            }
            for other in partners.into_iter().filter(|&p| p != peer) {
                self.charge_pair(
                    peer,
                    other,
                    cm.update_bytes(),
                    cm.send_update_units(),
                    cm.recv_update_units(),
                    p_conns,
                    p_conns,
                );
                if self.net.peer_mut(other).is_some() {
                    self.net.counters[other as usize].work(cm.process_update_units());
                }
            }
        } else {
            let c_conns = self.client_connections(c);
            for partner in partners {
                self.charge_pair(
                    peer,
                    partner,
                    cm.update_bytes(),
                    cm.send_update_units(),
                    cm.recv_update_units(),
                    c_conns,
                    p_conns,
                );
                if self.net.peer_mut(partner).is_some() {
                    self.net.counters[partner as usize].work(cm.process_update_units());
                }
            }
        }
    }

    fn on_adapt(&mut self, cluster: ClusterId, generation: u32) {
        let Some(adapt) = self.opts.adapt else { return };
        if self.net.cluster(cluster, generation).is_none() {
            return;
        }
        if self.net.clusters[cluster as usize]
            .as_ref()
            .expect("alive")
            .partners
            .is_empty()
        {
            // Headless window: no partner to measure or act. Stall the
            // adaptation loop; the repair election restarts it.
            self.repair_slot(cluster).adapt_stalled = true;
            return;
        }
        // Average the partners' window loads over the *measured* window
        // length — ticks are staggered, so the first window is longer
        // than the nominal interval.
        let (partners, window_secs): (Vec<PeerId>, f64) = {
            let c = self.net.clusters[cluster as usize].as_ref().expect("alive");
            (c.partners.clone(), (self.now - c.last_adapt_at).max(1e-9))
        };
        let mut load = Load::ZERO;
        for &p in &partners {
            if self.net.peer_mut(p).is_some() {
                load += self.net.counters[p as usize].take_window(window_secs);
            }
        }
        load = load.scaled(1.0 / partners.len().max(1) as f64);
        let view = {
            let c = self.net.clusters[cluster as usize].as_ref().expect("alive");
            LocalView {
                load,
                limit: adapt.limit,
                num_clients: c.clients.len(),
                num_neighbors: c.neighbors.len(),
                num_partners: c.partners.len(),
                ttl: c.ttl,
                max_response_hop: c.max_response_hop,
                cluster_growing: c.growth > 0,
            }
        };
        if let Some(&action) = advise(&view).first() {
            self.apply_local_action(cluster, action);
            self.metrics.adapt_actions += 1;
        }
        // Reset observation window.
        if let Some(c) = self.net.cluster_mut(cluster) {
            c.growth = 0;
            c.max_response_hop = 0;
            c.last_adapt_at = self.now;
            let generation = c.generation;
            self.queue.schedule(
                self.now + adapt.interval_secs,
                Event::AdaptTick {
                    cluster,
                    generation,
                },
            );
        }
    }

    fn apply_local_action(&mut self, cluster: ClusterId, action: LocalAction) {
        match action {
            LocalAction::AcceptClients => {}
            LocalAction::PromotePartner => {
                if let Some(p) = self.net.promote_client(cluster, &mut self.rng) {
                    self.credit_client_time(p);
                    self.charge_index_transfer(cluster, p);
                }
            }
            LocalAction::SplitCluster => self.split_cluster(cluster),
            LocalAction::Coalesce => self.coalesce_cluster(cluster),
            LocalAction::IncreaseOutdegree => {
                if let Some(nb) = self.net.random_cluster(&mut self.rng) {
                    self.net.add_edge(cluster, nb);
                }
            }
            LocalAction::DecreaseTtl => {
                if let Some(c) = self.net.cluster_mut(cluster) {
                    if c.ttl > 1 {
                        c.ttl -= 1;
                    }
                }
            }
            LocalAction::Resign => self.coalesce_cluster(cluster),
        }
    }

    /// Splits half the clients into a fresh cluster led by a promoted
    /// client.
    fn split_cluster(&mut self, cluster: ClusterId) {
        let movers: Vec<PeerId> = {
            let Some(c) = self.net.cluster_mut(cluster) else {
                return;
            };
            if c.clients.len() < 2 {
                return;
            }
            let half = c.clients.len() / 2;
            c.clients[..half].to_vec()
        };
        // The first mover leads the new cluster.
        let lead = movers[0];
        self.credit_client_time(lead);
        self.net.detach_client(lead);
        let files = self.net.peers[lead as usize].as_ref().expect("alive").files as f64;
        let new_cluster = self.net.add_cluster(lead, {
            self.net.clusters[cluster as usize]
                .as_ref()
                .expect("alive")
                .ttl
        });
        if let Some(cl) = self.net.cluster_mut(new_cluster) {
            cl.last_adapt_at = self.now;
        }
        if self.net.peer_mut(lead).is_some() {
            self.net.counters[lead as usize].work(self.config.costs.process_join_units(files));
        }
        self.net.add_edge(new_cluster, cluster);
        // Inherit one neighbor to stay searchable.
        if let Some(&nb) = self.net.clusters[cluster as usize]
            .as_ref()
            .expect("alive")
            .neighbors
            .first()
        {
            self.net.add_edge(new_cluster, nb);
        }
        for mover in movers.into_iter().skip(1) {
            self.credit_client_time(mover);
            self.net.detach_client(mover);
            self.attach_and_charge_join(mover, new_cluster);
        }
        let generation = self.net.clusters[new_cluster as usize]
            .as_ref()
            .expect("alive")
            .generation;
        // The offspring starts with a lone partner; recruit up to k.
        if self.config.redundancy_k > 1 {
            self.queue.schedule(
                self.now + self.opts.recruit_delay_secs,
                Event::RecruitPartner {
                    cluster: new_cluster,
                    generation,
                },
            );
        }
        if let Some(adapt) = self.opts.adapt {
            self.queue.schedule(
                self.now + adapt.interval_secs,
                Event::AdaptTick {
                    cluster: new_cluster,
                    generation,
                },
            );
        }
    }

    /// Dissolves the cluster into a neighbor (or any random cluster):
    /// clients and partners all become clients elsewhere.
    fn coalesce_cluster(&mut self, cluster: ClusterId) {
        let target = {
            // A headless cluster (repair pending) cannot absorb the
            // members — nobody would index them.
            let has_partners = |x: ClusterId| {
                !self.net.clusters[x as usize]
                    .as_ref()
                    .expect("alive")
                    .partners
                    .is_empty()
            };
            let c = self.net.clusters[cluster as usize].as_ref().expect("alive");
            c.neighbors
                .iter()
                .copied()
                .find(|&x| has_partners(x))
                .or_else(|| {
                    // No neighbor: any other live cluster.
                    self.net
                        .alive_clusters()
                        .find(|&x| x != cluster && has_partners(x))
                })
        };
        let Some(target) = target else {
            return; // last cluster standing cannot dissolve
        };
        let (clients, partners): (Vec<PeerId>, Vec<PeerId>) = {
            let c = self.net.clusters[cluster as usize].as_ref().expect("alive");
            (c.clients.clone(), c.partners.clone())
        };
        for cl in clients {
            self.credit_client_time(cl);
            self.net.detach_client(cl);
            self.attach_and_charge_join(cl, target);
        }
        for p in partners {
            self.net.detach_partner(p);
            self.attach_and_charge_join(p, target);
        }
        self.ov_cluster_down(cluster);
        self.net.remove_cluster(cluster);
    }

    fn on_sample(&mut self) {
        let clusters = self.net.num_alive_clusters();
        let mut sizes = 0usize;
        let mut ttl_sum = 0.0;
        let mut deg_sum = 0.0;
        for c in self.net.alive_clusters() {
            let cl = self.net.clusters[c as usize].as_ref().expect("alive");
            sizes += cl.size();
            ttl_sum += cl.ttl as f64;
            deg_sum += cl.neighbors.len() as f64;
        }
        let peers = self.net.peers.iter().filter(|p| p.is_some()).count();
        self.metrics.timeline.push(TimelinePoint {
            time: self.now,
            clusters,
            peers,
            mean_cluster_size: if clusters > 0 {
                sizes as f64 / clusters as f64
            } else {
                0.0
            },
            mean_ttl: if clusters > 0 {
                ttl_sum / clusters as f64
            } else {
                0.0
            },
            mean_outdegree: if clusters > 0 {
                deg_sum / clusters as f64
            } else {
                0.0
            },
        });
        self.queue
            .schedule(self.now + self.opts.sample_interval_secs, Event::Sample);
        if self.overload.active() {
            self.overload
                .sample(self.now, clusters as u64, &mut self.metrics.overload);
        }
        self.observe_reachability();
    }

    fn finalize(&mut self) {
        // Account still-alive peers.
        for slot in 0..self.net.peers.len() {
            let Some(peer) = self.net.peers[slot].as_ref() else {
                continue;
            };
            let alive_for = self.now - peer.joined_at;
            if alive_for > 1.0 {
                let rate = self.net.counters[slot].mean_rate(alive_for);
                if peer.is_partner {
                    self.metrics.sp_in.push(rate.in_bw);
                    self.metrics.sp_out.push(rate.out_bw);
                    self.metrics.sp_proc.push(rate.proc);
                } else {
                    self.metrics.client_in.push(rate.in_bw);
                    self.metrics.client_out.push(rate.out_bw);
                    self.metrics.client_proc.push(rate.proc);
                }
            }
            if !peer.is_partner {
                if peer.cluster.is_some() {
                    self.metrics.client_connected_secs += self.now - peer.attached_at;
                } else {
                    self.metrics.client_disconnected_secs += self.now - peer.attached_at;
                }
            }
        }
        let (components, frac) = self.observe_components();
        self.metrics.repair.reachability.push(ReachPoint {
            time: self.now,
            components,
            reachable_fraction: frac,
        });
        self.metrics.repair.final_components = components;
        self.metrics.repair.final_reachable_fraction = frac;
        if self.overload.active() {
            self.overload.finalize(self.now, &mut self.metrics.overload);
        }
    }

    /// TTL-bounded BFS over live clusters into the scratch arrays;
    /// fills `bfs_order`, `bfs_depth`, `bfs_parent`, and records every
    /// query transmission (including duplicates that the receiver will
    /// drop) in `bfs_tx`, honoring the configured forwarding policy.
    fn flood_bfs(&mut self, src: ClusterId, ttl: u16) {
        let n = self.net.clusters.len();
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.bfs_parent.resize(n, 0);
            self.bfs_depth.resize(n, 0);
        }
        self.stamp_cur = self.stamp_cur.wrapping_add(1);
        if self.stamp_cur == 0 {
            self.stamp.fill(0);
            self.stamp_cur = 1;
        }
        self.bfs_order.clear();
        self.bfs_tx.clear();
        self.stamp[src as usize] = self.stamp_cur;
        self.bfs_depth[src as usize] = 0;
        self.bfs_parent[src as usize] = src;
        self.bfs_order.push(src);
        // Hoisted fault-window flags: a fault-free flood takes none of
        // the fault branches and makes no fault-stream draws.
        let part_on = self.faults.partitions_possible();
        let drop_on = self.faults.drops_possible();
        let delay_on = self.faults.delays_possible();
        let mut head = 0;
        while head < self.bfs_order.len() {
            let v = self.bfs_order[head];
            head += 1;
            let d = self.bfs_depth[v as usize];
            if d >= ttl {
                continue;
            }
            let Some(c) = self.net.clusters[v as usize].as_ref() else {
                continue;
            };
            // Candidate targets: all neighbors except the arrival link.
            let parent = self.bfs_parent[v as usize];
            let mut candidates = std::mem::take(&mut self.bfs_candidates);
            candidates.clear();
            candidates.extend(
                c.neighbors
                    .iter()
                    .copied()
                    .filter(|&u| v == src || u != parent),
            );
            // Apply the forwarding policy.
            if let ForwardPolicy::RandomSubset { fanout } = self.opts.forward_policy {
                if candidates.len() > fanout {
                    // Partial Fisher–Yates: the first `fanout` entries
                    // become a uniform sample.
                    for i in 0..fanout {
                        let j = i + self.rng.index(candidates.len() - i);
                        candidates.swap(i, j);
                    }
                    candidates.truncate(fanout);
                }
            }
            let v_part = part_on && self.faults.is_partitioned(v);
            for &u in &candidates {
                // Partitioned link: severed before anything is sent
                // (no charge, no rr advance, no discovery).
                if part_on && (v_part || self.faults.is_partitioned(u)) {
                    self.metrics.faults.injected_partition_block += 1;
                    continue;
                }
                // Headless neighbor (repair pending): no partner to
                // receive the copy — the edge stays up but carries
                // nothing. No charge, no fault draw, no discovery.
                if self.net.clusters[u as usize]
                    .as_ref()
                    .expect("cluster alive")
                    .partners
                    .is_empty()
                {
                    continue;
                }
                // Message loss: the copy left the sender (charged at
                // replay) but never arrives — the target is neither
                // charged nor discovered through this edge.
                if drop_on && self.faults.draw_drop() {
                    self.metrics.faults.injected_drop += 1;
                    self.bfs_tx.push((v, u, true));
                    continue;
                }
                if delay_on {
                    if let Some(extra) = self.faults.draw_delay() {
                        self.metrics.faults.injected_delay += 1;
                        self.metrics.faults.delay_added_secs += extra;
                    }
                }
                self.bfs_tx.push((v, u, false));
                if self.stamp[u as usize] != self.stamp_cur {
                    self.stamp[u as usize] = self.stamp_cur;
                    self.bfs_depth[u as usize] = d + 1;
                    self.bfs_parent[u as usize] = v;
                    self.bfs_order.push(u);
                }
            }
            self.bfs_candidates = candidates;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_engine_runs_and_counts_events() {
        let cfg = Config {
            graph_size: 100,
            cluster_size: 10,
            ..Config::default()
        };
        let mut sim = ReferenceSimulation::new(
            &cfg,
            SimOptions {
                duration_secs: 600.0,
                seed: 1,
                ..Default::default()
            },
        );
        let m = sim.run();
        assert!(m.queries > 0);
        assert!(sim.events_delivered() > m.queries);
        sim.net.check_invariants().unwrap();
    }

    #[test]
    fn reference_snapshot_round_trip_resumes_bitwise() {
        let cfg = Config {
            graph_size: 100,
            cluster_size: 10,
            ..Config::default()
        };
        let opts = SimOptions {
            duration_secs: 600.0,
            seed: 7,
            ..Default::default()
        };
        let mut full = ReferenceSimulation::new(&cfg, opts);
        let baseline = full.run();

        let mut head = ReferenceSimulation::new(&cfg, opts);
        head.run_to(200.0);
        let mut resumed = ReferenceSimulation::restore(&head.snapshot()).expect("restore");
        assert_eq!(baseline, resumed.run());
        assert_eq!(full.events_delivered(), resumed.events_delivered());
    }

    #[test]
    fn engine_tags_do_not_cross_restore() {
        let cfg = Config {
            graph_size: 100,
            cluster_size: 10,
            ..Config::default()
        };
        let mut sim = ReferenceSimulation::new(&cfg, SimOptions::default());
        sim.run_to(50.0);
        let snap = sim.snapshot();
        assert!(matches!(
            crate::engine::Simulation::restore(&snap),
            Err(SnapshotError::WrongEngine { .. })
        ));
    }
}
