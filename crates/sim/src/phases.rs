//! Deterministic scenario-phase execution for the churn simulator.
//!
//! A [`ScenarioState`] owns everything scenario-related that both
//! engines share: the phase list and capacity classes of a compiled
//! [`ScenarioPlan`], a *dedicated* RNG stream (seeded from
//! `SimOptions::scenario_seed`, never from the simulation's main
//! stream), the currently active workload modifiers, and the resolved
//! cluster sets of open split windows. The design follows
//! [`crate::faults`] exactly:
//!
//! * an empty plan makes **zero** scenario draws and applies only
//!   identity transforms (multiply by 1.0, shift by 0), so the run is
//!   bitwise identical to a plain run;
//! * phase boundaries are first-class queue events
//!   ([`Event::Phase`](crate::events::Event::Phase)), scheduled at the
//!   same bootstrap point in both engines so the FIFO tie-break
//!   sequence numbers line up;
//! * everything that needs randomness (mass-leave victims, split
//!   membership) draws from the dedicated stream via partial
//!   Fisher–Yates — deterministic, distinct, order-stable across
//!   engines — and everything else (capacity classes) is assigned by
//!   draw-free smooth weighted round-robin on a join counter.
//!
//! The modifiers hook the engines at four places, all post-draw or
//! rate-side so the main RNG call sequence never changes: sampled
//! lifespans and file counts are scaled on admission
//! ([`ScenarioState::admit_peer`]), the query rate is multiplied
//! inside `exp_delay(rate × mult)`
//! ([`ScenarioState::query_rate_mult`]), and each sampled query class
//! is rotated modulo the class count
//! ([`ScenarioState::shift_query`]). Split windows reuse the fault
//! layer's partition depth counters
//! ([`FaultState::scenario_partition_begin`](crate::faults::FaultState::scenario_partition_begin)),
//! so the flood hot path carries no scenario-specific branch.

use sp_model::scenario::{CapacityClass, PhaseKind, PhaseSpec, ScenarioPlan};
use sp_model::snapshot::{SnapReader, SnapWriter, SnapshotError};
use sp_stats::SpRng;

use crate::events::ClusterId;

/// What the engine must execute for a phase-boundary event, beyond the
/// modifier bookkeeping [`ScenarioState`] already did internally.
#[derive(Debug, Clone, PartialEq)]
pub enum PhaseAction {
    /// Nothing: the phase only toggled workload modifiers.
    None,
    /// Force a correlated mass departure: the engine collects the
    /// alive peers in slot order and asks
    /// [`ScenarioState::pick_mass_leave`] for the victim indices.
    MassLeave {
        /// Fraction of alive peers departing.
        fraction: f64,
    },
    /// Open a split window: the engine collects the alive clusters,
    /// asks [`ScenarioState::pick_split`] for the isolated side, and
    /// blocks it through the fault layer's partition counters.
    SplitBegin {
        /// Fraction of alive clusters isolated.
        fraction: f64,
    },
    /// Close a split window: release the cluster set stored by
    /// [`ScenarioState::store_split`].
    SplitEnd,
}

/// Scenario state machine shared by both engines (see module docs).
#[derive(Debug, Clone)]
pub struct ScenarioState {
    phases: Vec<PhaseSpec>,
    classes: Vec<CapacityClass>,
    /// Dedicated scenario stream; untouched while the plan draws
    /// nothing, so an empty plan is bitwise inert.
    rng: SpRng,
    /// Active flash-crowd query-rate factor (1.0 outside windows).
    query_mult: f64,
    /// Which phases are currently inside their window, indexed by
    /// declaration order — the basis of the per-phase rate product.
    phase_active: Vec<bool>,
    /// Product of the active phases' per-phase `rate_mult` knobs,
    /// recomputed canonically (declaration order) at every boundary so
    /// overlapping windows compose without float drift.
    rate_mult: f64,
    /// Active flash-crowd hot-key rotation (0 outside windows).
    hot_shift: u32,
    /// Active churn-burst lifespan factor (1.0 outside windows).
    lifespan_mult: f64,
    /// Smooth-weighted-round-robin accumulators, one per class.
    wrr_current: Vec<f64>,
    /// Total class weight (cached for the WRR decrement).
    wrr_total: f64,
    /// Cluster sets resolved at each split window's start, released
    /// verbatim at the window end even under churn (indexed by phase).
    split_resolved: Vec<Vec<ClusterId>>,
}

impl ScenarioState {
    /// Builds the state for a plan. An empty plan produces an inert
    /// state: no draws, identity transforms only.
    ///
    /// # Panics
    ///
    /// Panics if the plan is invalid.
    pub fn new(plan: &ScenarioPlan, scenario_seed: u64) -> ScenarioState {
        plan.validate().expect("invalid scenario plan");
        let n = plan.phases.len();
        ScenarioState {
            phases: plan.phases.clone(),
            classes: plan.capacity_classes.clone(),
            rng: SpRng::seed_from_u64(scenario_seed ^ 0x5CE4_A210_5EED),
            query_mult: 1.0,
            phase_active: vec![false; n],
            rate_mult: 1.0,
            hot_shift: 0,
            lifespan_mult: 1.0,
            wrr_current: vec![0.0; plan.capacity_classes.len()],
            wrr_total: plan.capacity_classes.iter().map(|c| c.weight).sum(),
            split_resolved: vec![Vec::new(); n],
        }
    }

    /// An inert state (empty plan); the engines' default.
    pub fn inactive() -> ScenarioState {
        ScenarioState::new(&ScenarioPlan::default(), 0)
    }

    /// Whether the plan modifies anything at all.
    pub fn is_active(&self) -> bool {
        !self.phases.is_empty() || !self.classes.is_empty()
    }

    /// The phase schedule: `(index, time, start)` triples to seed into
    /// the event queue at bootstrap, in declaration order — the same
    /// shape as [`FaultState::schedule`](crate::faults::FaultState::schedule).
    pub fn schedule(&self) -> Vec<(u32, f64, bool)> {
        let mut out = Vec::with_capacity(self.phases.len() * 2);
        for (i, phase) in self.phases.iter().enumerate() {
            out.push((i as u32, phase.from_secs, true));
            out.push((i as u32, phase.until_secs, false));
        }
        out
    }

    /// Admits one peer: assigns its capacity class (draw-free weighted
    /// round-robin over the join counter) and applies the class factors
    /// plus any active churn-burst factor to the sampled file count and
    /// lifespan. With no classes and no active burst this is the
    /// identity.
    pub fn admit_peer(&mut self, files: u32, lifespan_secs: f64) -> (u32, f64) {
        let mut files_mult = 1.0;
        let mut lifespan_mult = self.lifespan_mult;
        if !self.classes.is_empty() {
            let k = self.next_class();
            files_mult = self.classes[k].files_mult;
            lifespan_mult *= self.classes[k].lifespan_mult;
        }
        let files = if files_mult == 1.0 {
            files
        } else {
            // Same rounding and cap as `PopulationModel::sample_files`.
            (f64::from(files) * files_mult).round().clamp(0.0, 1e6) as u32
        };
        (files, lifespan_secs * lifespan_mult)
    }

    /// Smooth weighted round-robin: every class gains its weight, the
    /// richest class (ties broken by lowest index) is picked and pays
    /// the total back. Deterministic and proportional — no RNG draw,
    /// so capacity assignment never perturbs either RNG stream.
    fn next_class(&mut self) -> usize {
        for (cur, class) in self.wrr_current.iter_mut().zip(&self.classes) {
            *cur += class.weight;
        }
        let mut best = 0;
        for i in 1..self.wrr_current.len() {
            if self.wrr_current[i] > self.wrr_current[best] {
                best = i;
            }
        }
        self.wrr_current[best] -= self.wrr_total;
        best
    }

    /// The factor applied to the per-peer query rate: the flash-crowd
    /// factor times the product of active phases' per-phase
    /// `query_rate_mult` knobs (all 1.0 outside windows, so
    /// `rate * mult` is bitwise inert).
    #[inline]
    pub fn query_rate_mult(&self) -> f64 {
        self.query_mult * self.rate_mult
    }

    /// Recomputes the per-phase rate product from scratch over the
    /// active set in declaration order: one canonical multiplication
    /// sequence per active set, so opening and closing overlapping
    /// windows can never accumulate float drift.
    fn recompute_rate_mult(&mut self) {
        let mut m = 1.0;
        for (active, phase) in self.phase_active.iter().zip(&self.phases) {
            if *active {
                m *= phase.rate_mult;
            }
        }
        self.rate_mult = m;
    }

    /// Rotates a sampled query class while a flash crowd is active
    /// (identity when `hot_shift` is 0): the popular Zipf head lands
    /// on a different key range, modelling a hot topic.
    #[inline]
    pub fn shift_query(&self, j: usize, num_classes: usize) -> usize {
        if self.hot_shift == 0 {
            j
        } else {
            (j + self.hot_shift as usize) % num_classes
        }
    }

    /// Applies the phase event `(index, start)`: updates the workload
    /// modifiers internally and returns what the engine must execute.
    pub fn on_phase_event(&mut self, index: u32, start: bool) -> PhaseAction {
        self.phase_active[index as usize] = start;
        self.recompute_rate_mult();
        match self.phases[index as usize].kind {
            PhaseKind::FlashCrowd {
                query_rate_mult,
                hot_shift,
            } => {
                if start {
                    self.query_mult = query_rate_mult;
                    self.hot_shift = hot_shift;
                } else {
                    self.query_mult = 1.0;
                    self.hot_shift = 0;
                }
                PhaseAction::None
            }
            PhaseKind::ChurnBurst { lifespan_mult } => {
                self.lifespan_mult = if start { lifespan_mult } else { 1.0 };
                PhaseAction::None
            }
            PhaseKind::MassLeave { fraction } => {
                if start {
                    PhaseAction::MassLeave { fraction }
                } else {
                    PhaseAction::None
                }
            }
            PhaseKind::Split { fraction } => {
                if start {
                    PhaseAction::SplitBegin { fraction }
                } else {
                    PhaseAction::SplitEnd
                }
            }
        }
    }

    /// Picks the mass-leave victims: indices into the engine's
    /// alive-peer list (passed as its length; both engines build the
    /// list in slot order, so indices resolve identically). Partial
    /// Fisher–Yates on the scenario stream, mirroring the fault
    /// layer's `crash_fraction`; an empty pick makes no draws.
    pub fn pick_mass_leave(&mut self, alive: usize, fraction: f64) -> Vec<usize> {
        let n = ((fraction * alive as f64).round() as usize).min(alive);
        if n == 0 {
            return Vec::new();
        }
        let mut pool: Vec<usize> = (0..alive).collect();
        for k in 0..n {
            let j = k + self.rng.index(pool.len() - k);
            pool.swap(k, j);
        }
        pool.truncate(n);
        pool
    }

    /// Resolves the isolated side of a split window from the alive
    /// clusters (same partial Fisher–Yates as
    /// [`pick_mass_leave`](ScenarioState::pick_mass_leave)).
    pub fn pick_split(&mut self, alive: &[ClusterId], fraction: f64) -> Vec<ClusterId> {
        let n = ((fraction * alive.len() as f64).round() as usize).min(alive.len());
        if n == 0 {
            return Vec::new();
        }
        let mut pool: Vec<ClusterId> = alive.to_vec();
        for k in 0..n {
            let j = k + self.rng.index(pool.len() - k);
            pool.swap(k, j);
        }
        pool.truncate(n);
        pool
    }

    /// Stores the resolved cluster set of an open split window so the
    /// window end releases exactly what it blocked, even under churn.
    pub fn store_split(&mut self, index: u32, resolved: Vec<ClusterId>) {
        self.split_resolved[index as usize] = resolved;
    }

    /// Takes the stored cluster set of a closing split window.
    pub fn take_split(&mut self, index: u32) -> Vec<ClusterId> {
        std::mem::take(&mut self.split_resolved[index as usize])
    }

    /// Writes the *mutable* scenario state into a snapshot payload.
    /// The plan is not written — the caller embeds it (as canonical
    /// JSON) and rebuilds via [`ScenarioState::new`] before calling
    /// [`ScenarioState::unsnap_state`]; `phases`/`classes`/`wrr_total`
    /// are plan-derived and need not travel.
    pub(crate) fn snap_state(&self, w: &mut SnapWriter) {
        for &word in &self.rng.state() {
            w.u64(word);
        }
        w.f64(self.query_mult);
        w.len(self.phase_active.len());
        for &a in &self.phase_active {
            w.bool(a);
        }
        w.u32(self.hot_shift);
        w.f64(self.lifespan_mult);
        w.len(self.wrr_current.len());
        for &acc in &self.wrr_current {
            w.f64(acc);
        }
        w.len(self.split_resolved.len());
        for set in &self.split_resolved {
            w.len(set.len());
            for &c in set {
                w.u32(c);
            }
        }
    }

    /// Restores the mutable state written by
    /// [`ScenarioState::snap_state`] into a freshly built state for the
    /// same plan.
    pub(crate) fn unsnap_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = r.u64("scenario rng word")?;
        }
        self.rng = SpRng::from_state(s);
        self.query_mult = r.f64("scenario query_mult")?;
        let n = r.len("scenario phase_active len")?;
        if n != self.phase_active.len() {
            return Err(SnapshotError::Malformed(format!(
                "snapshot has {n} phase-active flags but the plan has {}",
                self.phase_active.len()
            )));
        }
        for i in 0..n {
            self.phase_active[i] = r.bool("scenario phase_active")?;
        }
        self.recompute_rate_mult();
        self.hot_shift = r.u32("scenario hot_shift")?;
        self.lifespan_mult = r.f64("scenario lifespan_mult")?;
        let n = r.len("scenario wrr len")?;
        if n != self.wrr_current.len() {
            return Err(SnapshotError::Malformed(format!(
                "snapshot has {n} WRR accumulators but the plan has {}",
                self.wrr_current.len()
            )));
        }
        for acc in &mut self.wrr_current {
            *acc = r.f64("scenario wrr accumulator")?;
        }
        let n = r.len("scenario split sets len")?;
        if n != self.split_resolved.len() {
            return Err(SnapshotError::Malformed(format!(
                "snapshot has {n} split sets but the plan has {}",
                self.split_resolved.len()
            )));
        }
        for set in &mut self.split_resolved {
            let m = r.len("scenario split set len")?;
            set.clear();
            set.reserve(m);
            for _ in 0..m {
                set.push(r.u32("scenario split cluster")?);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_model::scenario::{CapacityClass, PhaseKind, PhaseSpec};

    #[test]
    fn inactive_state_is_draw_free_and_identity() {
        let mut s = ScenarioState::inactive();
        assert!(!s.is_active());
        assert!(s.schedule().is_empty());
        assert_eq!(s.query_rate_mult(), 1.0);
        assert_eq!(s.shift_query(17, 1024), 17);
        let lifespan = 1_234.567_890_123;
        let (files, life) = s.admit_peer(250, lifespan);
        assert_eq!(files, 250);
        assert_eq!(life.to_bits(), lifespan.to_bits(), "must be bitwise inert");
    }

    #[test]
    fn flash_crowd_toggles_and_resets() {
        let plan = ScenarioPlan {
            phases: vec![PhaseSpec {
                rate_mult: 1.0,
                from_secs: 10.0,
                until_secs: 20.0,
                kind: PhaseKind::FlashCrowd {
                    query_rate_mult: 4.0,
                    hot_shift: 100,
                },
            }],
            ..Default::default()
        };
        let mut s = ScenarioState::new(&plan, 1);
        assert_eq!(s.schedule(), vec![(0, 10.0, true), (0, 20.0, false)]);
        assert_eq!(s.on_phase_event(0, true), PhaseAction::None);
        assert_eq!(s.query_rate_mult(), 4.0);
        assert_eq!(s.shift_query(1000, 1024), 76, "(1000 + 100) % 1024");
        assert_eq!(s.on_phase_event(0, false), PhaseAction::None);
        assert_eq!(s.query_rate_mult(), 1.0);
        assert_eq!(s.shift_query(1000, 1024), 1000);
    }

    #[test]
    fn per_phase_rate_mult_composes_and_resets() {
        let plan = ScenarioPlan {
            phases: vec![
                PhaseSpec {
                    rate_mult: 10.0,
                    from_secs: 10.0,
                    until_secs: 40.0,
                    kind: PhaseKind::ChurnBurst { lifespan_mult: 0.5 },
                },
                PhaseSpec {
                    rate_mult: 2.0,
                    from_secs: 20.0,
                    until_secs: 30.0,
                    kind: PhaseKind::Split { fraction: 0.25 },
                },
            ],
            ..Default::default()
        };
        let mut s = ScenarioState::new(&plan, 1);
        assert_eq!(s.query_rate_mult(), 1.0);
        s.on_phase_event(0, true);
        assert_eq!(s.query_rate_mult(), 10.0);
        s.on_phase_event(1, true);
        assert_eq!(s.query_rate_mult(), 20.0, "concurrent phases multiply");
        s.on_phase_event(1, false);
        assert_eq!(s.query_rate_mult(), 10.0);
        s.on_phase_event(0, false);
        assert_eq!(s.query_rate_mult(), 1.0);
    }

    #[test]
    fn churn_burst_scales_admitted_lifespans() {
        let plan = ScenarioPlan {
            phases: vec![PhaseSpec {
                rate_mult: 1.0,
                from_secs: 0.0,
                until_secs: 100.0,
                kind: PhaseKind::ChurnBurst {
                    lifespan_mult: 0.25,
                },
            }],
            ..Default::default()
        };
        let mut s = ScenarioState::new(&plan, 1);
        assert_eq!(s.admit_peer(10, 400.0), (10, 400.0));
        s.on_phase_event(0, true);
        assert_eq!(s.admit_peer(10, 400.0), (10, 100.0));
        s.on_phase_event(0, false);
        assert_eq!(s.admit_peer(10, 400.0), (10, 400.0));
    }

    #[test]
    fn capacity_classes_assign_by_weight_without_draws() {
        let plan = ScenarioPlan {
            capacity_classes: vec![
                CapacityClass {
                    weight: 3.0,
                    files_mult: 0.0625, // power of two: exact scaling
                    lifespan_mult: 1.0,
                },
                CapacityClass {
                    weight: 1.0,
                    files_mult: 4.0,
                    lifespan_mult: 2.0,
                },
            ],
            ..Default::default()
        };
        let mut a = ScenarioState::new(&plan, 7);
        let mut counts = [0usize; 2];
        for _ in 0..400 {
            let (files, _) = a.admit_peer(64, 100.0);
            match files {
                4 => counts[0] += 1,   // 64 * 0.0625
                256 => counts[1] += 1, // 64 * 4
                other => panic!("unexpected file count {other}"),
            }
        }
        assert_eq!(counts, [300, 100], "3:1 weights over 400 joins");
        // Same plan, different seed: assignment is identical because
        // class selection makes no draws.
        let mut b = ScenarioState::new(&plan, 999);
        for _ in 0..400 {
            b.admit_peer(64, 100.0);
        }
        for _ in 0..10 {
            assert_eq!(a.admit_peer(64, 100.0), b.admit_peer(64, 100.0));
        }
    }

    #[test]
    fn mass_leave_picks_are_seeded_distinct_and_sized() {
        let plan = ScenarioPlan {
            phases: vec![PhaseSpec {
                rate_mult: 1.0,
                from_secs: 5.0,
                until_secs: 6.0,
                kind: PhaseKind::MassLeave { fraction: 0.5 },
            }],
            ..Default::default()
        };
        let pick = |seed: u64| {
            let mut s = ScenarioState::new(&plan, seed);
            assert_eq!(
                s.on_phase_event(0, true),
                PhaseAction::MassLeave { fraction: 0.5 }
            );
            s.pick_mass_leave(100, 0.5)
        };
        let a = pick(1);
        assert_eq!(a.len(), 50);
        let unique: std::collections::BTreeSet<usize> = a.iter().copied().collect();
        assert_eq!(unique.len(), 50, "victims must be distinct");
        assert_eq!(a, pick(1));
        assert_ne!(a, pick(2), "scenario seed must matter");
        let mut s = ScenarioState::new(&plan, 1);
        assert!(s.pick_mass_leave(100, 0.0).is_empty());
        assert_eq!(s.pick_mass_leave(3, 1.0).len(), 3);
    }

    #[test]
    fn split_windows_store_and_release_their_resolution() {
        let plan = ScenarioPlan {
            phases: vec![PhaseSpec {
                rate_mult: 1.0,
                from_secs: 5.0,
                until_secs: 50.0,
                kind: PhaseKind::Split { fraction: 0.4 },
            }],
            ..Default::default()
        };
        let mut s = ScenarioState::new(&plan, 3);
        assert_eq!(
            s.on_phase_event(0, true),
            PhaseAction::SplitBegin { fraction: 0.4 }
        );
        let alive: Vec<ClusterId> = (0..10).collect();
        let resolved = s.pick_split(&alive, 0.4);
        assert_eq!(resolved.len(), 4);
        s.store_split(0, resolved.clone());
        assert_eq!(s.on_phase_event(0, false), PhaseAction::SplitEnd);
        assert_eq!(s.take_split(0), resolved);
        assert!(s.take_split(0).is_empty(), "taken sets are cleared");
    }
}
