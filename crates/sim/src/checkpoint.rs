//! Shared snapshot codecs for checkpoint/restore.
//!
//! The container format and primitives live in
//! [`sp_model::snapshot`]; this module encodes the *configuration*
//! half of an engine snapshot — [`Config`], [`SimOptions`], and the
//! public metrics structs — so the fast, reference, and sharded
//! engines can all embed a self-describing header and a restored run
//! needs no flags beyond `--resume <file>`.
//!
//! Everything here is a straight field-by-field binary codec: floats
//! travel as bits, enums as explicit tags, and every reader validates
//! tags so a snapshot from a newer build fails with a named
//! [`SnapshotError`] instead of misdecoding.

use sp_model::config::{Config, GraphType};
use sp_model::costs::{CostModel, GeneralStats};
use sp_model::load::Load;
use sp_model::overload::{BrownoutConfig, OverloadPolicy, ShedDiscipline};
use sp_model::population::{FileTail, PopulationModel};
use sp_model::query_model::QueryModelConfig;
use sp_model::repair::RepairPolicy;
use sp_model::snapshot::{SnapReader, SnapWriter, SnapshotError};
use sp_stats::OnlineStats;

use crate::engine::{AdaptSettings, ForwardPolicy, RawMetrics, SimOptions, TimelinePoint};
use crate::faults::FaultMetrics;
use crate::metrics::{SimMetrics, NUM_EVENT_KINDS};
use crate::overload::OverloadMetrics;
use crate::repair::{ReachPoint, RepairMetrics, RepairPending};

/// Writes a [`Config`] (including its nested cost / population / query
/// sub-models) into a snapshot payload.
pub(crate) fn snap_config(c: &Config, w: &mut SnapWriter) {
    w.u8(match c.graph_type {
        GraphType::StronglyConnected => 0,
        GraphType::PowerLaw => 1,
        GraphType::ErdosRenyi => 2,
        GraphType::RandomRegular => 3,
    });
    w.len(c.graph_size);
    w.len(c.cluster_size);
    w.len(c.redundancy_k);
    w.f64(c.avg_outdegree);
    w.u16(c.ttl);
    w.f64(c.query_rate);
    w.f64(c.update_rate);
    w.f64(c.costs.stats.query_length);
    w.f64(c.costs.stats.result_record);
    w.f64(c.costs.stats.metadata_record);
    w.f64(c.costs.multiplex_per_connection);
    w.f64(c.population.free_rider_fraction);
    w.f64(c.population.files_median);
    w.f64(c.population.files_sigma);
    match c.population.file_tail {
        FileTail::LogNormal => w.u8(0),
        FileTail::BoundedPareto { alpha, max_files } => {
            w.u8(1);
            w.f64(alpha);
            w.f64(max_files);
        }
    }
    w.f64(c.population.lifespan_mean_secs);
    w.f64(c.population.lifespan_sigma);
    w.len(c.query_model.num_classes);
    w.f64(c.query_model.popularity_exponent);
    w.f64(c.query_model.selection_exponent);
    w.f64(c.query_model.match_per_file);
}

/// Reads a [`Config`] written by [`snap_config`].
pub(crate) fn unsnap_config(r: &mut SnapReader<'_>) -> Result<Config, SnapshotError> {
    let graph_type = match r.u8("config graph_type")? {
        0 => GraphType::StronglyConnected,
        1 => GraphType::PowerLaw,
        2 => GraphType::ErdosRenyi,
        3 => GraphType::RandomRegular,
        tag => {
            return Err(SnapshotError::Malformed(format!(
                "unknown graph type tag {tag}"
            )))
        }
    };
    Ok(Config {
        graph_type,
        graph_size: r.len("config graph_size")?,
        cluster_size: r.len("config cluster_size")?,
        redundancy_k: r.len("config redundancy_k")?,
        avg_outdegree: r.f64("config avg_outdegree")?,
        ttl: r.u16("config ttl")?,
        query_rate: r.f64("config query_rate")?,
        update_rate: r.f64("config update_rate")?,
        costs: CostModel {
            stats: GeneralStats {
                query_length: r.f64("config query_length")?,
                result_record: r.f64("config result_record")?,
                metadata_record: r.f64("config metadata_record")?,
            },
            multiplex_per_connection: r.f64("config multiplex_per_connection")?,
        },
        population: PopulationModel {
            free_rider_fraction: r.f64("config free_rider_fraction")?,
            files_median: r.f64("config files_median")?,
            files_sigma: r.f64("config files_sigma")?,
            file_tail: match r.u8("config file_tail tag")? {
                0 => FileTail::LogNormal,
                1 => FileTail::BoundedPareto {
                    alpha: r.f64("config pareto alpha")?,
                    max_files: r.f64("config pareto max_files")?,
                },
                tag => {
                    return Err(SnapshotError::Malformed(format!(
                        "unknown file tail tag {tag}"
                    )))
                }
            },
            lifespan_mean_secs: r.f64("config lifespan_mean_secs")?,
            lifespan_sigma: r.f64("config lifespan_sigma")?,
        },
        query_model: QueryModelConfig {
            num_classes: r.len("config num_classes")?,
            popularity_exponent: r.f64("config popularity_exponent")?,
            selection_exponent: r.f64("config selection_exponent")?,
            match_per_file: r.f64("config match_per_file")?,
        },
    })
}

/// Writes [`SimOptions`] into a snapshot payload.
pub(crate) fn snap_opts(o: &SimOptions, w: &mut SnapWriter) {
    w.f64(o.duration_secs);
    w.u64(o.seed);
    w.f64(o.recruit_delay_secs);
    w.f64(o.rejoin_mean_secs);
    w.f64(o.replenish_mean_secs);
    w.f64(o.sample_interval_secs);
    match o.adapt {
        None => w.bool(false),
        Some(a) => {
            w.bool(true);
            w.f64(a.interval_secs);
            w.f64(a.limit.in_bw);
            w.f64(a.limit.out_bw);
            w.f64(a.limit.proc);
        }
    }
    match o.forward_policy {
        ForwardPolicy::FloodAll => w.u8(0),
        ForwardPolicy::RandomSubset { fanout } => {
            w.u8(1);
            w.len(fanout);
        }
    }
    w.u64(o.fault_seed);
    w.u8(match o.repair {
        RepairPolicy::Off => 0,
        RepairPolicy::Promote => 1,
        RepairPolicy::PromotePartner => 2,
    });
    w.f64(o.repair_delay_secs);
    w.u64(o.scenario_seed);
    w.bool(o.profile);
    snap_overload_policy(&o.overload, w);
}

/// Writes an [`OverloadPolicy`] into a snapshot payload.
pub(crate) fn snap_overload_policy(p: &OverloadPolicy, w: &mut SnapWriter) {
    w.f64(p.service_rate);
    w.u32(p.queue_capacity);
    w.u8(match p.discipline {
        ShedDiscipline::RejectAtAdmission => 0,
        ShedDiscipline::DropOldest => 1,
        ShedDiscipline::DropLowestTtl => 2,
    });
    w.f64(p.client_tokens_per_sec);
    w.f64(p.client_token_burst);
    match p.brownout {
        None => w.bool(false),
        Some(b) => {
            w.bool(true);
            w.f64(b.enter_backlog_secs);
            w.f64(b.exit_backlog_secs);
            w.f64(b.min_dwell_secs);
            w.u16(b.ttl_decrement);
            w.u32(b.fanout_limit);
        }
    }
    w.u32(p.rehome_strikes);
}

/// Reads a policy written by [`snap_overload_policy`].
pub(crate) fn unsnap_overload_policy(
    r: &mut SnapReader<'_>,
) -> Result<OverloadPolicy, SnapshotError> {
    Ok(OverloadPolicy {
        service_rate: r.f64("overload service_rate")?,
        queue_capacity: r.u32("overload queue_capacity")?,
        discipline: match r.u8("overload discipline tag")? {
            0 => ShedDiscipline::RejectAtAdmission,
            1 => ShedDiscipline::DropOldest,
            2 => ShedDiscipline::DropLowestTtl,
            tag => {
                return Err(SnapshotError::Malformed(format!(
                    "unknown shed discipline tag {tag}"
                )))
            }
        },
        client_tokens_per_sec: r.f64("overload client_tokens_per_sec")?,
        client_token_burst: r.f64("overload client_token_burst")?,
        brownout: if r.bool("overload has brownout")? {
            Some(BrownoutConfig {
                enter_backlog_secs: r.f64("brownout enter")?,
                exit_backlog_secs: r.f64("brownout exit")?,
                min_dwell_secs: r.f64("brownout dwell")?,
                ttl_decrement: r.u16("brownout ttl_decrement")?,
                fanout_limit: r.u32("brownout fanout_limit")?,
            })
        } else {
            None
        },
        rehome_strikes: r.u32("overload rehome_strikes")?,
    })
}

/// Reads [`SimOptions`] written by [`snap_opts`].
pub(crate) fn unsnap_opts(r: &mut SnapReader<'_>) -> Result<SimOptions, SnapshotError> {
    Ok(SimOptions {
        duration_secs: r.f64("opts duration_secs")?,
        seed: r.u64("opts seed")?,
        recruit_delay_secs: r.f64("opts recruit_delay_secs")?,
        rejoin_mean_secs: r.f64("opts rejoin_mean_secs")?,
        replenish_mean_secs: r.f64("opts replenish_mean_secs")?,
        sample_interval_secs: r.f64("opts sample_interval_secs")?,
        adapt: if r.bool("opts has adapt")? {
            Some(AdaptSettings {
                interval_secs: r.f64("opts adapt interval")?,
                limit: Load {
                    in_bw: r.f64("opts adapt in_bw")?,
                    out_bw: r.f64("opts adapt out_bw")?,
                    proc: r.f64("opts adapt proc")?,
                },
            })
        } else {
            None
        },
        forward_policy: match r.u8("opts forward tag")? {
            0 => ForwardPolicy::FloodAll,
            1 => ForwardPolicy::RandomSubset {
                fanout: r.len("opts fanout")?,
            },
            tag => {
                return Err(SnapshotError::Malformed(format!(
                    "unknown forward policy tag {tag}"
                )))
            }
        },
        fault_seed: r.u64("opts fault_seed")?,
        repair: match r.u8("opts repair tag")? {
            0 => RepairPolicy::Off,
            1 => RepairPolicy::Promote,
            2 => RepairPolicy::PromotePartner,
            tag => {
                return Err(SnapshotError::Malformed(format!(
                    "unknown repair policy tag {tag}"
                )))
            }
        },
        repair_delay_secs: r.f64("opts repair_delay_secs")?,
        scenario_seed: r.u64("opts scenario_seed")?,
        profile: r.bool("opts profile")?,
        overload: unsnap_overload_policy(r)?,
    })
}

/// Writes an [`OnlineStats`] accumulator bit-exactly.
pub(crate) fn snap_stats(s: &OnlineStats, w: &mut SnapWriter) {
    let (count, mean, m2, min, max) = s.state();
    w.u64(count);
    w.f64(mean);
    w.f64(m2);
    w.f64(min);
    w.f64(max);
}

/// Reads an accumulator written by [`snap_stats`].
pub(crate) fn unsnap_stats(r: &mut SnapReader<'_>) -> Result<OnlineStats, SnapshotError> {
    let count = r.u64("stats count")?;
    let mean = r.f64("stats mean")?;
    let m2 = r.f64("stats m2")?;
    let min = r.f64("stats min")?;
    let max = r.f64("stats max")?;
    Ok(OnlineStats::from_state(count, mean, m2, min, max))
}

/// Writes [`RepairMetrics`] into a snapshot payload.
pub(crate) fn snap_repair_metrics(m: &RepairMetrics, w: &mut SnapWriter) {
    w.u64(m.promotions);
    w.u64(m.partner_recruitments);
    w.u64(m.reindexed_clients);
    w.f64(m.reindex_bytes);
    w.u64(m.abandoned);
    w.u64(m.queries_during_outage);
    m.time_to_repair.snap(w);
    w.len(m.reachability.len());
    for p in &m.reachability {
        w.f64(p.time);
        w.u32(p.components);
        w.f64(p.reachable_fraction);
    }
    w.u32(m.final_components);
    w.f64(m.final_reachable_fraction);
}

/// Reads metrics written by [`snap_repair_metrics`].
pub(crate) fn unsnap_repair_metrics(
    r: &mut SnapReader<'_>,
) -> Result<RepairMetrics, SnapshotError> {
    let promotions = r.u64("repair promotions")?;
    let partner_recruitments = r.u64("repair partner_recruitments")?;
    let reindexed_clients = r.u64("repair reindexed_clients")?;
    let reindex_bytes = r.f64("repair reindex_bytes")?;
    let abandoned = r.u64("repair abandoned")?;
    let queries_during_outage = r.u64("repair queries_during_outage")?;
    let time_to_repair = crate::faults::ReconnectHistogram::unsnap(r)?;
    let n = r.len("repair reachability len")?;
    let mut reachability = Vec::with_capacity(n);
    for _ in 0..n {
        reachability.push(ReachPoint {
            time: r.f64("reach time")?,
            components: r.u32("reach components")?,
            reachable_fraction: r.f64("reach fraction")?,
        });
    }
    Ok(RepairMetrics {
        promotions,
        partner_recruitments,
        reindexed_clients,
        reindex_bytes,
        abandoned,
        queries_during_outage,
        time_to_repair,
        reachability,
        final_components: r.u32("repair final_components")?,
        final_reachable_fraction: r.f64("repair final_reachable_fraction")?,
    })
}

/// Writes [`RawMetrics`] into a snapshot payload.
pub(crate) fn snap_raw_metrics(m: &RawMetrics, w: &mut SnapWriter) {
    snap_stats(&m.sp_in, w);
    snap_stats(&m.sp_out, w);
    snap_stats(&m.sp_proc, w);
    snap_stats(&m.client_in, w);
    snap_stats(&m.client_out, w);
    snap_stats(&m.client_proc, w);
    snap_stats(&m.results, w);
    w.u64(m.queries);
    w.u64(m.cluster_failures);
    w.u64(m.orphan_events);
    snap_stats(&m.downtime, w);
    w.f64(m.client_connected_secs);
    w.f64(m.client_disconnected_secs);
    w.len(m.timeline.len());
    for p in &m.timeline {
        w.f64(p.time);
        w.len(p.clusters);
        w.len(p.peers);
        w.f64(p.mean_cluster_size);
        w.f64(p.mean_ttl);
        w.f64(p.mean_outdegree);
    }
    w.u64(m.adapt_actions);
    m.faults.snap(w);
    snap_repair_metrics(&m.repair, w);
    m.overload.snap(w);
}

/// Reads metrics written by [`snap_raw_metrics`].
pub(crate) fn unsnap_raw_metrics(r: &mut SnapReader<'_>) -> Result<RawMetrics, SnapshotError> {
    let sp_in = unsnap_stats(r)?;
    let sp_out = unsnap_stats(r)?;
    let sp_proc = unsnap_stats(r)?;
    let client_in = unsnap_stats(r)?;
    let client_out = unsnap_stats(r)?;
    let client_proc = unsnap_stats(r)?;
    let results = unsnap_stats(r)?;
    let queries = r.u64("metrics queries")?;
    let cluster_failures = r.u64("metrics cluster_failures")?;
    let orphan_events = r.u64("metrics orphan_events")?;
    let downtime = unsnap_stats(r)?;
    let client_connected_secs = r.f64("metrics client_connected_secs")?;
    let client_disconnected_secs = r.f64("metrics client_disconnected_secs")?;
    let n = r.len("metrics timeline len")?;
    let mut timeline = Vec::with_capacity(n);
    for _ in 0..n {
        timeline.push(TimelinePoint {
            time: r.f64("timeline time")?,
            clusters: r.len("timeline clusters")?,
            peers: r.len("timeline peers")?,
            mean_cluster_size: r.f64("timeline mean_cluster_size")?,
            mean_ttl: r.f64("timeline mean_ttl")?,
            mean_outdegree: r.f64("timeline mean_outdegree")?,
        });
    }
    Ok(RawMetrics {
        sp_in,
        sp_out,
        sp_proc,
        client_in,
        client_out,
        client_proc,
        results,
        queries,
        cluster_failures,
        orphan_events,
        downtime,
        client_connected_secs,
        client_disconnected_secs,
        timeline,
        adapt_actions: r.u64("metrics adapt_actions")?,
        faults: FaultMetrics::unsnap(r)?,
        repair: unsnap_repair_metrics(r)?,
        overload: OverloadMetrics::unsnap(r)?,
    })
}

/// Writes the deterministic half of [`SimMetrics`] — the wall-time
/// histograms are host-clock measurements, inherently nondeterministic,
/// and restart empty in a restored run.
pub(crate) fn snap_sim_metrics(m: &SimMetrics, w: &mut SnapWriter) {
    for &d in &m.delivered {
        w.u64(d);
    }
    w.u64(m.cancelled);
    w.u64(m.stale);
    w.len(m.queue_high_water);
    w.bool(m.profiled);
}

/// Reads counters written by [`snap_sim_metrics`] (wall histograms stay
/// at their default).
pub(crate) fn unsnap_sim_metrics(r: &mut SnapReader<'_>) -> Result<SimMetrics, SnapshotError> {
    let mut m = SimMetrics::default();
    for d in &mut m.delivered {
        *d = r.u64("obs delivered")?;
    }
    debug_assert_eq!(m.delivered.len(), NUM_EVENT_KINDS);
    m.cancelled = r.u64("obs cancelled")?;
    m.stale = r.u64("obs stale")?;
    m.queue_high_water = r.len("obs queue_high_water")?;
    m.profiled = r.bool("obs profiled")?;
    Ok(m)
}

/// Writes a `Vec<RepairPending>` (parallel to the cluster slab).
pub(crate) fn snap_repair_pending(v: &[RepairPending], w: &mut SnapWriter) {
    w.len(v.len());
    for p in v {
        w.bool(p.active);
        w.f64(p.down_since);
        w.bool(p.adapt_stalled);
    }
}

/// Reads a vector written by [`snap_repair_pending`].
pub(crate) fn unsnap_repair_pending(
    r: &mut SnapReader<'_>,
) -> Result<Vec<RepairPending>, SnapshotError> {
    let n = r.len("repair_pending len")?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(RepairPending {
            active: r.bool("repair_pending active")?,
            down_since: r.f64("repair_pending down_since")?,
            adapt_stalled: r.bool("repair_pending adapt_stalled")?,
        });
    }
    Ok(v)
}
