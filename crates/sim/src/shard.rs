//! Shared-nothing sharded scale simulator.
//!
//! The churn engines ([`crate::engine::Simulation`] and its reference
//! oracle) run one event loop over the whole overlay, which tops out
//! around 10⁴–10⁵ peers. This module trades their per-peer lifecycle
//! fidelity for *scale*: a tick-based engine whose state is partitioned
//! into per-shard single-threaded reactors so million-peer overlays run
//! in bounded memory with no locks on the hot path.
//!
//! # Shard assignment
//!
//! Peer ids are dense: cluster `c` owns peers
//! `[c·cluster_size, (c+1)·cluster_size)`, the first `redundancy_k` of
//! which are the founding partners. A shard owns a *contiguous* range
//! of clusters ([`sp_model::trials::shard_spans`]), so a cluster's
//! super-peer, partners, and clients always co-shard — the cluster id
//! is the peer-id prefix. Each shard builds its own slice of the
//! overlay (pure-hash power-law outdegrees and edge targets keyed by
//! `(seed, cluster, slot)`), runs its own
//! [`IndexedEventQueue`]`<ScaleEvent>`, and owns its slice of every
//! accumulator. Nothing is shared: shards communicate exclusively
//! through bounded `std::sync::mpsc` channels drained at tick barriers.
//!
//! # Tick-barrier message protocol
//!
//! Simulated time advances in 1-second ticks. Within tick `t` a shard:
//!
//! 1. receives exactly one batch tagged `t−1` from every other shard
//!    and slots its messages into a future-delivery ring;
//! 2. applies instantaneous faults due at `t` (crashes, in ascending
//!    cluster order) and refreshes the active fault windows;
//! 3. delivers the messages due at `t`, sorted by
//!    `(src_cluster, seq)` — `seq` is a per-source-cluster counter, so
//!    the sort key is layout-invariant (the issue's
//!    `(tick, src_shard, seq)` refined to survive re-sharding, since
//!    `src_shard` is itself a function of `src_cluster`);
//! 4. drains its local event queue up to `t` (query arrivals,
//!    elections);
//! 5. sends one batch tagged `t` (possibly empty) to every other
//!    shard. Channels are `sync_channel(2)`: at most the previous and
//!    the current tick's batches are ever in flight, so the queues are
//!    bounded and deadlock-free by construction.
//!
//! Every cluster therefore observes an identical ordered input stream
//! at **any** shard count, all randomness is stateless (pure splitmix
//! hashes keyed by entity ids — no shared RNG stream whose draw order
//! could depend on the layout), and every metric is a commutative
//! integer accumulation folded in ascending shard order. The result:
//! [`ScaleMetrics`] is bitwise identical for any shard count including
//! 1, which `tests/sim_determinism.rs` enforces at {1, 2, 4, 8}.
//!
//! # Streaming metrics
//!
//! There is no per-peer resident metrics state at all: each shard keeps
//! one fixed-width [`ScaleMetrics`] of `u64` counters plus a 16-bucket
//! hop histogram, merged at finalize. A 1M-peer run's footprint is the
//! event queue plus the CSR overlay slice — O(peers), tens of bytes per
//! peer — not O(peers × metrics).
//!
//! # Fidelity envelope
//!
//! This engine reproduces the *load-bearing* dynamics at scale — flood
//! fan-out under TTL, cluster crashes, Section 5.3 elections with
//! cross-shard re-index announcements, loss/delay/partition/flake
//! windows — but intentionally simplifies the rest: no churn arrivals,
//! open flooding without duplicate suppression (every arriving copy
//! costs processing, matching the Table 2 cost model's accounting),
//! integer hit draws instead of the Appendix B query model, and
//! [`sp_model::faults::RetryPolicy`] is not consulted (flaked
//! submissions are counted and retried instantly). Fault windows are
//! pure functions of the tick, so fault injection never needs
//! cross-shard coordination. The churn engines remain the fidelity
//! oracles; this one answers "how does the overlay behave at 10⁶
//! peers", which they cannot.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::time::Duration;

use sp_model::config::Config;
use sp_model::faults::{FaultPlan, FaultSpec};
use sp_model::overload::{OverloadPolicy, ShedDiscipline};
use sp_model::snapshot::{SnapReader, SnapWriter, SnapshotError, ENGINE_SCALE};
use sp_model::trials::{panic_message, shard_spans};

use crate::events::IndexedEventQueue;

/// Hop histogram width: hops 1..=15 are bucketed exactly, anything
/// beyond folds into the last bucket. The engine clamps TTL to 15.
pub const SCALE_MAX_HOPS: usize = 16;

/// Largest supported cluster size: member liveness is a `u64` bitmask.
pub const SCALE_MAX_CLUSTER: usize = 64;

// Domain-separation salts for the stateless hash draws. Each kind of
// draw mixes its own salt so streams never collide.
const SALT_DEGREE: u64 = 0x5348_4152_4445_4701;
const SALT_EDGE: u64 = 0x5348_4152_4544_4702;
const SALT_FILES: u64 = 0x5348_4152_4649_4C03;
const SALT_ARRIVAL: u64 = 0x5348_4152_4152_5204;
const SALT_QUERY: u64 = 0x5348_4152_5155_4505;
const SALT_HIT: u64 = 0x5348_4152_4849_5406;
const SALT_LOSS: u64 = 0x5348_4152_4C4F_5307;
const SALT_DELAY: u64 = 0x5348_4152_444C_5908;
const SALT_FLAKE: u64 = 0x5348_4152_464C_4B09;
const SALT_CRASH: u64 = 0x5348_4152_4352_480A;

/// Probability that a visited cluster's index holds a match for a
/// query. A fixed constant (rather than the Appendix B query model)
/// keeps per-visit work O(1) and integer-valued at any scale.
const HIT_PROB: f64 = 0.05;

/// splitmix64 finalizer — the same mixer `SpRng` seeds from, inlined
/// here so a draw costs one multiply chain instead of constructing a
/// generator. Stateless hashing is what makes every draw independent
/// of processing order, hence of the shard layout.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Keyed hash of up to four words: fold each part through the mixer.
fn keyed(salt: u64, a: u64, b: u64, c: u64) -> u64 {
    mix(mix(mix(mix(salt).wrapping_add(a)).wrapping_add(b)).wrapping_add(c))
}

/// Maps a hash word to the unit interval `[0, 1)`.
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Bernoulli draw from a hash word.
fn chance(x: u64, p: f64) -> bool {
    unit(x) < p
}

/// Options for a sharded scale run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleOptions {
    /// Simulated duration in seconds; one tick per second, rounded up.
    pub duration_secs: f64,
    /// Workload seed: topology, per-peer file counts, query arrivals,
    /// and hit draws all derive from it.
    pub seed: u64,
    /// Fault-stream seed (crash selection, loss/delay/flake draws),
    /// split from the workload seed exactly like the churn engines.
    pub fault_seed: u64,
    /// Number of shards; clamped to `[1, clusters]`. Results are
    /// bitwise identical at every value.
    pub shards: usize,
    /// Barrier watchdog: how long a shard waits on a barrier receive,
    /// in units of 100 ms, before declaring the run stalled and
    /// failing with a diagnostic dump. `0` disables the watchdog
    /// (receives block indefinitely).
    pub barrier_timeout_ticks: u32,
    /// Test-only fault hook: `Some((shard, tick))` makes that shard's
    /// reactor panic at the start of that tick, exercising the
    /// supervisor's fail-fast path. Never set in production runs.
    pub inject_panic: Option<(usize, u32)>,
    /// Overload-control policy. The empty policy (the default) is
    /// bitwise inert: no queueing, no shedding, identical metrics.
    pub overload: OverloadPolicy,
}

impl Default for ScaleOptions {
    fn default() -> Self {
        ScaleOptions {
            duration_secs: 300.0,
            seed: 0xC0FFEE,
            fault_seed: 0,
            shards: 1,
            barrier_timeout_ticks: 0,
            inject_panic: None,
            overload: OverloadPolicy::default(),
        }
    }
}

/// Per-shard event payload: what a reactor schedules for itself.
/// Cross-shard work never rides the event queue — it is always an
/// explicit [`ShardMsg`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScaleEvent {
    /// The `n`-th query arrival of `peer`. Processing it draws and
    /// schedules arrival `n + 1`, so the queue holds at most one
    /// arrival per peer.
    Query {
        /// Global peer id.
        peer: u64,
        /// Arrival index, keys the inter-arrival hash stream.
        n: u32,
        /// Admission token-bucket level at this arrival. The level
        /// rides the event (each peer has at most one pending arrival)
        /// instead of a per-peer resident array, so a million-peer run
        /// stays O(peers) in the queue alone. Always `0.0` when the
        /// overload policy is empty — the field is then inert.
        tokens: f64,
    },
    /// A Section 5.3 election in `cluster`, scheduled one tick after a
    /// crash left it headless.
    Election {
        /// Global cluster id (always shard-local by construction).
        cluster: u32,
    },
}

/// What an inter-shard message carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MsgKind {
    /// One hop of a query flood.
    Flood {
        /// Stable query identity, keys the per-cluster hit draws.
        query_key: u64,
        /// Remaining hops after this delivery.
        ttl_left: u8,
        /// Hops traveled so far (this delivery inclusive).
        hops: u8,
    },
    /// A post-election re-index announcement to an overlay neighbor.
    Reindex,
    /// A query handed off by a persistently saturated super-peer to an
    /// overlay neighbor (deterministic re-homing). The new home either
    /// admits it into its own queue or the handoff fails outright — a
    /// re-homed query is never re-homed again, so there are no chains.
    Rehome {
        /// Stable query identity, keys the per-cluster hit draws.
        query_key: u64,
        /// Effective TTL granted at the original admission attempt.
        ttl: u8,
        /// Tick the query was originally issued — latency accounting
        /// spans the handoff.
        arrival: u32,
    },
}

/// One cluster-to-cluster message, delivered at a tick barrier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardMsg {
    /// Tick at which the destination shard delivers this message.
    pub deliver_tick: u32,
    /// Sending cluster.
    pub src_cluster: u32,
    /// Per-source-cluster sequence number — with `src_cluster`, the
    /// layout-invariant delivery sort key.
    pub seq: u32,
    /// Receiving cluster.
    pub dst_cluster: u32,
    /// Payload.
    pub kind: MsgKind,
}

/// One barrier batch: every shard sends exactly one per tick to every
/// other shard, empty or not, which is what makes the receive loop a
/// deterministic barrier rather than a poll.
struct Batch {
    tick: u32,
    msgs: Vec<ShardMsg>,
}

/// The supervisor's account of a failed sharded run: which shard
/// faulted, where, why, and how far every shard got — so a panic,
/// stall, or preemption yields a named diagnostic instead of a hung
/// barrier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFailure {
    /// Shard the failure is attributed to. Panics rank above watchdog
    /// stalls, which rank above peer disconnects: the latter two are
    /// downstream symptoms of whichever shard died first.
    pub shard: usize,
    /// Tick that shard was executing when it failed.
    pub tick: u32,
    /// Panic payload, watchdog stall, or disconnect description.
    pub reason: String,
    /// Last tick each shard reached, indexed by shard — the
    /// diagnostic snapshot of all reactors at the moment of failure.
    pub shard_ticks: Vec<u32>,
}

impl ShardFailure {
    /// Multi-line diagnostic dump: the failure plus every shard's
    /// progress, for operators chasing a stall.
    pub fn diagnostic(&self) -> String {
        let mut out = format!(
            "shard {} failed at tick {}: {}\nshard progress at failure:\n",
            self.shard, self.tick, self.reason
        );
        for (i, t) in self.shard_ticks.iter().enumerate() {
            let marker = if i == self.shard { "  <- failed" } else { "" };
            out.push_str(&format!("  shard {i}: tick {t}{marker}\n"));
        }
        out
    }
}

impl std::fmt::Display for ShardFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard {} failed at tick {}: {}",
            self.shard, self.tick, self.reason
        )
    }
}

impl std::error::Error for ShardFailure {}

/// Why one shard's reactor stopped early (supervisor-internal; the
/// shard index is attached when the supervisor folds these).
#[derive(Debug)]
struct ShardError {
    tick: u32,
    reason: String,
}

impl ShardError {
    fn disconnected(t: u32, peer: usize) -> ShardError {
        ShardError {
            tick: t,
            reason: format!(
                "peer shard {peer} disconnected before its tick-{} barrier batch arrived",
                t.saturating_sub(1)
            ),
        }
    }
}

/// What a shard reactor hands back to the supervisor on success.
struct ShardRun {
    metrics: ScaleMetrics,
    diag: ScaleDiag,
    carry: Option<ShardCarry>,
}

/// One queued query awaiting service at a super-peer. The effective
/// TTL and fanout cap were fixed at admission (brownout degrades ride
/// admission, not service).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OvEntry {
    /// Tick the query was issued (transit included for re-homed ones).
    arrival: u32,
    /// Stable query identity, keys the hit draws.
    key: u64,
    /// Effective flood TTL granted at admission.
    ttl: u8,
    /// Per-hop fanout cap granted at admission; `0` means uncapped.
    fanout: u8,
}

/// One cluster's overload-control runtime state: the bounded work
/// queue, the fractional service credit, brownout hysteresis counters,
/// and the consecutive-saturation strike count. Everything is a pure
/// function of cluster-local history — no draws — which is what keeps
/// the subsystem shard-count invariant.
#[derive(Debug, Clone, Default, PartialEq)]
struct ClusterOvScale {
    queue: VecDeque<OvEntry>,
    credit: f64,
    brownout: bool,
    pressure_run: u32,
    relief_run: u32,
    strikes: u32,
}

/// One shard's slice of the resumable state, in canonical order.
struct ShardCarry {
    alive: Vec<u64>,
    head: Vec<u32>,
    seq: Vec<u32>,
    ov: Vec<ClusterOvScale>,
    events: Vec<(f64, ScaleEvent)>,
    msgs: Vec<ShardMsg>,
}

/// Canonical layout-invariant engine state between ticks — what a
/// scale snapshot serializes. Per-cluster arrays are indexed by global
/// cluster id, so the state redistributes to any shard count.
#[derive(Debug, Clone)]
struct ResumeState {
    /// Next tick to execute.
    tick: u32,
    /// Per-cluster member-liveness bitmasks.
    alive: Vec<u64>,
    /// Per-cluster acting-head member offsets.
    head: Vec<u32>,
    /// Per-cluster message sequence counters.
    seq: Vec<u32>,
    /// Per-cluster overload-control state (queues, credit, brownout,
    /// strikes). All-default when the policy is empty.
    ov: Vec<ClusterOvScale>,
    /// Pending local events as `(time, event)`, grouped by owning
    /// cluster ascending, per-cluster in queue pop order.
    events: Vec<(f64, ScaleEvent)>,
    /// Pending messages (delivery rings plus the boundary tick's
    /// outboxes), sorted by `(deliver_tick, src_cluster, seq)`.
    msgs: Vec<ShardMsg>,
    /// Counters accumulated over ticks `[0, tick)`, merged ascending.
    metrics: ScaleMetrics,
}

/// Global cluster that owns an event (its queries or its election).
fn event_cluster(params: &ScaleParams, event: &ScaleEvent) -> u32 {
    match event {
        ScaleEvent::Query { peer, .. } => (*peer / params.cluster_size as u64) as u32,
        ScaleEvent::Election { cluster } => *cluster,
    }
}

/// Serializes the full counter set, `hop_hist` included.
fn snap_scale_metrics(w: &mut SnapWriter, m: &ScaleMetrics) {
    w.u64(m.peers);
    w.u64(m.clusters);
    w.u64(m.ticks);
    w.u64(m.queries_issued);
    w.u64(m.queries_failed);
    w.u64(m.submissions_flaked);
    w.u64(m.msgs_sent);
    w.u64(m.msgs_delivered);
    w.u64(m.msgs_dropped_loss);
    w.u64(m.msgs_dropped_partition);
    w.u64(m.msgs_dropped_dead);
    w.u64(m.msgs_delayed);
    w.u64(m.msgs_expired);
    w.u64(m.results_found);
    w.u64(m.crashes_injected);
    w.u64(m.elections_held);
    w.u64(m.clusters_dead);
    w.u64(m.reindex_received);
    w.u64(m.ov_admitted);
    w.u64(m.ov_rehome_admitted);
    w.u64(m.ov_rejected_budget);
    w.u64(m.ov_rejected_queue);
    w.u64(m.ov_rehome_sent);
    w.u64(m.ov_handoff_failed);
    w.u64(m.ov_delivered);
    w.u64(m.ov_shed_discipline);
    w.u64(m.ov_shed_dead);
    w.u64(m.ov_shed_residual);
    w.u64(m.ov_degraded);
    w.u64(m.ov_brownout_entries);
    w.u64(m.ov_brownout_ticks);
    w.u64(m.ov_wait_ticks);
    w.u64(m.ov_peak_depth);
    for &v in &m.ov_wait_hist {
        w.u64(v);
    }
    for &v in &m.hop_hist {
        w.u64(v);
    }
}

fn unsnap_scale_metrics(r: &mut SnapReader<'_>) -> Result<ScaleMetrics, SnapshotError> {
    let mut m = ScaleMetrics {
        peers: r.u64("metrics.peers")?,
        clusters: r.u64("metrics.clusters")?,
        ticks: r.u64("metrics.ticks")?,
        queries_issued: r.u64("metrics.queries_issued")?,
        queries_failed: r.u64("metrics.queries_failed")?,
        submissions_flaked: r.u64("metrics.submissions_flaked")?,
        msgs_sent: r.u64("metrics.msgs_sent")?,
        msgs_delivered: r.u64("metrics.msgs_delivered")?,
        msgs_dropped_loss: r.u64("metrics.msgs_dropped_loss")?,
        msgs_dropped_partition: r.u64("metrics.msgs_dropped_partition")?,
        msgs_dropped_dead: r.u64("metrics.msgs_dropped_dead")?,
        msgs_delayed: r.u64("metrics.msgs_delayed")?,
        msgs_expired: r.u64("metrics.msgs_expired")?,
        results_found: r.u64("metrics.results_found")?,
        crashes_injected: r.u64("metrics.crashes_injected")?,
        elections_held: r.u64("metrics.elections_held")?,
        clusters_dead: r.u64("metrics.clusters_dead")?,
        reindex_received: r.u64("metrics.reindex_received")?,
        ov_admitted: r.u64("metrics.ov_admitted")?,
        ov_rehome_admitted: r.u64("metrics.ov_rehome_admitted")?,
        ov_rejected_budget: r.u64("metrics.ov_rejected_budget")?,
        ov_rejected_queue: r.u64("metrics.ov_rejected_queue")?,
        ov_rehome_sent: r.u64("metrics.ov_rehome_sent")?,
        ov_handoff_failed: r.u64("metrics.ov_handoff_failed")?,
        ov_delivered: r.u64("metrics.ov_delivered")?,
        ov_shed_discipline: r.u64("metrics.ov_shed_discipline")?,
        ov_shed_dead: r.u64("metrics.ov_shed_dead")?,
        ov_shed_residual: r.u64("metrics.ov_shed_residual")?,
        ov_degraded: r.u64("metrics.ov_degraded")?,
        ov_brownout_entries: r.u64("metrics.ov_brownout_entries")?,
        ov_brownout_ticks: r.u64("metrics.ov_brownout_ticks")?,
        ov_wait_ticks: r.u64("metrics.ov_wait_ticks")?,
        ov_peak_depth: r.u64("metrics.ov_peak_depth")?,
        ov_wait_hist: [0; SCALE_MAX_HOPS],
        hop_hist: [0; SCALE_MAX_HOPS],
    };
    for v in m.ov_wait_hist.iter_mut() {
        *v = r.u64("metrics.ov_wait_hist")?;
    }
    for v in m.hop_hist.iter_mut() {
        *v = r.u64("metrics.hop_hist")?;
    }
    Ok(m)
}

/// Shard-count-invariant run metrics: fixed-width commutative counters
/// only, folded in ascending shard order at finalize. `PartialEq`
/// compares bitwise — the determinism suite's contract.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScaleMetrics {
    /// Peers simulated (`clusters × cluster_size`; a `graph_size`
    /// remainder that does not fill a cluster is not instantiated).
    pub peers: u64,
    /// Clusters simulated.
    pub clusters: u64,
    /// Ticks executed.
    pub ticks: u64,
    /// Queries issued by live peers in live, unpartitioned clusters.
    pub queries_issued: u64,
    /// Query arrivals that found their peer dead, their cluster dead,
    /// or their cluster partitioned.
    pub queries_failed: u64,
    /// Submissions that hit a flaky partner first (k ≥ 2 only) and
    /// succeeded on instant retry.
    pub submissions_flaked: u64,
    /// Messages emitted (flood hops + re-index announcements), before
    /// loss/expiry.
    pub msgs_sent: u64,
    /// Flood messages delivered and processed.
    pub msgs_delivered: u64,
    /// Messages dropped by an active loss window.
    pub msgs_dropped_loss: u64,
    /// Messages dropped because the destination was partitioned.
    pub msgs_dropped_partition: u64,
    /// Messages dropped because the destination cluster was dead.
    pub msgs_dropped_dead: u64,
    /// Messages that survived but were delayed by a delay window.
    pub msgs_delayed: u64,
    /// Messages whose delivery tick fell past the end of the run.
    pub msgs_expired: u64,
    /// Matches found across all visited clusters (origin included).
    pub results_found: u64,
    /// Partner peers killed by crash faults.
    pub crashes_injected: u64,
    /// Elections completed.
    pub elections_held: u64,
    /// Clusters whose last member died.
    pub clusters_dead: u64,
    /// Re-index announcements received by live neighbors.
    pub reindex_received: u64,
    /// Queries admitted into their own cluster's bounded work queue.
    pub ov_admitted: u64,
    /// Re-homed queries admitted at their new home.
    pub ov_rehome_admitted: u64,
    /// Queries rejected at admission by the per-client token budget.
    pub ov_rejected_budget: u64,
    /// Queries rejected at admission by a full queue (not re-homed).
    pub ov_rejected_queue: u64,
    /// Re-home handoffs emitted by saturated super-peers.
    pub ov_rehome_sent: u64,
    /// Re-home handoffs that died: lost or expired in flight, or the
    /// new home was dead, partitioned, or itself full.
    pub ov_handoff_failed: u64,
    /// Queued queries served to completion (origin search + flood).
    pub ov_delivered: u64,
    /// Queued queries shed by the policy discipline on a full queue.
    pub ov_shed_discipline: u64,
    /// Queued queries shed because their cluster died.
    pub ov_shed_dead: u64,
    /// Queued queries still waiting when the run ended (explicitly
    /// shed at finalize so the conservation ledger closes).
    pub ov_shed_residual: u64,
    /// Queries admitted with a brownout-degraded TTL/fanout.
    pub ov_degraded: u64,
    /// Brownout-mode entries across all clusters.
    pub ov_brownout_entries: u64,
    /// Cluster-ticks spent in brownout mode.
    pub ov_brownout_ticks: u64,
    /// Total ticks served queries waited in queue (transit included
    /// for re-homed queries); mean wait is this over `ov_delivered`.
    pub ov_wait_ticks: u64,
    /// Largest queue depth observed anywhere (merged via `max` — max
    /// is as commutative and associative as addition).
    pub ov_peak_depth: u64,
    /// Served-query waits by power-of-two buckets: bucket `b` holds
    /// waits in `[2^(b−1), 2^b)` ticks (bucket 0 is a zero wait, the
    /// last bucket also holds any overflow). A scan of the cumulative
    /// counts bounds any latency quantile.
    pub ov_wait_hist: [u64; SCALE_MAX_HOPS],
    /// Deliveries by hop count; bucket 15 also holds any overflow.
    pub hop_hist: [u64; SCALE_MAX_HOPS],
}

impl ScaleMetrics {
    /// Folds another shard's counters into this one. Addition is
    /// commutative, but callers fold in ascending shard order anyway so
    /// the operation is reproducible by inspection.
    pub fn merge(&mut self, other: &ScaleMetrics) {
        self.queries_issued += other.queries_issued;
        self.queries_failed += other.queries_failed;
        self.submissions_flaked += other.submissions_flaked;
        self.msgs_sent += other.msgs_sent;
        self.msgs_delivered += other.msgs_delivered;
        self.msgs_dropped_loss += other.msgs_dropped_loss;
        self.msgs_dropped_partition += other.msgs_dropped_partition;
        self.msgs_dropped_dead += other.msgs_dropped_dead;
        self.msgs_delayed += other.msgs_delayed;
        self.msgs_expired += other.msgs_expired;
        self.results_found += other.results_found;
        self.crashes_injected += other.crashes_injected;
        self.elections_held += other.elections_held;
        self.clusters_dead += other.clusters_dead;
        self.reindex_received += other.reindex_received;
        self.ov_admitted += other.ov_admitted;
        self.ov_rehome_admitted += other.ov_rehome_admitted;
        self.ov_rejected_budget += other.ov_rejected_budget;
        self.ov_rejected_queue += other.ov_rejected_queue;
        self.ov_rehome_sent += other.ov_rehome_sent;
        self.ov_handoff_failed += other.ov_handoff_failed;
        self.ov_delivered += other.ov_delivered;
        self.ov_shed_discipline += other.ov_shed_discipline;
        self.ov_shed_dead += other.ov_shed_dead;
        self.ov_shed_residual += other.ov_shed_residual;
        self.ov_degraded += other.ov_degraded;
        self.ov_brownout_entries += other.ov_brownout_entries;
        self.ov_brownout_ticks += other.ov_brownout_ticks;
        self.ov_wait_ticks += other.ov_wait_ticks;
        self.ov_peak_depth = self.ov_peak_depth.max(other.ov_peak_depth);
        for (mine, theirs) in self.ov_wait_hist.iter_mut().zip(other.ov_wait_hist.iter()) {
            *mine += *theirs;
        }
        for (mine, theirs) in self.hop_hist.iter_mut().zip(other.hop_hist.iter()) {
            *mine += *theirs;
        }
    }

    /// The scale engine's extended conservation ledger, meaningful
    /// whenever the overload policy is active: every issued query is
    /// admitted, rejected, or handed off; every handoff is admitted or
    /// failed; and (at a completed run) everything admitted anywhere
    /// was served or explicitly shed. With the empty policy every term
    /// is zero except `queries_issued`, so callers gate on activity.
    pub fn overload_conserved(&self) -> bool {
        let gated = self.ov_admitted
            + self.ov_rejected_budget
            + self.ov_rejected_queue
            + self.ov_rehome_sent;
        let served =
            self.ov_delivered + self.ov_shed_discipline + self.ov_shed_dead + self.ov_shed_residual;
        gated == self.queries_issued
            && self.ov_rehome_sent == self.ov_rehome_admitted + self.ov_handoff_failed
            && self.ov_admitted + self.ov_rehome_admitted == served
    }

    /// Upper bound on the waiting time of the q-quantile served query,
    /// in ticks, from the power-of-two wait histogram. Returns 0 when
    /// nothing was served.
    pub fn ov_wait_quantile_ticks(&self, q: f64) -> u64 {
        let total: u64 = self.ov_wait_hist.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &count) in self.ov_wait_hist.iter().enumerate() {
            seen += count;
            if seen >= target {
                return if b == 0 { 0 } else { 1u64 << b };
            }
        }
        1u64 << (SCALE_MAX_HOPS - 1)
    }

    /// Total simulation events processed — query arrivals, elections,
    /// and every message that reached a delivery decision. The
    /// events/sec throughput figure in `BENCH_scale.json` is this over
    /// wall time.
    pub fn events_processed(&self) -> u64 {
        self.queries_issued
            + self.queries_failed
            + self.elections_held
            + self.msgs_delivered
            + self.msgs_dropped_loss
            + self.msgs_dropped_partition
            + self.msgs_dropped_dead
            + self.msgs_expired
            + self.reindex_received
    }

    /// Renders the metrics as a JSON object (hand-rolled, stable key
    /// order, integers only).
    pub fn to_json(&self) -> String {
        let hist: Vec<String> = self.hop_hist.iter().map(|v| v.to_string()).collect();
        let wait_hist: Vec<String> = self.ov_wait_hist.iter().map(|v| v.to_string()).collect();
        format!(
            concat!(
                "{{\"peers\": {}, \"clusters\": {}, \"ticks\": {}, ",
                "\"queries_issued\": {}, \"queries_failed\": {}, ",
                "\"submissions_flaked\": {}, \"msgs_sent\": {}, ",
                "\"msgs_delivered\": {}, \"msgs_dropped_loss\": {}, ",
                "\"msgs_dropped_partition\": {}, \"msgs_dropped_dead\": {}, ",
                "\"msgs_delayed\": {}, \"msgs_expired\": {}, ",
                "\"results_found\": {}, \"crashes_injected\": {}, ",
                "\"elections_held\": {}, \"clusters_dead\": {}, ",
                "\"reindex_received\": {}, \"events_processed\": {}, ",
                "\"ov_admitted\": {}, \"ov_rehome_admitted\": {}, ",
                "\"ov_rejected_budget\": {}, \"ov_rejected_queue\": {}, ",
                "\"ov_rehome_sent\": {}, \"ov_handoff_failed\": {}, ",
                "\"ov_delivered\": {}, \"ov_shed_discipline\": {}, ",
                "\"ov_shed_dead\": {}, \"ov_shed_residual\": {}, ",
                "\"ov_degraded\": {}, \"ov_brownout_entries\": {}, ",
                "\"ov_brownout_ticks\": {}, \"ov_wait_ticks\": {}, ",
                "\"ov_peak_depth\": {}, \"ov_wait_p99_ticks\": {}, ",
                "\"ov_wait_hist\": [{}], ",
                "\"hop_hist\": [{}]}}"
            ),
            self.peers,
            self.clusters,
            self.ticks,
            self.queries_issued,
            self.queries_failed,
            self.submissions_flaked,
            self.msgs_sent,
            self.msgs_delivered,
            self.msgs_dropped_loss,
            self.msgs_dropped_partition,
            self.msgs_dropped_dead,
            self.msgs_delayed,
            self.msgs_expired,
            self.results_found,
            self.crashes_injected,
            self.elections_held,
            self.clusters_dead,
            self.reindex_received,
            self.events_processed(),
            self.ov_admitted,
            self.ov_rehome_admitted,
            self.ov_rejected_budget,
            self.ov_rejected_queue,
            self.ov_rehome_sent,
            self.ov_handoff_failed,
            self.ov_delivered,
            self.ov_shed_discipline,
            self.ov_shed_dead,
            self.ov_shed_residual,
            self.ov_degraded,
            self.ov_brownout_entries,
            self.ov_brownout_ticks,
            self.ov_wait_ticks,
            self.ov_peak_depth,
            self.ov_wait_quantile_ticks(0.99),
            wait_hist.join(", "),
            hist.join(", "),
        )
    }
}

/// Layout-*dependent* observability, deliberately kept out of
/// [`ScaleMetrics`] so bitwise comparisons stay meaningful: how much
/// traffic crossed shard boundaries, queue depth, and the shard count
/// the run actually used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScaleDiag {
    /// Shards the run executed with (after clamping).
    pub shards: u64,
    /// Messages routed to a different shard.
    pub cross_shard_msgs: u64,
    /// Messages that stayed on their source shard.
    pub intra_shard_msgs: u64,
    /// Largest per-shard event-queue depth observed.
    pub queue_high_water: u64,
}

/// A shard's slice of the overlay plus its mutable cluster state.
struct ShardState {
    /// First owned cluster (global id).
    base: u32,
    /// CSR offsets into `edges`, one per owned cluster plus sentinel.
    offsets: Vec<u32>,
    /// Out-neighbor cluster ids (global), power-law degrees.
    edges: Vec<u32>,
    /// Per-owned-cluster member-liveness bitmask.
    alive: Vec<u64>,
    /// Per-owned-cluster acting-head member offset.
    head: Vec<u32>,
    /// Per-owned-cluster message sequence counters.
    seq: Vec<u32>,
}

impl ShardState {
    fn local(&self, cluster: u32) -> usize {
        (cluster - self.base) as usize
    }

    fn neighbors(&self, local: usize) -> &[u32] {
        &self.edges[self.offsets[local] as usize..self.offsets[local + 1] as usize]
    }
}

/// Static parameters shared read-only by every shard.
#[derive(Debug, Clone, Copy)]
struct ScaleParams {
    clusters: usize,
    cluster_size: usize,
    redundancy_k: usize,
    ttl: u8,
    query_rate: f64,
    avg_outdegree: f64,
    ticks: u32,
    horizon: u32,
    seed: u64,
    fault_seed: u64,
    overload: OverloadPolicy,
}

/// The sharded scale simulator. Construction validates and captures
/// the configuration; [`run`](ShardedSimulation::run) executes the
/// tick loop (re-runnable — all mutable state is per-run). A run can
/// be paused at any tick boundary ([`run_to`](ShardedSimulation::run_to)),
/// serialized ([`snapshot`](ShardedSimulation::snapshot)), and resumed
/// at any shard count ([`restore`](ShardedSimulation::restore)) with
/// bitwise-identical final metrics.
#[derive(Debug)]
pub struct ShardedSimulation {
    params: ScaleParams,
    plan: FaultPlan,
    shards: usize,
    diag: ScaleDiag,
    barrier_timeout_ticks: u32,
    inject_panic: Option<(usize, u32)>,
    resume: Option<ResumeState>,
}

impl ShardedSimulation {
    /// Builds a fault-free run.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `cluster_size`
    /// exceeds [`SCALE_MAX_CLUSTER`].
    pub fn new(config: &Config, opts: ScaleOptions) -> Self {
        ShardedSimulation::with_faults(config, opts, &FaultPlan::default())
    }

    /// Builds a run with a fault plan.
    ///
    /// # Panics
    ///
    /// Panics if the configuration or plan is invalid, or
    /// `cluster_size` exceeds [`SCALE_MAX_CLUSTER`].
    pub fn with_faults(config: &Config, opts: ScaleOptions, plan: &FaultPlan) -> Self {
        config.validate().expect("invalid configuration");
        plan.validate().expect("invalid fault plan");
        opts.overload.validate().expect("invalid overload policy");
        assert!(
            config.cluster_size <= SCALE_MAX_CLUSTER,
            "scale engine supports cluster_size <= {SCALE_MAX_CLUSTER}"
        );
        let clusters = config.num_clusters();
        let ticks = (opts.duration_secs.ceil() as u32).max(1);
        // The delivery ring must reach one tick past the worst-case
        // delay. Concurrent delay windows stack, so sum them; +2
        // covers the base next-tick hop and the current tick's slot.
        let max_delay: u32 = plan
            .faults
            .iter()
            .map(|f| match f {
                FaultSpec::MessageDelay { delay_secs, .. } => (delay_secs.ceil() as u32).max(1),
                _ => 0,
            })
            .sum();
        ShardedSimulation {
            params: ScaleParams {
                clusters,
                cluster_size: config.cluster_size,
                redundancy_k: config.redundancy_k,
                ttl: config.ttl.min((SCALE_MAX_HOPS - 1) as u16) as u8,
                query_rate: config.query_rate,
                avg_outdegree: config.avg_outdegree.max(1.01),
                ticks,
                horizon: max_delay + 2,
                seed: opts.seed,
                fault_seed: opts.fault_seed,
                overload: opts.overload,
            },
            plan: plan.clone(),
            shards: opts.shards.clamp(1, clusters),
            diag: ScaleDiag::default(),
            barrier_timeout_ticks: opts.barrier_timeout_ticks,
            inject_panic: opts.inject_panic,
            resume: None,
        }
    }

    /// Layout-dependent diagnostics from the most recent
    /// [`run`](ShardedSimulation::run); zeroed before the first.
    pub fn diag(&self) -> &ScaleDiag {
        &self.diag
    }

    /// Executes the run and folds per-shard metrics in ascending shard
    /// order. Bitwise identical for every shard count. Resumes from a
    /// prior [`run_to`](ShardedSimulation::run_to) /
    /// [`restore`](ShardedSimulation::restore) point if one is set,
    /// and clears it, so a subsequent call starts fresh.
    ///
    /// # Panics
    ///
    /// Panics with the [`ShardFailure`] rendering if any shard reactor
    /// fails; use [`try_run`](ShardedSimulation::try_run) to handle
    /// failures as values.
    pub fn run(&mut self) -> ScaleMetrics {
        self.try_run().unwrap_or_else(|f| panic!("{f}"))
    }

    /// [`run`](ShardedSimulation::run), with shard panics, barrier
    /// stalls, and disconnects reported as a [`ShardFailure`] instead
    /// of panicking or hanging: the supervisor wraps every reactor in
    /// `catch_unwind` and every barrier wait is error-aware, so one
    /// dead shard unwinds the whole run promptly.
    pub fn try_run(&mut self) -> Result<ScaleMetrics, ShardFailure> {
        let (mut metrics, _) = self.execute(self.params.ticks, false)?;
        metrics.peers = (self.params.clusters * self.params.cluster_size) as u64;
        metrics.clusters = self.params.clusters as u64;
        metrics.ticks = self.params.ticks as u64;
        Ok(metrics)
    }

    /// Advances the run to tick `tick` (clamped to the run length) and
    /// parks the canonical engine state for
    /// [`snapshot`](ShardedSimulation::snapshot) or a later
    /// [`run`](ShardedSimulation::run) to pick up.
    pub fn run_to(&mut self, tick: u32) -> Result<(), ShardFailure> {
        let (_, resume) = self.execute(tick, true)?;
        self.resume = resume;
        Ok(())
    }

    /// Next tick a [`run`](ShardedSimulation::run) would execute: the
    /// parked checkpoint position, or 0 when starting fresh.
    pub fn tick(&self) -> u32 {
        self.resume.as_ref().map_or(0, |r| r.tick)
    }

    /// Total ticks in the run (`duration_secs` rounded up).
    pub fn total_ticks(&self) -> u32 {
        self.params.ticks
    }

    /// Whether overload control is active for this run (from the
    /// options on a fresh run, or the snapshot on a restored one).
    pub fn overload_active(&self) -> bool {
        !self.params.overload.is_empty()
    }

    /// Serializes the parked engine state (see
    /// [`run_to`](ShardedSimulation::run_to)) into a sealed snapshot.
    /// The state is canonical — per-cluster arrays indexed by global
    /// cluster id, events and messages in layout-invariant order — so
    /// the snapshot is byte-identical no matter how many shards
    /// produced it, and restores at any shard count. Calling this
    /// before any `run_to` snapshots the initial (tick 0) state.
    pub fn snapshot(&mut self) -> Vec<u8> {
        if self.resume.is_none() {
            self.run_to(0)
                .expect("zero-tick state materialization cannot fail");
        }
        let r = self
            .resume
            .as_ref()
            .expect("resume state just materialized");
        let p = &self.params;
        let mut w = SnapWriter::new();
        w.len(p.clusters);
        w.len(p.cluster_size);
        w.len(p.redundancy_k);
        w.u8(p.ttl);
        w.f64(p.query_rate);
        w.f64(p.avg_outdegree);
        w.u32(p.ticks);
        w.u32(p.horizon);
        w.u64(p.seed);
        w.u64(p.fault_seed);
        w.str(&self.plan.to_json());
        w.str(&p.overload.to_json());
        w.u32(r.tick);
        for &a in &r.alive {
            w.u64(a);
        }
        for &h in &r.head {
            w.u32(h);
        }
        for &s in &r.seq {
            w.u32(s);
        }
        for ov in &r.ov {
            w.f64(ov.credit);
            w.u8(ov.brownout as u8);
            w.u32(ov.pressure_run);
            w.u32(ov.relief_run);
            w.u32(ov.strikes);
            w.len(ov.queue.len());
            for e in &ov.queue {
                w.u32(e.arrival);
                w.u64(e.key);
                w.u8(e.ttl);
                w.u8(e.fanout);
            }
        }
        w.len(r.events.len());
        for &(time, event) in &r.events {
            w.f64(time);
            match event {
                ScaleEvent::Query { peer, n, tokens } => {
                    w.u8(0);
                    w.u64(peer);
                    w.u32(n);
                    w.f64(tokens);
                }
                ScaleEvent::Election { cluster } => {
                    w.u8(1);
                    w.u32(cluster);
                }
            }
        }
        w.len(r.msgs.len());
        for m in &r.msgs {
            w.u32(m.deliver_tick);
            w.u32(m.src_cluster);
            w.u32(m.seq);
            w.u32(m.dst_cluster);
            match m.kind {
                MsgKind::Flood {
                    query_key,
                    ttl_left,
                    hops,
                } => {
                    w.u8(0);
                    w.u64(query_key);
                    w.u8(ttl_left);
                    w.u8(hops);
                }
                MsgKind::Reindex => w.u8(1),
                MsgKind::Rehome {
                    query_key,
                    ttl,
                    arrival,
                } => {
                    w.u8(2);
                    w.u64(query_key);
                    w.u8(ttl);
                    w.u32(arrival);
                }
            }
        }
        snap_scale_metrics(&mut w, &r.metrics);
        w.seal(ENGINE_SCALE)
    }

    /// Rebuilds a paused run from a sealed scale snapshot. The
    /// workload (config-derived parameters, fault plan, seeds) comes
    /// from the snapshot; only `opts.shards`,
    /// `opts.barrier_timeout_ticks`, and `opts.inject_panic` are
    /// honored — resuming at a different shard count than the one
    /// that produced the snapshot still yields bitwise-identical
    /// metrics. Every field is validated; impossible values are
    /// [`SnapshotError::Malformed`], never panics.
    pub fn restore(data: &[u8], opts: ScaleOptions) -> Result<ShardedSimulation, SnapshotError> {
        let malformed = |msg: String| SnapshotError::Malformed(msg);
        let mut r = SnapReader::open(data)?;
        r.expect_engine(ENGINE_SCALE)?;
        let clusters = r.len("clusters")?;
        let cluster_size = r.len("cluster_size")?;
        let redundancy_k = r.len("redundancy_k")?;
        let ttl = r.u8("ttl")?;
        let query_rate = r.f64("query_rate")?;
        let avg_outdegree = r.f64("avg_outdegree")?;
        let ticks = r.u32("ticks")?;
        let horizon = r.u32("horizon")?;
        let seed = r.u64("seed")?;
        let fault_seed = r.u64("fault_seed")?;
        if clusters == 0 {
            return Err(malformed("zero clusters".into()));
        }
        if cluster_size == 0 || cluster_size > SCALE_MAX_CLUSTER {
            return Err(malformed(format!(
                "cluster_size {cluster_size} outside [1, {SCALE_MAX_CLUSTER}]"
            )));
        }
        if redundancy_k == 0 || redundancy_k > cluster_size {
            return Err(malformed(format!(
                "redundancy_k {redundancy_k} outside [1, cluster_size]"
            )));
        }
        if ttl as usize >= SCALE_MAX_HOPS {
            return Err(malformed(format!(
                "ttl {ttl} exceeds {}",
                SCALE_MAX_HOPS - 1
            )));
        }
        if ticks == 0 || horizon < 2 {
            return Err(malformed(format!(
                "ticks {ticks} / horizon {horizon} out of range"
            )));
        }
        if !query_rate.is_finite() || query_rate <= 0.0 {
            return Err(malformed(format!("query_rate {query_rate} not positive")));
        }
        if !avg_outdegree.is_finite() || avg_outdegree <= 1.0 {
            return Err(malformed(format!("avg_outdegree {avg_outdegree} <= 1")));
        }
        let plan = FaultPlan::from_json(r.str("fault plan")?)
            .map_err(|e| malformed(format!("embedded fault plan: {e}")))?;
        plan.validate()
            .map_err(|e| malformed(format!("embedded fault plan: {e}")))?;
        let overload = OverloadPolicy::from_json(r.str("overload policy")?)
            .map_err(|e| malformed(format!("embedded overload policy: {e}")))?;
        overload
            .validate()
            .map_err(|e| malformed(format!("embedded overload policy: {e}")))?;
        let tick = r.u32("resume tick")?;
        if tick > ticks {
            return Err(malformed(format!(
                "resume tick {tick} past run end {ticks}"
            )));
        }
        let mut alive = Vec::with_capacity(clusters);
        let full_mask = if cluster_size >= 64 {
            u64::MAX
        } else {
            (1u64 << cluster_size) - 1
        };
        for _ in 0..clusters {
            let mask = r.u64("alive mask")?;
            if mask & !full_mask != 0 {
                return Err(malformed("alive mask names nonexistent members".into()));
            }
            alive.push(mask);
        }
        let mut head = Vec::with_capacity(clusters);
        for _ in 0..clusters {
            let h = r.u32("head offset")?;
            if h as usize >= cluster_size {
                return Err(malformed(format!("head offset {h} outside cluster")));
            }
            head.push(h);
        }
        let mut seq = Vec::with_capacity(clusters);
        for _ in 0..clusters {
            seq.push(r.u32("seq counter")?);
        }
        let mut ov = Vec::with_capacity(clusters);
        for _ in 0..clusters {
            let credit = r.f64("ov credit")?;
            if !credit.is_finite() || credit < 0.0 {
                return Err(malformed(format!("ov credit {credit} not a valid level")));
            }
            let brownout = match r.u8("ov brownout flag")? {
                0 => false,
                1 => true,
                other => return Err(malformed(format!("ov brownout flag {other} not a bool"))),
            };
            let pressure_run = r.u32("ov pressure run")?;
            let relief_run = r.u32("ov relief run")?;
            let strikes = r.u32("ov strikes")?;
            let n_entries = r.len("ov queue len")?;
            let mut queue = VecDeque::with_capacity(n_entries);
            for _ in 0..n_entries {
                let arrival = r.u32("ov entry arrival")?;
                let key = r.u64("ov entry key")?;
                let entry_ttl = r.u8("ov entry ttl")?;
                let fanout = r.u8("ov entry fanout")?;
                if arrival > tick {
                    return Err(malformed(format!(
                        "ov entry arrival {arrival} in the future"
                    )));
                }
                if entry_ttl as usize >= SCALE_MAX_HOPS {
                    return Err(malformed(format!("ov entry ttl {entry_ttl} out of range")));
                }
                queue.push_back(OvEntry {
                    arrival,
                    key,
                    ttl: entry_ttl,
                    fanout,
                });
            }
            ov.push(ClusterOvScale {
                queue,
                credit,
                brownout,
                pressure_run,
                relief_run,
                strikes,
            });
        }
        let peers_total = (clusters * cluster_size) as u64;
        let n_events = r.len("event count")?;
        let mut events = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            let time = r.f64("event time")?;
            if !time.is_finite() || time < tick as f64 || time >= ticks as f64 {
                return Err(malformed(format!("event time {time} outside run")));
            }
            let event = match r.u8("event tag")? {
                0 => {
                    let peer = r.u64("event peer")?;
                    let n = r.u32("event arrival index")?;
                    let tokens = r.f64("event tokens")?;
                    if peer >= peers_total {
                        return Err(malformed(format!("event peer {peer} out of range")));
                    }
                    if !tokens.is_finite() || tokens < 0.0 {
                        return Err(malformed(format!(
                            "event tokens {tokens} not a valid level"
                        )));
                    }
                    ScaleEvent::Query { peer, n, tokens }
                }
                1 => {
                    let cluster = r.u32("event cluster")?;
                    if cluster as usize >= clusters {
                        return Err(malformed(format!("event cluster {cluster} out of range")));
                    }
                    ScaleEvent::Election { cluster }
                }
                other => return Err(malformed(format!("unknown event tag {other}"))),
            };
            events.push((time, event));
        }
        let n_msgs = r.len("message count")?;
        let mut msgs = Vec::with_capacity(n_msgs);
        for _ in 0..n_msgs {
            let deliver_tick = r.u32("msg deliver tick")?;
            let src_cluster = r.u32("msg src cluster")?;
            let mseq = r.u32("msg seq")?;
            let dst_cluster = r.u32("msg dst cluster")?;
            if deliver_tick < tick || deliver_tick >= ticks || deliver_tick - tick >= horizon {
                return Err(malformed(format!(
                    "msg deliver tick {deliver_tick} outside the delivery window"
                )));
            }
            if src_cluster as usize >= clusters || dst_cluster as usize >= clusters {
                return Err(malformed("msg names a nonexistent cluster".into()));
            }
            let kind = match r.u8("msg kind tag")? {
                0 => {
                    let query_key = r.u64("msg query key")?;
                    let ttl_left = r.u8("msg ttl")?;
                    let hops = r.u8("msg hops")?;
                    if ttl_left as usize >= SCALE_MAX_HOPS {
                        return Err(malformed(format!("msg ttl {ttl_left} out of range")));
                    }
                    MsgKind::Flood {
                        query_key,
                        ttl_left,
                        hops,
                    }
                }
                1 => MsgKind::Reindex,
                2 => {
                    let query_key = r.u64("msg query key")?;
                    let msg_ttl = r.u8("msg ttl")?;
                    let arrival = r.u32("msg arrival")?;
                    if msg_ttl as usize >= SCALE_MAX_HOPS {
                        return Err(malformed(format!("msg ttl {msg_ttl} out of range")));
                    }
                    if arrival > deliver_tick {
                        return Err(malformed(format!(
                            "rehome arrival {arrival} after delivery tick {deliver_tick}"
                        )));
                    }
                    MsgKind::Rehome {
                        query_key,
                        ttl: msg_ttl,
                        arrival,
                    }
                }
                other => return Err(malformed(format!("unknown msg kind tag {other}"))),
            };
            msgs.push(ShardMsg {
                deliver_tick,
                src_cluster,
                seq: mseq,
                dst_cluster,
                kind,
            });
        }
        let metrics = unsnap_scale_metrics(&mut r)?;
        r.finish()?;
        Ok(ShardedSimulation {
            params: ScaleParams {
                clusters,
                cluster_size,
                redundancy_k,
                ttl,
                query_rate,
                avg_outdegree,
                ticks,
                horizon,
                seed,
                fault_seed,
                overload,
            },
            plan,
            shards: opts.shards.clamp(1, clusters),
            diag: ScaleDiag::default(),
            barrier_timeout_ticks: opts.barrier_timeout_ticks,
            inject_panic: opts.inject_panic,
            resume: Some(ResumeState {
                tick,
                alive,
                head,
                seq,
                ov,
                events,
                msgs,
                metrics,
            }),
        })
    }

    /// Runs ticks `[current, until)` under the supervisor, folding
    /// per-shard results in ascending shard order. With `keep_state`
    /// the canonical resume state at `until` is returned alongside the
    /// cumulative metrics.
    fn execute(
        &mut self,
        until: u32,
        keep_state: bool,
    ) -> Result<(ScaleMetrics, Option<ResumeState>), ShardFailure> {
        let params = self.params;
        let plan = &self.plan;
        let spans = shard_spans(params.clusters, self.shards);
        let shard_starts: Vec<usize> = spans.iter().map(|&(s, _)| s).collect();
        let n = spans.len();
        let prior = self.resume.take();
        let t0 = prior.as_ref().map_or(0, |r| r.tick);
        let t1 = until.clamp(t0, params.ticks);
        let base_metrics = prior
            .as_ref()
            .map(|r| r.metrics.clone())
            .unwrap_or_default();

        // Slice the canonical state into per-shard carries: contiguous
        // cluster ranges for the arrays, ownership filters for events
        // and messages. A fresh start carries nothing and seeds
        // in-shard instead.
        let carries: Vec<Option<ShardCarry>> = match &prior {
            None => (0..n).map(|_| None).collect(),
            Some(r) => spans
                .iter()
                .map(|&(s, e)| {
                    Some(ShardCarry {
                        alive: r.alive[s..e].to_vec(),
                        head: r.head[s..e].to_vec(),
                        seq: r.seq[s..e].to_vec(),
                        ov: r.ov[s..e].to_vec(),
                        events: r
                            .events
                            .iter()
                            .filter(|(_, ev)| {
                                let c = event_cluster(&params, ev) as usize;
                                c >= s && c < e
                            })
                            .copied()
                            .collect(),
                        msgs: r
                            .msgs
                            .iter()
                            .filter(|m| {
                                let c = m.dst_cluster as usize;
                                c >= s && c < e
                            })
                            .copied()
                            .collect(),
                    })
                })
                .collect(),
        };
        let timeout = if self.barrier_timeout_ticks == 0 {
            None
        } else {
            Some(Duration::from_millis(100) * self.barrier_timeout_ticks)
        };
        let inject = self.inject_panic;
        let inject_for = |shard: usize| inject.filter(|&(s, _)| s == shard).map(|(_, at)| at);
        let progress: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(t0)).collect();

        let outcomes: Vec<Result<ShardRun, ShardError>> = if n == 1 {
            let mut carries = carries;
            vec![supervised(
                ShardCtx {
                    params,
                    plan,
                    shard_starts: &shard_starts,
                    me: 0,
                    span: spans[0],
                    range: (t0, t1),
                    carry: carries[0].take(),
                    keep_state,
                    inject_at: inject_for(0),
                    timeout,
                },
                Vec::new(),
                Vec::new(),
                &progress[0],
            )]
        } else {
            // One bounded channel per ordered shard pair. Capacity 2:
            // a shard only sends tick t after receiving every tick t−1
            // batch, so at most the previous and current tick's batches
            // can be unconsumed.
            let mut txs: Vec<Vec<Option<SyncSender<Batch>>>> =
                (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
            let mut rxs: Vec<Vec<Option<Receiver<Batch>>>> =
                (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
            for (i, row) in txs.iter_mut().enumerate() {
                for (j, slot) in row.iter_mut().enumerate() {
                    if i != j {
                        let (tx, rx) = sync_channel(2);
                        *slot = Some(tx);
                        rxs[j][i] = Some(rx);
                    }
                }
            }
            let endpoints: Vec<_> = txs.into_iter().zip(rxs).zip(carries).collect();
            std::thread::scope(|scope| {
                let handles: Vec<_> = endpoints
                    .into_iter()
                    .enumerate()
                    .map(|(i, ((tx_row, rx_row), carry))| {
                        let shard_starts = &shard_starts;
                        let progress = &progress[i];
                        let span = spans[i];
                        let inject_at = inject_for(i);
                        scope.spawn(move || {
                            supervised(
                                ShardCtx {
                                    params,
                                    plan,
                                    shard_starts,
                                    me: i,
                                    span,
                                    range: (t0, t1),
                                    carry,
                                    keep_state,
                                    inject_at,
                                    timeout,
                                },
                                tx_row,
                                rx_row,
                                progress,
                            )
                        })
                    })
                    .collect();
                // Join in shard index order: the fold below then merges
                // ascending. Panics were converted to ShardError inside
                // the thread by the catch_unwind wrapper; a join error
                // can only mean the wrapper itself died.
                handles
                    .into_iter()
                    .map(|h| {
                        h.join().unwrap_or_else(|payload| {
                            Err(ShardError {
                                tick: t0,
                                reason: format!(
                                    "supervisor wrapper panicked: {}",
                                    panic_message(payload.as_ref())
                                ),
                            })
                        })
                    })
                    .collect()
            })
        };

        let shard_ticks: Vec<u32> = progress.iter().map(|p| p.load(Ordering::Relaxed)).collect();
        let mut failures: Vec<(usize, ShardError)> = Vec::new();
        let mut runs: Vec<ShardRun> = Vec::new();
        for (i, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Ok(run) => runs.push(run),
                Err(err) => failures.push((i, err)),
            }
        }
        if !failures.is_empty() {
            // Attribute the failure to its root cause: a panic beats a
            // watchdog stall beats a peer disconnect (the latter two
            // are downstream of whichever shard died first).
            let rank = |reason: &str| {
                if reason.starts_with("panicked") || reason.starts_with("supervisor") {
                    0
                } else if reason.starts_with("barrier stalled") {
                    1
                } else {
                    2
                }
            };
            failures.sort_by_key(|(shard, err)| (rank(&err.reason), *shard));
            let (shard, err) = failures.swap_remove(0);
            self.diag = ScaleDiag {
                shards: n as u64,
                ..ScaleDiag::default()
            };
            return Err(ShardFailure {
                shard,
                tick: err.tick,
                reason: err.reason,
                shard_ticks,
            });
        }

        let mut metrics = base_metrics;
        let mut diag = ScaleDiag {
            shards: n as u64,
            ..ScaleDiag::default()
        };
        let mut resume = keep_state.then(|| ResumeState {
            tick: t1,
            alive: Vec::with_capacity(params.clusters),
            head: Vec::with_capacity(params.clusters),
            seq: Vec::with_capacity(params.clusters),
            ov: Vec::with_capacity(params.clusters),
            events: Vec::new(),
            msgs: Vec::new(),
            metrics: ScaleMetrics::default(),
        });
        for run in runs {
            metrics.merge(&run.metrics);
            diag.cross_shard_msgs += run.diag.cross_shard_msgs;
            diag.intra_shard_msgs += run.diag.intra_shard_msgs;
            diag.queue_high_water = diag.queue_high_water.max(run.diag.queue_high_water);
            if let (Some(rs), Some(carry)) = (resume.as_mut(), run.carry) {
                rs.alive.extend(carry.alive);
                rs.head.extend(carry.head);
                rs.seq.extend(carry.seq);
                rs.ov.extend(carry.ov);
                rs.events.extend(carry.events);
                rs.msgs.extend(carry.msgs);
            }
        }
        if let Some(rs) = resume.as_mut() {
            // Canonicalize: per-cluster relative order is what the
            // engine's invariance rests on, so a *stable* sort by
            // owning cluster (events arrive per-shard in queue pop
            // order) and a total-order sort for messages make the
            // state — and hence the snapshot bytes — identical no
            // matter how many shards produced it.
            rs.events.sort_by_key(|(_, ev)| event_cluster(&params, ev));
            rs.msgs
                .sort_unstable_by_key(|m| (m.deliver_tick, m.src_cluster, m.seq));
            rs.metrics = metrics.clone();
        }
        self.diag = diag;
        Ok((metrics, resume))
    }
}

/// Wraps one shard reactor in `catch_unwind`, converting a panic into
/// a [`ShardError`] carrying the tick the reactor had reached — the
/// supervisor's fail-fast unit. Dropping the reactor's channel
/// endpoints on the way out is what unblocks every peer shard.
fn supervised(
    ctx: ShardCtx<'_>,
    txs: Vec<Option<SyncSender<Batch>>>,
    rxs: Vec<Option<Receiver<Batch>>>,
    progress: &AtomicU32,
) -> Result<ShardRun, ShardError> {
    catch_unwind(AssertUnwindSafe(|| run_shard(ctx, txs, rxs, progress))).unwrap_or_else(
        |payload| {
            Err(ShardError {
                tick: progress.load(Ordering::Relaxed),
                reason: format!("panicked: {}", panic_message(payload.as_ref())),
            })
        },
    )
}

/// Power-law-ish outdegree for a cluster: a discrete Pareto draw with
/// the shape chosen so the continuous mean matches `avg_outdegree`,
/// clamped to `[1, min(64, clusters − 1)]`. An approximation of the
/// PLOD construction the instance generator uses — good enough for a
/// throughput benchmark, and a pure function of `(seed, cluster)`.
fn degree_of(params: &ScaleParams, cluster: u32) -> usize {
    if params.clusters <= 1 {
        return 0;
    }
    let cap = (params.clusters - 1).min(SCALE_MAX_CLUSTER);
    let alpha = params.avg_outdegree / (params.avg_outdegree - 1.0);
    let u = unit(keyed(SALT_DEGREE, params.seed, cluster as u64, 0)).max(1e-12);
    let d = (1.0 / u.powf(1.0 / alpha)).floor() as usize;
    d.clamp(1, cap)
}

/// Out-neighbor for edge slot `j` of `cluster`: uniform over the other
/// clusters (duplicates permitted — a multi-edge just means a
/// duplicate copy, which the open-flood cost model charges anyway).
fn edge_target(params: &ScaleParams, cluster: u32, j: usize) -> u32 {
    let raw = keyed(SALT_EDGE, params.seed, cluster as u64, j as u64);
    let pick = (raw % (params.clusters as u64 - 1)) as u32;
    if pick >= cluster {
        pick + 1
    } else {
        pick
    }
}

/// Shared file count of a peer — the Section 5.3 election criterion.
fn files_of(seed: u64, peer: u64) -> u64 {
    keyed(SALT_FILES, seed, peer, 0) % 10_000
}

/// Ticks until the next query arrival of `peer` after arrival `n`:
/// a discretized exponential with the Table 1 per-user query rate,
/// at least one tick.
fn arrival_gap(params: &ScaleParams, peer: u64, n: u32) -> u32 {
    let u = unit(keyed(SALT_ARRIVAL, params.seed, peer, n as u64)).max(1e-12);
    let dt = (-u.ln() / params.query_rate.max(1e-9)).ceil();
    (dt as u32).max(1)
}

/// Fault windows active at tick `t`, refreshed once per tick.
#[derive(Default)]
struct ActiveWindows {
    /// `(fault index, drop_prob)` for active loss windows.
    loss: Vec<(usize, f64)>,
    /// `(fault index, delay_prob, delay_ticks)` for active delays.
    delay: Vec<(usize, f64, u32)>,
    /// `(fault index, flake_prob)` for active flaky-partner windows.
    flake: Vec<(usize, f64)>,
    /// Sorted partitioned-cluster lists for active partitions.
    partitions: Vec<Vec<u32>>,
}

impl ActiveWindows {
    fn refresh(&mut self, plan: &FaultPlan, params: &ScaleParams, t: u32) {
        let now = t as f64;
        let active = |from: f64, until: f64| now >= from && now < until;
        self.loss.clear();
        self.delay.clear();
        self.flake.clear();
        self.partitions.clear();
        for (i, fault) in plan.faults.iter().enumerate() {
            match fault {
                FaultSpec::MessageLoss {
                    from_secs,
                    until_secs,
                    drop_prob,
                } if active(*from_secs, *until_secs) => {
                    self.loss.push((i, *drop_prob));
                }
                FaultSpec::MessageDelay {
                    from_secs,
                    until_secs,
                    delay_prob,
                    delay_secs,
                } if active(*from_secs, *until_secs) => {
                    self.delay
                        .push((i, *delay_prob, (delay_secs.ceil() as u32).max(1)));
                }
                FaultSpec::FlakyPartners {
                    from_secs,
                    until_secs,
                    flake_prob,
                } if active(*from_secs, *until_secs) => {
                    self.flake.push((i, *flake_prob));
                }
                FaultSpec::Partition {
                    from_secs,
                    until_secs,
                    clusters,
                } if active(*from_secs, *until_secs) => {
                    // Indices address the static cluster list (the
                    // scale engine has no churn, so "alive at window
                    // start" is the full list), wrapped modulo.
                    let mut ids: Vec<u32> = clusters
                        .iter()
                        .map(|&c| (c % params.clusters) as u32)
                        .collect();
                    ids.sort_unstable();
                    self.partitions.push(ids);
                }
                _ => {}
            }
        }
    }

    fn is_partitioned(&self, cluster: u32) -> bool {
        self.partitions
            .iter()
            .any(|ids| ids.binary_search(&cluster).is_ok())
    }
}

/// Per-run mutable context of one shard's reactor.
struct Reactor<'a> {
    params: &'a ScaleParams,
    shard_starts: &'a [usize],
    me: usize,
    state: ShardState,
    /// Per-owned-cluster overload state; all-default when the policy
    /// is empty (and then never touched).
    ov: Vec<ClusterOvScale>,
    queue: IndexedEventQueue<ScaleEvent>,
    /// Future-delivery ring, indexed by `deliver_tick % horizon`.
    ring: Vec<Vec<ShardMsg>>,
    /// Per-destination-shard outgoing batches for the current tick.
    outbox: Vec<Vec<ShardMsg>>,
    windows: ActiveWindows,
    metrics: ScaleMetrics,
    diag: ScaleDiag,
}

impl Reactor<'_> {
    fn shard_of(&self, cluster: u32) -> usize {
        // partition_point over ascending span starts: the owner is the
        // last shard whose start is <= cluster.
        self.shard_starts
            .partition_point(|&s| s <= cluster as usize)
            - 1
    }

    /// Emits one message at tick `t`: assigns the per-source sequence
    /// number, applies source-side loss/delay windows, and routes to
    /// the destination shard's batch (or the local ring). Returns
    /// whether the message was actually scheduled for delivery —
    /// `false` means it was lost or expired, which the re-homing path
    /// folds into its handoff-failure ledger.
    fn emit(&mut self, t: u32, src: u32, dst: u32, kind: MsgKind) -> bool {
        let local = self.state.local(src);
        let seq = self.state.seq[local];
        self.state.seq[local] += 1;
        self.metrics.msgs_sent += 1;
        for &(i, prob) in &self.windows.loss {
            if chance(
                keyed(
                    SALT_LOSS,
                    self.params.fault_seed ^ i as u64,
                    src as u64,
                    seq as u64,
                ),
                prob,
            ) {
                self.metrics.msgs_dropped_loss += 1;
                return false;
            }
        }
        let mut delay = 0u32;
        for &(i, prob, ticks) in &self.windows.delay {
            if chance(
                keyed(
                    SALT_DELAY,
                    self.params.fault_seed ^ i as u64,
                    src as u64,
                    seq as u64,
                ),
                prob,
            ) {
                delay += ticks;
            }
        }
        if delay > 0 {
            self.metrics.msgs_delayed += 1;
        }
        let deliver = t + 1 + delay;
        if deliver >= self.params.ticks {
            self.metrics.msgs_expired += 1;
            return false;
        }
        let msg = ShardMsg {
            deliver_tick: deliver,
            src_cluster: src,
            seq,
            dst_cluster: dst,
            kind,
        };
        let dst_shard = self.shard_of(dst);
        if dst_shard == self.me {
            self.diag.intra_shard_msgs += 1;
            self.ring[(deliver % self.params.horizon) as usize].push(msg);
        } else {
            self.diag.cross_shard_msgs += 1;
            self.outbox[dst_shard].push(msg);
        }
        true
    }

    /// Kills the acting head and every founding partner of an owned
    /// cluster; schedules an election one tick later if anyone is left.
    fn crash(&mut self, t: u32, cluster: u32) {
        let local = self.state.local(cluster);
        let k = self.params.redundancy_k.min(SCALE_MAX_CLUSTER) as u32;
        let mut doomed = if k >= 64 { u64::MAX } else { (1u64 << k) - 1 };
        doomed |= 1u64 << (self.state.head[local] % 64);
        let before = self.state.alive[local];
        self.state.alive[local] = before & !doomed;
        self.metrics.crashes_injected += (before & doomed).count_ones() as u64;
        if self.state.alive[local] == 0 {
            if before != 0 {
                self.metrics.clusters_dead += 1;
            }
        } else if t + 1 < self.params.ticks {
            self.queue
                .schedule((t + 1) as f64, ScaleEvent::Election { cluster });
        }
    }

    /// Applies instantaneous faults due at tick `t`, in plan order and
    /// ascending cluster order within each fault.
    fn apply_instant_faults(&mut self, plan: &FaultPlan, t: u32) {
        let (start, end) = (
            self.state.base,
            self.state.base + (self.state.alive.len() as u32),
        );
        for (i, fault) in plan.faults.iter().enumerate() {
            match fault {
                FaultSpec::CrashCluster {
                    at_secs,
                    cluster_index,
                } if *at_secs as u32 == t => {
                    let target = (cluster_index % self.params.clusters) as u32;
                    if target >= start && target < end {
                        self.crash(t, target);
                    }
                }
                FaultSpec::CrashFraction { at_secs, fraction } if *at_secs as u32 == t => {
                    for c in start..end {
                        if chance(
                            keyed(
                                SALT_CRASH,
                                self.params.fault_seed ^ i as u64,
                                c as u64,
                                t as u64,
                            ),
                            *fraction,
                        ) {
                            self.crash(t, c);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// Processes one delivered message at tick `t`.
    fn deliver(&mut self, t: u32, msg: ShardMsg) {
        let local = self.state.local(msg.dst_cluster);
        match msg.kind {
            MsgKind::Flood {
                query_key,
                ttl_left,
                hops,
            } => {
                if self.state.alive[local] == 0 {
                    self.metrics.msgs_dropped_dead += 1;
                    return;
                }
                if self.windows.is_partitioned(msg.dst_cluster) {
                    self.metrics.msgs_dropped_partition += 1;
                    return;
                }
                self.metrics.msgs_delivered += 1;
                let bucket = (hops as usize).min(SCALE_MAX_HOPS - 1);
                self.metrics.hop_hist[bucket] += 1;
                if chance(
                    keyed(
                        SALT_HIT,
                        self.params.seed,
                        query_key,
                        msg.dst_cluster as u64,
                    ),
                    HIT_PROB,
                ) {
                    self.metrics.results_found += 1;
                }
                if ttl_left > 0 {
                    let deg = self.state.neighbors(local).len();
                    for e in 0..deg {
                        let dst = self.state.edges[self.state.offsets[local] as usize + e];
                        self.emit(
                            t,
                            msg.dst_cluster,
                            dst,
                            MsgKind::Flood {
                                query_key,
                                ttl_left: ttl_left - 1,
                                hops: hops + 1,
                            },
                        );
                    }
                }
            }
            MsgKind::Reindex => {
                if self.state.alive[local] != 0 {
                    self.metrics.reindex_received += 1;
                }
            }
            MsgKind::Rehome {
                query_key,
                ttl,
                arrival,
            } => {
                // The new home admits the refugee into its own queue
                // or the handoff fails — dead, partitioned, or full
                // destinations never trigger a second hop.
                if self.state.alive[local] == 0 || self.windows.is_partitioned(msg.dst_cluster) {
                    self.metrics.ov_handoff_failed += 1;
                    return;
                }
                let pol = self.params.overload;
                let cap = pol.queue_capacity as usize;
                if cap > 0 && self.ov[local].queue.len() >= cap {
                    self.metrics.ov_handoff_failed += 1;
                    return;
                }
                // Brownout at the *new* home still applies: the
                // granted TTL is the tighter of the handoff's and the
                // destination's current effective grant.
                let (dst_ttl, fanout, degraded) = self.ov_effective(local);
                if degraded {
                    self.metrics.ov_degraded += 1;
                }
                self.metrics.ov_rehome_admitted += 1;
                self.ov[local].queue.push_back(OvEntry {
                    arrival,
                    key: query_key,
                    ttl: ttl.min(dst_ttl),
                    fanout,
                });
                self.metrics.ov_peak_depth = self
                    .metrics
                    .ov_peak_depth
                    .max(self.ov[local].queue.len() as u64);
            }
        }
    }

    /// Effective (TTL, fanout cap, degraded?) grant at `local` right
    /// now: the configured TTL, tightened by brownout when the cluster
    /// is browned out and the policy defines one.
    fn ov_effective(&self, local: usize) -> (u8, u8, bool) {
        let base = self.params.ttl;
        match self.params.overload.brownout {
            Some(b) if self.ov[local].brownout => {
                let dec = b.ttl_decrement.min(u8::MAX as u16) as u8;
                let ttl = if base == 0 {
                    0
                } else {
                    base.saturating_sub(dec).max(1)
                };
                (ttl, b.fanout_limit.clamp(1, u8::MAX as u32) as u8, true)
            }
            _ => (base, 0, false),
        }
    }

    /// Admission control at `cluster`'s bounded work queue for a
    /// locally issued query. Draw-free: every decision is a pure
    /// function of cluster-local state, so the outcome is identical at
    /// any shard layout.
    fn ov_submit(&mut self, t: u32, cluster: u32, query_key: u64) {
        let local = self.state.local(cluster);
        let pol = self.params.overload;
        // Brownout degrades ride admission, not service: a query
        // accepted under pressure floods shallower even if it is
        // served after relief.
        let (eff_ttl, fanout, degraded) = self.ov_effective(local);
        let cap = pol.queue_capacity as usize;
        let full = cap > 0 && self.ov[local].queue.len() >= cap;
        if full {
            self.ov[local].strikes += 1;
            // Persistent saturation: hand the query to the first
            // overlay neighbor instead of rejecting yet again — the
            // deterministic re-homing path, at one message's cost.
            if pol.rehome_strikes > 0
                && self.ov[local].strikes >= pol.rehome_strikes
                && !self.state.neighbors(local).is_empty()
            {
                let dst = self.state.neighbors(local)[0];
                self.metrics.ov_rehome_sent += 1;
                let kind = MsgKind::Rehome {
                    query_key,
                    ttl: eff_ttl,
                    arrival: t,
                };
                if !self.emit(t, cluster, dst, kind) {
                    self.metrics.ov_handoff_failed += 1;
                }
                return;
            }
            match pol.discipline {
                ShedDiscipline::RejectAtAdmission => {
                    self.metrics.ov_rejected_queue += 1;
                    return;
                }
                ShedDiscipline::DropOldest => {
                    self.ov[local].queue.pop_front();
                    self.metrics.ov_shed_discipline += 1;
                }
                ShedDiscipline::DropLowestTtl => {
                    // Shed the queued entry with the lowest TTL (ties
                    // to the oldest), but only one no more useful than
                    // the arrival; otherwise the arrival is the victim.
                    let mut victim: Option<(usize, u8)> = None;
                    for (i, e) in self.ov[local].queue.iter().enumerate() {
                        match victim {
                            None if e.ttl <= eff_ttl => victim = Some((i, e.ttl)),
                            Some((_, vt)) if e.ttl < vt => victim = Some((i, e.ttl)),
                            _ => {}
                        }
                    }
                    match victim {
                        Some((i, _)) => {
                            self.ov[local].queue.remove(i);
                            self.metrics.ov_shed_discipline += 1;
                        }
                        None => {
                            self.metrics.ov_rejected_queue += 1;
                            return;
                        }
                    }
                }
            }
        } else {
            self.ov[local].strikes = 0;
        }
        if degraded {
            self.metrics.ov_degraded += 1;
        }
        self.metrics.ov_admitted += 1;
        self.ov[local].queue.push_back(OvEntry {
            arrival: t,
            key: query_key,
            ttl: eff_ttl,
            fanout,
        });
        self.metrics.ov_peak_depth = self
            .metrics
            .ov_peak_depth
            .max(self.ov[local].queue.len() as u64);
    }

    /// Serves one dequeued query: latency accounting, the origin index
    /// search, and the (possibly brownout-capped) flood.
    fn ov_serve(&mut self, t: u32, cluster: u32, e: OvEntry) {
        self.metrics.ov_delivered += 1;
        let wait = (t - e.arrival) as u64;
        self.metrics.ov_wait_ticks += wait;
        let bucket = (u64::BITS - wait.leading_zeros()) as usize;
        self.metrics.ov_wait_hist[bucket.min(SCALE_MAX_HOPS - 1)] += 1;
        let local = self.state.local(cluster);
        if chance(
            keyed(SALT_HIT, self.params.seed, e.key, cluster as u64),
            HIT_PROB,
        ) {
            self.metrics.results_found += 1;
        }
        if e.ttl > 0 {
            let deg = self.state.neighbors(local).len();
            let lim = if e.fanout == 0 {
                deg
            } else {
                deg.min(e.fanout as usize)
            };
            for i in 0..lim {
                let dst = self.state.edges[self.state.offsets[local] as usize + i];
                self.emit(
                    t,
                    cluster,
                    dst,
                    MsgKind::Flood {
                        query_key: e.key,
                        ttl_left: e.ttl - 1,
                        hops: 1,
                    },
                );
            }
        }
    }

    /// Per-tick overload maintenance for every owned cluster in
    /// ascending order: shed dead clusters' queues, drain the service
    /// credit, then evaluate brownout hysteresis on the post-drain
    /// backlog. Runs between fault injection and message delivery, so
    /// every entry gets a whole-tick service floor.
    fn ov_tick(&mut self, t: u32) {
        let pol = self.params.overload;
        if pol.is_empty() {
            return;
        }
        let dwell = pol
            .brownout
            .map_or(1, |b| (b.min_dwell_secs.ceil() as u32).max(1));
        for local in 0..self.ov.len() {
            if self.state.alive[local] == 0 {
                let shed = self.ov[local].queue.len() as u64;
                if shed > 0 {
                    self.metrics.ov_shed_dead += shed;
                }
                self.ov[local] = ClusterOvScale::default();
                continue;
            }
            // Drain: one credit per completed response, accumulated at
            // the policy's service rate (ticks are one second).
            self.ov[local].credit += pol.service_rate;
            while self.ov[local].credit >= 1.0 {
                let Some(e) = self.ov[local].queue.pop_front() else {
                    break;
                };
                self.ov[local].credit -= 1.0;
                self.ov_serve(t, self.state.base + local as u32, e);
            }
            if self.ov[local].queue.is_empty() {
                // A work-conserving server banks no idle capacity.
                self.ov[local].credit = 0.0;
            }
            if let Some(b) = pol.brownout {
                let backlog = self.ov[local].queue.len() as f64 / pol.service_rate;
                let ovc = &mut self.ov[local];
                if ovc.brownout {
                    if backlog <= b.exit_backlog_secs {
                        ovc.relief_run += 1;
                    } else {
                        ovc.relief_run = 0;
                    }
                    if ovc.relief_run >= dwell {
                        ovc.brownout = false;
                        ovc.pressure_run = 0;
                        ovc.relief_run = 0;
                    }
                } else {
                    if backlog >= b.enter_backlog_secs {
                        ovc.pressure_run += 1;
                    } else {
                        ovc.pressure_run = 0;
                    }
                    if ovc.pressure_run >= dwell {
                        ovc.brownout = true;
                        ovc.pressure_run = 0;
                        ovc.relief_run = 0;
                        self.metrics.ov_brownout_entries += 1;
                    }
                }
                if ovc.brownout {
                    self.metrics.ov_brownout_ticks += 1;
                }
            }
        }
    }

    /// Processes one local event at tick `t`.
    fn handle_event(&mut self, t: u32, event: ScaleEvent) {
        match event {
            ScaleEvent::Query { peer, n, tokens } => {
                let cluster = (peer / self.params.cluster_size as u64) as u32;
                let local = self.state.local(cluster);
                let offset = (peer % self.params.cluster_size as u64) as u32;
                let peer_alive = self.state.alive[local] & (1u64 << (offset % 64)) != 0;
                let pol = self.params.overload;
                let ov_active = !pol.is_empty();
                let mut level = tokens;
                if !peer_alive
                    || self.state.alive[local] == 0
                    || self.windows.is_partitioned(cluster)
                {
                    self.metrics.queries_failed += 1;
                } else {
                    if self.params.redundancy_k >= 2 {
                        for &(i, prob) in &self.windows.flake {
                            if chance(
                                keyed(
                                    SALT_FLAKE,
                                    self.params.fault_seed ^ i as u64,
                                    peer,
                                    n as u64,
                                ),
                                prob,
                            ) {
                                self.metrics.submissions_flaked += 1;
                                break;
                            }
                        }
                    }
                    self.metrics.queries_issued += 1;
                    let query_key = keyed(SALT_QUERY, self.params.seed, peer, n as u64);
                    // Per-client token budget: clients (non-founding
                    // members) pay one token per admission attempt;
                    // an empty bucket rejects at the door, before the
                    // queue ever sees the query.
                    let is_partner = (offset as usize) < self.params.redundancy_k;
                    let mut budget_ok = true;
                    if ov_active && !is_partner && pol.client_tokens_per_sec > 0.0 {
                        if level < 1.0 {
                            self.metrics.ov_rejected_budget += 1;
                            budget_ok = false;
                        } else {
                            level -= 1.0;
                        }
                    }
                    if budget_ok {
                        if ov_active {
                            // Overload control: the query joins the
                            // super-peer's bounded work queue and is
                            // served (origin search + flood) when its
                            // turn comes — or is shed/re-homed.
                            self.ov_submit(t, cluster, query_key);
                        } else {
                            // The origin cluster searches its own
                            // index first…
                            if chance(
                                keyed(SALT_HIT, self.params.seed, query_key, cluster as u64),
                                HIT_PROB,
                            ) {
                                self.metrics.results_found += 1;
                            }
                            // …then floods the overlay if any TTL
                            // remains.
                            if self.params.ttl > 0 {
                                let deg = self.state.neighbors(local).len();
                                for e in 0..deg {
                                    let dst =
                                        self.state.edges[self.state.offsets[local] as usize + e];
                                    self.emit(
                                        t,
                                        cluster,
                                        dst,
                                        MsgKind::Flood {
                                            query_key,
                                            ttl_left: self.params.ttl - 1,
                                            hops: 1,
                                        },
                                    );
                                }
                            }
                        }
                    }
                }
                let gap = arrival_gap(self.params, peer, n + 1);
                let next = t + gap;
                if next < self.params.ticks {
                    // The bucket refills over the gap to the next
                    // arrival, capped at the burst ceiling; the level
                    // rides the event. Always 0.0 when the policy is
                    // empty, so the field is bitwise inert.
                    let refilled = if ov_active && pol.client_tokens_per_sec > 0.0 {
                        (level + pol.client_tokens_per_sec * gap as f64).min(pol.client_token_burst)
                    } else {
                        level
                    };
                    self.queue.schedule(
                        next as f64,
                        ScaleEvent::Query {
                            peer,
                            n: n + 1,
                            tokens: refilled,
                        },
                    );
                }
            }
            ScaleEvent::Election { cluster } => {
                let local = self.state.local(cluster);
                let mask = self.state.alive[local];
                if mask == 0 {
                    return;
                }
                // Section 5.3: the peer sharing the most files wins;
                // ties go to the lowest peer id. Pure hash draws, so
                // the outcome is identical at any layout.
                let base_peer = cluster as u64 * self.params.cluster_size as u64;
                let mut best_offset = 0u32;
                let mut best_files = 0u64;
                let mut found = false;
                for offset in 0..self.params.cluster_size as u32 {
                    if mask & (1u64 << (offset % 64)) != 0 {
                        let files = files_of(self.params.seed, base_peer + offset as u64);
                        if !found || files > best_files {
                            found = true;
                            best_files = files;
                            best_offset = offset;
                        }
                    }
                }
                self.state.head[local] = best_offset;
                self.metrics.elections_held += 1;
                // Announce the new head to every overlay neighbor so
                // they re-index — the cross-shard repair path.
                let deg = self.state.neighbors(local).len();
                for e in 0..deg {
                    let dst = self.state.edges[self.state.offsets[local] as usize + e];
                    self.emit(t, cluster, dst, MsgKind::Reindex);
                }
            }
        }
    }
}

/// Everything one shard reactor needs for a (possibly partial) run:
/// static parameters, its cluster span, the tick range to execute,
/// carried-in state when resuming, and the supervision knobs.
struct ShardCtx<'a> {
    params: ScaleParams,
    plan: &'a FaultPlan,
    shard_starts: &'a [usize],
    me: usize,
    span: (usize, usize),
    /// Ticks to execute: `[range.0, range.1)`.
    range: (u32, u32),
    /// Resumed state for this shard's span; `None` seeds a fresh run.
    carry: Option<ShardCarry>,
    /// Whether to hand back the shard's state after the last tick.
    keep_state: bool,
    /// Test hook: panic at the start of this tick.
    inject_at: Option<u32>,
    /// Barrier watchdog timeout; `None` blocks indefinitely.
    timeout: Option<Duration>,
}

/// Runs one shard's reactor over `ctx.range` and returns its metrics
/// slice, diagnostics, and (when requested) carried-out state. Barrier
/// waits are error-aware: a vanished or stalled peer produces a
/// [`ShardError`] naming it, never a hang or an unwrapped `RecvError`.
fn run_shard(
    ctx: ShardCtx<'_>,
    txs: Vec<Option<SyncSender<Batch>>>,
    rxs: Vec<Option<Receiver<Batch>>>,
    progress: &AtomicU32,
) -> Result<ShardRun, ShardError> {
    let ShardCtx {
        params,
        plan,
        shard_starts,
        me,
        span,
        range: (t0, t1),
        carry,
        keep_state,
        inject_at,
        timeout,
    } = ctx;
    let params = &params;
    let (start, end) = span;
    let own = end - start;

    // Build this shard's overlay slice: pure hash draws keyed by global
    // cluster id, so the same cluster gets the same edges at any
    // layout. CSR keeps it to two flat allocations.
    let mut offsets = Vec::with_capacity(own + 1);
    offsets.push(0u32);
    let mut edges = Vec::new();
    for c in start..end {
        let deg = degree_of(params, c as u32);
        for j in 0..deg {
            edges.push(edge_target(params, c as u32, j));
        }
        offsets.push(edges.len() as u32);
    }
    let full_mask = if params.cluster_size >= 64 {
        u64::MAX
    } else {
        (1u64 << params.cluster_size) - 1
    };
    let (alive, head, seq, ov) = match &carry {
        Some(c) => (c.alive.clone(), c.head.clone(), c.seq.clone(), c.ov.clone()),
        None => (
            vec![full_mask; own],
            vec![0; own],
            vec![0; own],
            vec![ClusterOvScale::default(); own],
        ),
    };
    let state = ShardState {
        base: start as u32,
        offsets,
        edges,
        alive,
        head,
        seq,
    };

    let mut reactor = Reactor {
        params,
        shard_starts,
        me,
        state,
        ov,
        queue: IndexedEventQueue::new(),
        ring: (0..params.horizon).map(|_| Vec::new()).collect(),
        outbox: (0..shard_starts.len()).map(|_| Vec::new()).collect(),
        windows: ActiveWindows::default(),
        metrics: ScaleMetrics::default(),
        diag: ScaleDiag::default(),
    };

    match carry {
        Some(c) => {
            // Resume: replay the carried events in canonical order —
            // per-cluster relative order is preserved, which is all the
            // engine's invariance needs — and reload pending messages
            // into the delivery ring (delivery re-sorts per slot).
            for (time, event) in c.events {
                reactor.queue.schedule(time, event);
            }
            for msg in c.msgs {
                let slot = (msg.deliver_tick % params.horizon) as usize;
                reactor.ring[slot].push(msg);
            }
        }
        None => {
            // Seed every owned peer's first query arrival. Ascending
            // peer order fixes the intra-cluster event order
            // identically at every layout (clusters never split across
            // shards). Token buckets start full.
            let seed_tokens = if params.overload.is_empty() {
                0.0
            } else {
                params.overload.client_token_burst
            };
            for peer in (start * params.cluster_size) as u64..(end * params.cluster_size) as u64 {
                let first = arrival_gap(params, peer, 0) - 1;
                if first < params.ticks {
                    reactor.queue.schedule(
                        first as f64,
                        ScaleEvent::Query {
                            peer,
                            n: 0,
                            tokens: seed_tokens,
                        },
                    );
                }
            }
        }
    }

    let mut due: Vec<ShardMsg> = Vec::new();
    for t in t0..t1 {
        progress.store(t, Ordering::Relaxed);
        if inject_at == Some(t) {
            panic!("injected shard panic (test hook) at tick {t}");
        }

        // 1. Barrier receive: exactly one batch tagged t−1 from every
        // peer shard, slotted into the delivery ring. The first tick
        // of a (resumed) range has nothing in flight — boundary-tick
        // emissions ride the snapshot, not the channels.
        if t > t0 {
            for (j, rx) in rxs.iter().enumerate() {
                let Some(rx) = rx else { continue };
                let batch = match timeout {
                    None => rx.recv().map_err(|_| ShardError::disconnected(t, j))?,
                    Some(limit) => rx.recv_timeout(limit).map_err(|e| match e {
                        RecvTimeoutError::Timeout => ShardError {
                            tick: t,
                            reason: format!(
                                "barrier stalled: no tick-{} batch from shard {j} within the watchdog timeout",
                                t - 1
                            ),
                        },
                        RecvTimeoutError::Disconnected => ShardError::disconnected(t, j),
                    })?,
                };
                debug_assert_eq!(batch.tick, t - 1, "barrier batch out of order");
                for msg in batch.msgs {
                    let slot = (msg.deliver_tick % params.horizon) as usize;
                    reactor.ring[slot].push(msg);
                }
            }
        }

        // 2. Fault windows for this tick, then instantaneous faults.
        reactor.windows.refresh(plan, params, t);
        reactor.apply_instant_faults(plan, t);

        // 2b. Overload maintenance: shed dead clusters' queues, drain
        // service credit (served queries flood here), update brownout.
        reactor.ov_tick(t);

        // 3. Deliver the messages due now, in (src_cluster, seq)
        // order — the layout-invariant global delivery order.
        let slot = (t % params.horizon) as usize;
        std::mem::swap(&mut due, &mut reactor.ring[slot]);
        due.sort_unstable_by_key(|m| (m.src_cluster, m.seq));
        for msg in due.drain(..) {
            reactor.deliver(t, msg);
        }

        // 4. Local events due now (query arrivals, elections).
        while let Some(time) = reactor.queue.peek_time() {
            if time > t as f64 {
                break;
            }
            if let Some((_, event)) = reactor.queue.pop() {
                reactor.handle_event(t, event);
            }
        }

        // 5. Barrier send: one batch tagged t to every peer shard,
        // empty or not. The range's final tick sends nothing: at the
        // true end its emissions were already discarded symmetrically
        // by the expiry check in emit(); at a checkpoint boundary they
        // stay in the outbox for the carry below.
        if t + 1 < t1 {
            for (j, tx) in txs.iter().enumerate() {
                if let Some(tx) = tx {
                    let msgs = std::mem::take(&mut reactor.outbox[j]);
                    tx.send(Batch { tick: t, msgs }).map_err(|_| ShardError {
                        tick: t,
                        reason: format!("peer shard {j} disconnected at the tick-{t} barrier send"),
                    })?;
                }
            }
        }
    }

    reactor.diag.queue_high_water = reactor.queue.high_water() as u64;
    if !keep_state && t1 == params.ticks {
        // True run end: whatever is still waiting in a work queue is
        // explicitly shed so the conservation ledger closes — nothing
        // silently vanishes. Checkpoint boundaries instead carry the
        // queues forward intact.
        for ovc in &reactor.ov {
            reactor.metrics.ov_shed_residual += ovc.queue.len() as u64;
        }
    }
    let carry_out = if keep_state {
        let mut events = Vec::new();
        while let Some((time, event)) = reactor.queue.pop() {
            events.push((time, event));
        }
        let mut msgs: Vec<ShardMsg> = reactor.ring.drain(..).flatten().collect();
        for outbox in reactor.outbox.drain(..) {
            msgs.extend(outbox);
        }
        Some(ShardCarry {
            alive: reactor.state.alive,
            head: reactor.state.head,
            seq: reactor.state.seq,
            ov: reactor.ov,
            events,
            msgs,
        })
    } else {
        None
    };
    Ok(ShardRun {
        metrics: reactor.metrics,
        diag: reactor.diag,
        carry: carry_out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Config {
        Config {
            graph_size: 400,
            cluster_size: 10,
            ttl: 3,
            ..Config::default()
        }
    }

    fn run_at(config: &Config, shards: usize, plan: &FaultPlan) -> (ScaleMetrics, ScaleDiag) {
        let mut sim = ShardedSimulation::with_faults(
            config,
            ScaleOptions {
                duration_secs: 400.0,
                seed: 42,
                fault_seed: 7,
                shards,
                ..Default::default()
            },
            plan,
        );
        let m = sim.run();
        (m, *sim.diag())
    }

    #[test]
    fn fault_free_run_is_shard_count_invariant() {
        let config = small();
        let (base, base_diag) = run_at(&config, 1, &FaultPlan::default());
        assert!(base.queries_issued > 0, "workload was inert");
        assert!(base.msgs_delivered > 0);
        assert!(base.results_found > 0);
        assert_eq!(base.peers, 400);
        assert_eq!(base.clusters, 40);
        assert_eq!(base_diag.cross_shard_msgs, 0);
        for shards in [2, 4, 8] {
            let (m, d) = run_at(&config, shards, &FaultPlan::default());
            assert_eq!(base, m, "metrics diverged at {shards} shards");
            assert_eq!(d.shards, shards as u64);
            assert!(d.cross_shard_msgs > 0, "no cross-shard traffic at {shards}");
            assert_eq!(
                d.cross_shard_msgs + d.intra_shard_msgs,
                base_diag.intra_shard_msgs,
                "routed message total changed at {shards} shards"
            );
        }
    }

    #[test]
    fn crash_storm_elects_and_stays_invariant() {
        let config = small();
        let plan = FaultPlan {
            faults: vec![
                FaultSpec::CrashFraction {
                    at_secs: 50.0,
                    fraction: 0.5,
                },
                FaultSpec::CrashCluster {
                    at_secs: 120.0,
                    cluster_index: 3,
                },
            ],
            ..Default::default()
        };
        let (base, _) = run_at(&config, 1, &plan);
        assert!(base.crashes_injected > 0);
        assert!(base.elections_held > 0, "no elections ran");
        assert!(base.reindex_received > 0, "no re-index announcements");
        for shards in [2, 4, 8] {
            let (m, _) = run_at(&config, shards, &plan);
            assert_eq!(base, m, "crash-storm metrics diverged at {shards} shards");
        }
    }

    #[test]
    fn windowed_faults_stay_invariant_and_count() {
        let config = small();
        let plan = FaultPlan {
            faults: vec![
                FaultSpec::MessageLoss {
                    from_secs: 20.0,
                    until_secs: 200.0,
                    drop_prob: 0.3,
                },
                FaultSpec::MessageDelay {
                    from_secs: 50.0,
                    until_secs: 300.0,
                    delay_prob: 0.4,
                    delay_secs: 2.0,
                },
                FaultSpec::Partition {
                    from_secs: 80.0,
                    until_secs: 160.0,
                    clusters: vec![0, 5, 11],
                },
            ],
            ..Default::default()
        };
        let (base, _) = run_at(&config, 1, &plan);
        assert!(base.msgs_dropped_loss > 0);
        assert!(base.msgs_delayed > 0);
        assert!(base.msgs_dropped_partition > 0 || base.queries_failed > 0);
        for shards in [2, 4, 8] {
            let (m, _) = run_at(&config, shards, &plan);
            assert_eq!(
                base, m,
                "windowed-fault metrics diverged at {shards} shards"
            );
        }
    }

    #[test]
    fn flaky_partners_count_under_redundancy() {
        let config = small().with_redundancy(true);
        let plan = FaultPlan {
            faults: vec![FaultSpec::FlakyPartners {
                from_secs: 0.0,
                until_secs: 400.0,
                flake_prob: 0.5,
            }],
            ..Default::default()
        };
        let (base, _) = run_at(&config, 1, &plan);
        assert!(base.submissions_flaked > 0, "flake window never drew");
        let (two, _) = run_at(&config, 2, &plan);
        assert_eq!(base, two);
    }

    #[test]
    fn lone_super_peer_crash_kills_cluster() {
        // cluster_size 1, k 1: the crash leaves nobody to elect, so the
        // cluster dies and floods to it are dropped as dead.
        let config = Config {
            graph_size: 20,
            cluster_size: 1,
            ttl: 2,
            ..Config::default()
        };
        let plan = FaultPlan {
            faults: vec![FaultSpec::CrashFraction {
                at_secs: 10.0,
                fraction: 1.0,
            }],
            ..Default::default()
        };
        let (m, _) = run_at(&config, 1, &plan);
        assert_eq!(m.clusters_dead, 20);
        assert_eq!(m.elections_held, 0);
        assert!(m.queries_failed > 0);
    }

    #[test]
    fn shard_count_clamps_to_cluster_count() {
        let config = Config {
            graph_size: 30,
            cluster_size: 10,
            ttl: 2,
            ..Config::default()
        };
        let (base, _) = run_at(&config, 1, &FaultPlan::default());
        let (wide, diag) = run_at(&config, 64, &FaultPlan::default());
        assert_eq!(base, wide);
        assert_eq!(diag.shards, 3);
    }

    #[test]
    fn merge_and_json_are_consistent() {
        let (m, _) = run_at(&small(), 2, &FaultPlan::default());
        let mut folded = ScaleMetrics::default();
        folded.merge(&m);
        folded.merge(&m);
        assert_eq!(folded.msgs_delivered, 2 * m.msgs_delivered);
        assert_eq!(folded.results_found, 2 * m.results_found);
        let json = m.to_json();
        assert!(json.contains("\"events_processed\""));
        assert!(json.contains("\"hop_hist\": ["));
        assert!(json.contains(&format!("\"msgs_delivered\": {}", m.msgs_delivered)));
        assert!(m.events_processed() > m.queries_issued);
    }

    #[test]
    fn reruns_are_identical_and_seeds_differ() {
        let config = small();
        let mut sim = ShardedSimulation::new(
            &config,
            ScaleOptions {
                duration_secs: 200.0,
                seed: 1,
                ..Default::default()
            },
        );
        let first = sim.run();
        let second = sim.run();
        assert_eq!(first, second, "rerun diverged");
        let other = ShardedSimulation::new(
            &config,
            ScaleOptions {
                duration_secs: 200.0,
                seed: 2,
                ..Default::default()
            },
        )
        .run();
        assert_ne!(first, other, "seed had no effect");
    }

    #[test]
    #[should_panic(expected = "cluster_size <= 64")]
    fn oversized_clusters_are_rejected() {
        let config = Config {
            graph_size: 1000,
            cluster_size: 100,
            ..Config::default()
        };
        let _ = ShardedSimulation::new(&config, ScaleOptions::default());
    }

    /// A plan exercising every fault kind the scale engine models, so
    /// resume invariance is checked with crashes, elections, loss,
    /// delay, and partitions all live across the checkpoint boundary.
    fn stormy_plan() -> FaultPlan {
        FaultPlan {
            faults: vec![
                FaultSpec::CrashFraction {
                    at_secs: 50.0,
                    fraction: 0.4,
                },
                FaultSpec::CrashCluster {
                    at_secs: 120.0,
                    cluster_index: 3,
                },
                FaultSpec::MessageLoss {
                    from_secs: 20.0,
                    until_secs: 200.0,
                    drop_prob: 0.2,
                },
                FaultSpec::MessageDelay {
                    from_secs: 40.0,
                    until_secs: 260.0,
                    delay_prob: 0.3,
                    delay_secs: 2.0,
                },
                FaultSpec::Partition {
                    from_secs: 80.0,
                    until_secs: 160.0,
                    clusters: vec![0, 5, 11],
                },
            ],
            ..Default::default()
        }
    }

    fn stormy_opts(shards: usize) -> ScaleOptions {
        ScaleOptions {
            duration_secs: 300.0,
            seed: 9,
            fault_seed: 3,
            shards,
            ..Default::default()
        }
    }

    /// An overload policy guaranteed to saturate `small()`'s clusters:
    /// tiny queues, a slow server, a hair-trigger brownout, and
    /// re-homing after two strikes.
    fn stress_policy() -> OverloadPolicy {
        OverloadPolicy {
            service_rate: 0.5,
            queue_capacity: 3,
            discipline: ShedDiscipline::DropLowestTtl,
            client_tokens_per_sec: 0.05,
            client_token_burst: 3.0,
            brownout: Some(sp_model::overload::BrownoutConfig {
                enter_backlog_secs: 2.0,
                exit_backlog_secs: 0.5,
                min_dwell_secs: 3.0,
                ttl_decrement: 2,
                fanout_limit: 2,
            }),
            rehome_strikes: 2,
        }
    }

    fn overload_opts(shards: usize) -> ScaleOptions {
        ScaleOptions {
            duration_secs: 300.0,
            seed: 11,
            fault_seed: 5,
            shards,
            overload: stress_policy(),
            ..Default::default()
        }
    }

    /// `small()` under a flash-crowd query rate: each 10-peer cluster
    /// offers ~2 queries/s against the stress policy's 0.5/s server.
    fn crowded() -> Config {
        Config {
            query_rate: 0.2,
            ..small()
        }
    }

    #[test]
    fn overload_control_is_shard_count_invariant_and_conserved() {
        let config = crowded();
        let plan = stormy_plan();
        let base = ShardedSimulation::with_faults(&config, overload_opts(1), &plan).run();
        assert!(base.ov_admitted > 0, "nothing was admitted");
        assert!(base.ov_delivered > 0, "nothing was served");
        assert!(
            base.ov_shed_discipline + base.ov_rejected_queue > 0,
            "the stress policy never saturated a queue"
        );
        assert!(base.ov_rejected_budget > 0, "token budget never tripped");
        assert!(base.ov_rehome_sent > 0, "re-homing never triggered");
        assert!(base.ov_brownout_entries > 0, "brownout never entered");
        assert!(base.ov_degraded > 0, "no degraded admissions");
        assert!(base.ov_peak_depth <= 3, "queue bound was violated");
        assert!(
            base.overload_conserved(),
            "conservation ledger broke:\n{base:?}"
        );
        for shards in [2, 4, 8] {
            let (m, _) = {
                let mut sim = ShardedSimulation::with_faults(&config, overload_opts(shards), &plan);
                let m = sim.run();
                (m, *sim.diag())
            };
            assert_eq!(base, m, "overload metrics diverged at {shards} shards");
        }
    }

    #[test]
    fn empty_overload_policy_is_inert_at_scale() {
        let config = small();
        let (base, _) = run_at(&config, 2, &FaultPlan::default());
        let ov_zero = base.ov_admitted
            + base.ov_rehome_admitted
            + base.ov_rejected_budget
            + base.ov_rejected_queue
            + base.ov_rehome_sent
            + base.ov_handoff_failed
            + base.ov_delivered
            + base.ov_shed_discipline
            + base.ov_shed_dead
            + base.ov_shed_residual
            + base.ov_degraded
            + base.ov_brownout_entries
            + base.ov_brownout_ticks
            + base.ov_wait_ticks
            + base.ov_peak_depth;
        assert_eq!(ov_zero, 0, "the empty policy touched an overload counter");
    }

    #[test]
    fn overload_checkpoint_resume_is_bitwise_and_shard_count_invariant() {
        // Resume mid-pressure: queued entries, token levels, brownout
        // dwell anchors, and strike counts all cross the snapshot.
        let config = crowded();
        let plan = stormy_plan();
        let base = ShardedSimulation::with_faults(&config, overload_opts(2), &plan).run();
        for (checkpoint, resume_shards) in [(0u32, 4usize), (90, 1), (200, 3)] {
            let mut sim = ShardedSimulation::with_faults(&config, overload_opts(2), &plan);
            sim.run_to(checkpoint).unwrap();
            let snap = sim.snapshot();
            let mut restored = ShardedSimulation::restore(
                &snap,
                ScaleOptions {
                    shards: resume_shards,
                    ..Default::default()
                },
            )
            .unwrap();
            let resumed = restored.try_run().unwrap();
            assert_eq!(
                base, resumed,
                "overload resume at tick {checkpoint} with {resume_shards} shards diverged"
            );
            assert!(resumed.overload_conserved(), "resumed ledger broke");
        }
    }

    #[test]
    fn dead_clusters_shed_their_queues() {
        // Lone super-peers with saturated queues, then a total crash:
        // every queued entry must land in the shed-dead bucket, not
        // vanish — and the ledger must still close.
        let config = Config {
            graph_size: 20,
            cluster_size: 1,
            ttl: 2,
            query_rate: 2.0,
            ..Config::default()
        };
        let plan = FaultPlan {
            faults: vec![FaultSpec::CrashFraction {
                at_secs: 100.0,
                fraction: 1.0,
            }],
            ..Default::default()
        };
        let opts = ScaleOptions {
            duration_secs: 200.0,
            seed: 4,
            overload: OverloadPolicy {
                service_rate: 0.5,
                queue_capacity: 16,
                ..stress_policy()
            },
            ..Default::default()
        };
        let base = ShardedSimulation::with_faults(&config, opts, &plan).run();
        assert!(base.ov_shed_dead > 0, "the crash never shed a queue");
        assert!(
            base.overload_conserved(),
            "dead-shed ledger broke:\n{base:?}"
        );
        let two =
            ShardedSimulation::with_faults(&config, ScaleOptions { shards: 2, ..opts }, &plan)
                .run();
        assert_eq!(base, two, "dead-shed metrics diverged at 2 shards");
    }

    #[test]
    fn uncontrolled_queues_measure_without_shedding() {
        // queue_capacity 0: depth and wait are measured, nothing is
        // ever shed by discipline — the flash-crowd baseline.
        let config = crowded();
        let opts = ScaleOptions {
            duration_secs: 300.0,
            seed: 11,
            overload: OverloadPolicy {
                queue_capacity: 0,
                discipline: ShedDiscipline::RejectAtAdmission,
                client_tokens_per_sec: 0.0,
                client_token_burst: 0.0,
                brownout: None,
                rehome_strikes: 0,
                ..stress_policy()
            },
            ..Default::default()
        };
        let m = ShardedSimulation::new(&config, opts).run();
        assert_eq!(m.ov_shed_discipline, 0);
        assert_eq!(m.ov_rejected_queue, 0);
        assert_eq!(m.ov_rejected_budget, 0);
        assert!(m.ov_delivered > 0);
        assert!(m.ov_peak_depth > 3, "unbounded queue never built depth");
        assert!(m.overload_conserved(), "uncontrolled ledger broke:\n{m:?}");
    }

    #[test]
    fn checkpoint_resume_is_bitwise_and_shard_count_invariant() {
        let config = small();
        let plan = stormy_plan();
        let base = ShardedSimulation::with_faults(&config, stormy_opts(2), &plan).run();
        assert!(base.crashes_injected > 0 && base.msgs_dropped_loss > 0);
        // Checkpoint at assorted ticks (0 = before anything ran,
        // 299 = one tick before the end), resume at assorted shard
        // counts — including counts different from the producer's.
        for (checkpoint, resume_shards) in [(0u32, 1usize), (77, 4), (150, 1), (299, 3)] {
            let mut sim = ShardedSimulation::with_faults(&config, stormy_opts(2), &plan);
            sim.run_to(checkpoint).unwrap();
            assert_eq!(sim.tick(), checkpoint);
            let snap = sim.snapshot();
            let mut restored = ShardedSimulation::restore(
                &snap,
                ScaleOptions {
                    shards: resume_shards,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(restored.tick(), checkpoint);
            let resumed = restored.try_run().unwrap();
            assert_eq!(
                base, resumed,
                "resume at tick {checkpoint} with {resume_shards} shards diverged"
            );
        }
    }

    #[test]
    fn chained_scale_checkpoints_resume_bitwise() {
        let config = small();
        let plan = stormy_plan();
        let base = ShardedSimulation::with_faults(&config, stormy_opts(1), &plan).run();
        let mut sim = ShardedSimulation::with_faults(&config, stormy_opts(4), &plan);
        sim.run_to(60).unwrap();
        let snap1 = sim.snapshot();
        let mut sim = ShardedSimulation::restore(
            &snap1,
            ScaleOptions {
                shards: 2,
                ..Default::default()
            },
        )
        .unwrap();
        sim.run_to(180).unwrap();
        let snap2 = sim.snapshot();
        let mut sim = ShardedSimulation::restore(
            &snap2,
            ScaleOptions {
                shards: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(base, sim.try_run().unwrap(), "chained resume diverged");
    }

    #[test]
    fn snapshot_bytes_are_shard_count_invariant() {
        // The canonical fold makes the snapshot itself — not just the
        // metrics — byte-identical no matter how many shards ran the
        // prefix.
        let config = small();
        let plan = stormy_plan();
        let mut snaps = Vec::new();
        for shards in [1usize, 2, 4, 8] {
            let mut sim = ShardedSimulation::with_faults(&config, stormy_opts(shards), &plan);
            sim.run_to(130).unwrap();
            snaps.push(sim.snapshot());
        }
        for (i, snap) in snaps.iter().enumerate().skip(1) {
            assert_eq!(&snaps[0], snap, "snapshot bytes diverged at index {i}");
        }
    }

    #[test]
    fn scale_restore_rejects_corruption_truncation_and_wrong_engine() {
        let config = small();
        let mut sim = ShardedSimulation::with_faults(&config, stormy_opts(2), &stormy_plan());
        sim.run_to(40).unwrap();
        let snap = sim.snapshot();

        let mut corrupt = snap.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x20;
        assert!(ShardedSimulation::restore(&corrupt, ScaleOptions::default()).is_err());

        let truncated = &snap[..snap.len() - 3];
        assert!(ShardedSimulation::restore(truncated, ScaleOptions::default()).is_err());

        let fast = crate::engine::Simulation::new(
            &Config {
                graph_size: 200,
                ..Config::default()
            },
            crate::engine::SimOptions {
                duration_secs: 50.0,
                ..Default::default()
            },
        )
        .snapshot();
        assert!(matches!(
            ShardedSimulation::restore(&fast, ScaleOptions::default()),
            Err(SnapshotError::WrongEngine { .. })
        ));
    }

    #[test]
    fn panicking_shard_fails_fast_with_named_diagnostics() {
        // Before the supervisor, a mid-run reactor panic left every
        // other shard blocked forever on its barrier receive; now the
        // run unwinds promptly with the failure attributed by name.
        let config = small();
        let mut sim = ShardedSimulation::with_faults(
            &config,
            ScaleOptions {
                duration_secs: 200.0,
                seed: 1,
                shards: 4,
                inject_panic: Some((2, 40)),
                ..Default::default()
            },
            &FaultPlan::default(),
        );
        let failure = sim.try_run().unwrap_err();
        assert_eq!(failure.shard, 2);
        assert_eq!(failure.tick, 40);
        assert!(
            failure.reason.contains("injected shard panic"),
            "panic payload lost: {}",
            failure.reason
        );
        assert_eq!(failure.shard_ticks.len(), 4);
        assert_eq!(failure.shard_ticks[2], 40);
        assert!(failure.to_string().contains("shard 2"));
        assert!(failure.diagnostic().contains("shard progress"));
    }

    #[test]
    fn single_shard_panics_are_supervised_too() {
        let mut sim = ShardedSimulation::with_faults(
            &small(),
            ScaleOptions {
                duration_secs: 100.0,
                shards: 1,
                inject_panic: Some((0, 10)),
                ..Default::default()
            },
            &FaultPlan::default(),
        );
        let failure = sim.try_run().unwrap_err();
        assert_eq!((failure.shard, failure.tick), (0, 10));
    }

    #[test]
    #[should_panic(expected = "injected shard panic")]
    fn run_panics_on_shard_failure() {
        let mut sim = ShardedSimulation::with_faults(
            &small(),
            ScaleOptions {
                duration_secs: 100.0,
                shards: 2,
                inject_panic: Some((1, 5)),
                ..Default::default()
            },
            &FaultPlan::default(),
        );
        let _ = sim.run();
    }

    #[test]
    fn watchdog_enabled_run_matches_unwatched_run() {
        // A generous watchdog must not perturb results — the timeout
        // path only changes how failure is detected, not the ticks.
        let config = small();
        let plan = stormy_plan();
        let base = ShardedSimulation::with_faults(&config, stormy_opts(4), &plan).run();
        let watched = ShardedSimulation::with_faults(
            &config,
            ScaleOptions {
                barrier_timeout_ticks: 600,
                ..stormy_opts(4)
            },
            &plan,
        )
        .try_run()
        .unwrap();
        assert_eq!(base, watched);
    }
}
