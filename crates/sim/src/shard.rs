//! Shared-nothing sharded scale simulator.
//!
//! The churn engines ([`crate::engine::Simulation`] and its reference
//! oracle) run one event loop over the whole overlay, which tops out
//! around 10⁴–10⁵ peers. This module trades their per-peer lifecycle
//! fidelity for *scale*: a tick-based engine whose state is partitioned
//! into per-shard single-threaded reactors so million-peer overlays run
//! in bounded memory with no locks on the hot path.
//!
//! # Shard assignment
//!
//! Peer ids are dense: cluster `c` owns peers
//! `[c·cluster_size, (c+1)·cluster_size)`, the first `redundancy_k` of
//! which are the founding partners. A shard owns a *contiguous* range
//! of clusters ([`sp_model::trials::shard_spans`]), so a cluster's
//! super-peer, partners, and clients always co-shard — the cluster id
//! is the peer-id prefix. Each shard builds its own slice of the
//! overlay (pure-hash power-law outdegrees and edge targets keyed by
//! `(seed, cluster, slot)`), runs its own
//! [`IndexedEventQueue`]`<ScaleEvent>`, and owns its slice of every
//! accumulator. Nothing is shared: shards communicate exclusively
//! through bounded `std::sync::mpsc` channels drained at tick barriers.
//!
//! # Tick-barrier message protocol
//!
//! Simulated time advances in 1-second ticks. Within tick `t` a shard:
//!
//! 1. receives exactly one batch tagged `t−1` from every other shard
//!    and slots its messages into a future-delivery ring;
//! 2. applies instantaneous faults due at `t` (crashes, in ascending
//!    cluster order) and refreshes the active fault windows;
//! 3. delivers the messages due at `t`, sorted by
//!    `(src_cluster, seq)` — `seq` is a per-source-cluster counter, so
//!    the sort key is layout-invariant (the issue's
//!    `(tick, src_shard, seq)` refined to survive re-sharding, since
//!    `src_shard` is itself a function of `src_cluster`);
//! 4. drains its local event queue up to `t` (query arrivals,
//!    elections);
//! 5. sends one batch tagged `t` (possibly empty) to every other
//!    shard. Channels are `sync_channel(2)`: at most the previous and
//!    the current tick's batches are ever in flight, so the queues are
//!    bounded and deadlock-free by construction.
//!
//! Every cluster therefore observes an identical ordered input stream
//! at **any** shard count, all randomness is stateless (pure splitmix
//! hashes keyed by entity ids — no shared RNG stream whose draw order
//! could depend on the layout), and every metric is a commutative
//! integer accumulation folded in ascending shard order. The result:
//! [`ScaleMetrics`] is bitwise identical for any shard count including
//! 1, which `tests/sim_determinism.rs` enforces at {1, 2, 4, 8}.
//!
//! # Streaming metrics
//!
//! There is no per-peer resident metrics state at all: each shard keeps
//! one fixed-width [`ScaleMetrics`] of `u64` counters plus a 16-bucket
//! hop histogram, merged at finalize. A 1M-peer run's footprint is the
//! event queue plus the CSR overlay slice — O(peers), tens of bytes per
//! peer — not O(peers × metrics).
//!
//! # Fidelity envelope
//!
//! This engine reproduces the *load-bearing* dynamics at scale — flood
//! fan-out under TTL, cluster crashes, Section 5.3 elections with
//! cross-shard re-index announcements, loss/delay/partition/flake
//! windows — but intentionally simplifies the rest: no churn arrivals,
//! open flooding without duplicate suppression (every arriving copy
//! costs processing, matching the Table 2 cost model's accounting),
//! integer hit draws instead of the Appendix B query model, and
//! [`sp_model::faults::RetryPolicy`] is not consulted (flaked
//! submissions are counted and retried instantly). Fault windows are
//! pure functions of the tick, so fault injection never needs
//! cross-shard coordination. The churn engines remain the fidelity
//! oracles; this one answers "how does the overlay behave at 10⁶
//! peers", which they cannot.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};

use sp_model::config::Config;
use sp_model::faults::{FaultPlan, FaultSpec};
use sp_model::trials::shard_spans;

use crate::events::IndexedEventQueue;

/// Hop histogram width: hops 1..=15 are bucketed exactly, anything
/// beyond folds into the last bucket. The engine clamps TTL to 15.
pub const SCALE_MAX_HOPS: usize = 16;

/// Largest supported cluster size: member liveness is a `u64` bitmask.
pub const SCALE_MAX_CLUSTER: usize = 64;

// Domain-separation salts for the stateless hash draws. Each kind of
// draw mixes its own salt so streams never collide.
const SALT_DEGREE: u64 = 0x5348_4152_4445_4701;
const SALT_EDGE: u64 = 0x5348_4152_4544_4702;
const SALT_FILES: u64 = 0x5348_4152_4649_4C03;
const SALT_ARRIVAL: u64 = 0x5348_4152_4152_5204;
const SALT_QUERY: u64 = 0x5348_4152_5155_4505;
const SALT_HIT: u64 = 0x5348_4152_4849_5406;
const SALT_LOSS: u64 = 0x5348_4152_4C4F_5307;
const SALT_DELAY: u64 = 0x5348_4152_444C_5908;
const SALT_FLAKE: u64 = 0x5348_4152_464C_4B09;
const SALT_CRASH: u64 = 0x5348_4152_4352_480A;

/// Probability that a visited cluster's index holds a match for a
/// query. A fixed constant (rather than the Appendix B query model)
/// keeps per-visit work O(1) and integer-valued at any scale.
const HIT_PROB: f64 = 0.05;

/// splitmix64 finalizer — the same mixer `SpRng` seeds from, inlined
/// here so a draw costs one multiply chain instead of constructing a
/// generator. Stateless hashing is what makes every draw independent
/// of processing order, hence of the shard layout.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Keyed hash of up to four words: fold each part through the mixer.
fn keyed(salt: u64, a: u64, b: u64, c: u64) -> u64 {
    mix(mix(mix(mix(salt).wrapping_add(a)).wrapping_add(b)).wrapping_add(c))
}

/// Maps a hash word to the unit interval `[0, 1)`.
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Bernoulli draw from a hash word.
fn chance(x: u64, p: f64) -> bool {
    unit(x) < p
}

/// Options for a sharded scale run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleOptions {
    /// Simulated duration in seconds; one tick per second, rounded up.
    pub duration_secs: f64,
    /// Workload seed: topology, per-peer file counts, query arrivals,
    /// and hit draws all derive from it.
    pub seed: u64,
    /// Fault-stream seed (crash selection, loss/delay/flake draws),
    /// split from the workload seed exactly like the churn engines.
    pub fault_seed: u64,
    /// Number of shards; clamped to `[1, clusters]`. Results are
    /// bitwise identical at every value.
    pub shards: usize,
}

impl Default for ScaleOptions {
    fn default() -> Self {
        ScaleOptions {
            duration_secs: 300.0,
            seed: 0xC0FFEE,
            fault_seed: 0,
            shards: 1,
        }
    }
}

/// Per-shard event payload: what a reactor schedules for itself.
/// Cross-shard work never rides the event queue — it is always an
/// explicit [`ShardMsg`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScaleEvent {
    /// The `n`-th query arrival of `peer`. Processing it draws and
    /// schedules arrival `n + 1`, so the queue holds at most one
    /// arrival per peer.
    Query {
        /// Global peer id.
        peer: u64,
        /// Arrival index, keys the inter-arrival hash stream.
        n: u32,
    },
    /// A Section 5.3 election in `cluster`, scheduled one tick after a
    /// crash left it headless.
    Election {
        /// Global cluster id (always shard-local by construction).
        cluster: u32,
    },
}

/// What an inter-shard message carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MsgKind {
    /// One hop of a query flood.
    Flood {
        /// Stable query identity, keys the per-cluster hit draws.
        query_key: u64,
        /// Remaining hops after this delivery.
        ttl_left: u8,
        /// Hops traveled so far (this delivery inclusive).
        hops: u8,
    },
    /// A post-election re-index announcement to an overlay neighbor.
    Reindex,
}

/// One cluster-to-cluster message, delivered at a tick barrier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardMsg {
    /// Tick at which the destination shard delivers this message.
    pub deliver_tick: u32,
    /// Sending cluster.
    pub src_cluster: u32,
    /// Per-source-cluster sequence number — with `src_cluster`, the
    /// layout-invariant delivery sort key.
    pub seq: u32,
    /// Receiving cluster.
    pub dst_cluster: u32,
    /// Payload.
    pub kind: MsgKind,
}

/// One barrier batch: every shard sends exactly one per tick to every
/// other shard, empty or not, which is what makes the receive loop a
/// deterministic barrier rather than a poll.
struct Batch {
    tick: u32,
    msgs: Vec<ShardMsg>,
}

/// Shard-count-invariant run metrics: fixed-width commutative counters
/// only, folded in ascending shard order at finalize. `PartialEq`
/// compares bitwise — the determinism suite's contract.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScaleMetrics {
    /// Peers simulated (`clusters × cluster_size`; a `graph_size`
    /// remainder that does not fill a cluster is not instantiated).
    pub peers: u64,
    /// Clusters simulated.
    pub clusters: u64,
    /// Ticks executed.
    pub ticks: u64,
    /// Queries issued by live peers in live, unpartitioned clusters.
    pub queries_issued: u64,
    /// Query arrivals that found their peer dead, their cluster dead,
    /// or their cluster partitioned.
    pub queries_failed: u64,
    /// Submissions that hit a flaky partner first (k ≥ 2 only) and
    /// succeeded on instant retry.
    pub submissions_flaked: u64,
    /// Messages emitted (flood hops + re-index announcements), before
    /// loss/expiry.
    pub msgs_sent: u64,
    /// Flood messages delivered and processed.
    pub msgs_delivered: u64,
    /// Messages dropped by an active loss window.
    pub msgs_dropped_loss: u64,
    /// Messages dropped because the destination was partitioned.
    pub msgs_dropped_partition: u64,
    /// Messages dropped because the destination cluster was dead.
    pub msgs_dropped_dead: u64,
    /// Messages that survived but were delayed by a delay window.
    pub msgs_delayed: u64,
    /// Messages whose delivery tick fell past the end of the run.
    pub msgs_expired: u64,
    /// Matches found across all visited clusters (origin included).
    pub results_found: u64,
    /// Partner peers killed by crash faults.
    pub crashes_injected: u64,
    /// Elections completed.
    pub elections_held: u64,
    /// Clusters whose last member died.
    pub clusters_dead: u64,
    /// Re-index announcements received by live neighbors.
    pub reindex_received: u64,
    /// Deliveries by hop count; bucket 15 also holds any overflow.
    pub hop_hist: [u64; SCALE_MAX_HOPS],
}

impl ScaleMetrics {
    /// Folds another shard's counters into this one. Addition is
    /// commutative, but callers fold in ascending shard order anyway so
    /// the operation is reproducible by inspection.
    pub fn merge(&mut self, other: &ScaleMetrics) {
        self.queries_issued += other.queries_issued;
        self.queries_failed += other.queries_failed;
        self.submissions_flaked += other.submissions_flaked;
        self.msgs_sent += other.msgs_sent;
        self.msgs_delivered += other.msgs_delivered;
        self.msgs_dropped_loss += other.msgs_dropped_loss;
        self.msgs_dropped_partition += other.msgs_dropped_partition;
        self.msgs_dropped_dead += other.msgs_dropped_dead;
        self.msgs_delayed += other.msgs_delayed;
        self.msgs_expired += other.msgs_expired;
        self.results_found += other.results_found;
        self.crashes_injected += other.crashes_injected;
        self.elections_held += other.elections_held;
        self.clusters_dead += other.clusters_dead;
        self.reindex_received += other.reindex_received;
        for (mine, theirs) in self.hop_hist.iter_mut().zip(other.hop_hist.iter()) {
            *mine += *theirs;
        }
    }

    /// Total simulation events processed — query arrivals, elections,
    /// and every message that reached a delivery decision. The
    /// events/sec throughput figure in `BENCH_scale.json` is this over
    /// wall time.
    pub fn events_processed(&self) -> u64 {
        self.queries_issued
            + self.queries_failed
            + self.elections_held
            + self.msgs_delivered
            + self.msgs_dropped_loss
            + self.msgs_dropped_partition
            + self.msgs_dropped_dead
            + self.msgs_expired
            + self.reindex_received
    }

    /// Renders the metrics as a JSON object (hand-rolled, stable key
    /// order, integers only).
    pub fn to_json(&self) -> String {
        let hist: Vec<String> = self.hop_hist.iter().map(|v| v.to_string()).collect();
        format!(
            concat!(
                "{{\"peers\": {}, \"clusters\": {}, \"ticks\": {}, ",
                "\"queries_issued\": {}, \"queries_failed\": {}, ",
                "\"submissions_flaked\": {}, \"msgs_sent\": {}, ",
                "\"msgs_delivered\": {}, \"msgs_dropped_loss\": {}, ",
                "\"msgs_dropped_partition\": {}, \"msgs_dropped_dead\": {}, ",
                "\"msgs_delayed\": {}, \"msgs_expired\": {}, ",
                "\"results_found\": {}, \"crashes_injected\": {}, ",
                "\"elections_held\": {}, \"clusters_dead\": {}, ",
                "\"reindex_received\": {}, \"events_processed\": {}, ",
                "\"hop_hist\": [{}]}}"
            ),
            self.peers,
            self.clusters,
            self.ticks,
            self.queries_issued,
            self.queries_failed,
            self.submissions_flaked,
            self.msgs_sent,
            self.msgs_delivered,
            self.msgs_dropped_loss,
            self.msgs_dropped_partition,
            self.msgs_dropped_dead,
            self.msgs_delayed,
            self.msgs_expired,
            self.results_found,
            self.crashes_injected,
            self.elections_held,
            self.clusters_dead,
            self.reindex_received,
            self.events_processed(),
            hist.join(", "),
        )
    }
}

/// Layout-*dependent* observability, deliberately kept out of
/// [`ScaleMetrics`] so bitwise comparisons stay meaningful: how much
/// traffic crossed shard boundaries, queue depth, and the shard count
/// the run actually used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScaleDiag {
    /// Shards the run executed with (after clamping).
    pub shards: u64,
    /// Messages routed to a different shard.
    pub cross_shard_msgs: u64,
    /// Messages that stayed on their source shard.
    pub intra_shard_msgs: u64,
    /// Largest per-shard event-queue depth observed.
    pub queue_high_water: u64,
}

/// A shard's slice of the overlay plus its mutable cluster state.
struct ShardState {
    /// First owned cluster (global id).
    base: u32,
    /// CSR offsets into `edges`, one per owned cluster plus sentinel.
    offsets: Vec<u32>,
    /// Out-neighbor cluster ids (global), power-law degrees.
    edges: Vec<u32>,
    /// Per-owned-cluster member-liveness bitmask.
    alive: Vec<u64>,
    /// Per-owned-cluster acting-head member offset.
    head: Vec<u32>,
    /// Per-owned-cluster message sequence counters.
    seq: Vec<u32>,
}

impl ShardState {
    fn local(&self, cluster: u32) -> usize {
        (cluster - self.base) as usize
    }

    fn neighbors(&self, local: usize) -> &[u32] {
        &self.edges[self.offsets[local] as usize..self.offsets[local + 1] as usize]
    }
}

/// Static parameters shared read-only by every shard.
#[derive(Debug, Clone, Copy)]
struct ScaleParams {
    clusters: usize,
    cluster_size: usize,
    redundancy_k: usize,
    ttl: u8,
    query_rate: f64,
    avg_outdegree: f64,
    ticks: u32,
    horizon: u32,
    seed: u64,
    fault_seed: u64,
}

/// The sharded scale simulator. Construction validates and captures
/// the configuration; [`run`](ShardedSimulation::run) executes the
/// tick loop (re-runnable — all mutable state is per-run).
#[derive(Debug)]
pub struct ShardedSimulation {
    params: ScaleParams,
    plan: FaultPlan,
    shards: usize,
    diag: ScaleDiag,
}

impl ShardedSimulation {
    /// Builds a fault-free run.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `cluster_size`
    /// exceeds [`SCALE_MAX_CLUSTER`].
    pub fn new(config: &Config, opts: ScaleOptions) -> Self {
        ShardedSimulation::with_faults(config, opts, &FaultPlan::default())
    }

    /// Builds a run with a fault plan.
    ///
    /// # Panics
    ///
    /// Panics if the configuration or plan is invalid, or
    /// `cluster_size` exceeds [`SCALE_MAX_CLUSTER`].
    pub fn with_faults(config: &Config, opts: ScaleOptions, plan: &FaultPlan) -> Self {
        config.validate().expect("invalid configuration");
        plan.validate().expect("invalid fault plan");
        assert!(
            config.cluster_size <= SCALE_MAX_CLUSTER,
            "scale engine supports cluster_size <= {SCALE_MAX_CLUSTER}"
        );
        let clusters = config.num_clusters();
        let ticks = (opts.duration_secs.ceil() as u32).max(1);
        // The delivery ring must reach one tick past the worst-case
        // delay. Concurrent delay windows stack, so sum them; +2
        // covers the base next-tick hop and the current tick's slot.
        let max_delay: u32 = plan
            .faults
            .iter()
            .map(|f| match f {
                FaultSpec::MessageDelay { delay_secs, .. } => (delay_secs.ceil() as u32).max(1),
                _ => 0,
            })
            .sum();
        ShardedSimulation {
            params: ScaleParams {
                clusters,
                cluster_size: config.cluster_size,
                redundancy_k: config.redundancy_k,
                ttl: config.ttl.min((SCALE_MAX_HOPS - 1) as u16) as u8,
                query_rate: config.query_rate,
                avg_outdegree: config.avg_outdegree.max(1.01),
                ticks,
                horizon: max_delay + 2,
                seed: opts.seed,
                fault_seed: opts.fault_seed,
            },
            plan: plan.clone(),
            shards: opts.shards.clamp(1, clusters),
            diag: ScaleDiag::default(),
        }
    }

    /// Layout-dependent diagnostics from the most recent
    /// [`run`](ShardedSimulation::run); zeroed before the first.
    pub fn diag(&self) -> &ScaleDiag {
        &self.diag
    }

    /// Executes the run and folds per-shard metrics in ascending shard
    /// order. Bitwise identical for every shard count.
    pub fn run(&mut self) -> ScaleMetrics {
        let params = self.params;
        let plan = &self.plan;
        let spans = shard_spans(params.clusters, self.shards);
        let shard_starts: Vec<usize> = spans.iter().map(|&(s, _)| s).collect();
        let n = spans.len();

        let results: Vec<(ScaleMetrics, ScaleDiag)> = if n == 1 {
            vec![run_shard(
                &params,
                plan,
                &shard_starts,
                0,
                spans[0],
                Vec::new(),
                Vec::new(),
            )]
        } else {
            // One bounded channel per ordered shard pair. Capacity 2:
            // a shard only sends tick t after receiving every tick t−1
            // batch, so at most the previous and current tick's batches
            // can be unconsumed.
            let mut txs: Vec<Vec<Option<SyncSender<Batch>>>> =
                (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
            let mut rxs: Vec<Vec<Option<Receiver<Batch>>>> =
                (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
            for (i, row) in txs.iter_mut().enumerate() {
                for (j, slot) in row.iter_mut().enumerate() {
                    if i != j {
                        let (tx, rx) = sync_channel(2);
                        *slot = Some(tx);
                        rxs[j][i] = Some(rx);
                    }
                }
            }
            let endpoints: Vec<_> = txs.into_iter().zip(rxs).collect();
            std::thread::scope(|scope| {
                let handles: Vec<_> = endpoints
                    .into_iter()
                    .enumerate()
                    .map(|(i, (tx_row, rx_row))| {
                        let shard_starts = &shard_starts;
                        let span = spans[i];
                        scope.spawn(move || {
                            run_shard(&params, plan, shard_starts, i, span, tx_row, rx_row)
                        })
                    })
                    .collect();
                // Join in shard index order: the fold below then merges
                // ascending. A panicked shard propagates its payload.
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(pair) => pair,
                        Err(payload) => std::panic::resume_unwind(payload),
                    })
                    .collect()
            })
        };

        let mut metrics = ScaleMetrics::default();
        let mut diag = ScaleDiag {
            shards: n as u64,
            ..ScaleDiag::default()
        };
        for (m, d) in &results {
            metrics.merge(m);
            diag.cross_shard_msgs += d.cross_shard_msgs;
            diag.intra_shard_msgs += d.intra_shard_msgs;
            diag.queue_high_water = diag.queue_high_water.max(d.queue_high_water);
        }
        metrics.peers = (params.clusters * params.cluster_size) as u64;
        metrics.clusters = params.clusters as u64;
        metrics.ticks = params.ticks as u64;
        self.diag = diag;
        metrics
    }
}

/// Power-law-ish outdegree for a cluster: a discrete Pareto draw with
/// the shape chosen so the continuous mean matches `avg_outdegree`,
/// clamped to `[1, min(64, clusters − 1)]`. An approximation of the
/// PLOD construction the instance generator uses — good enough for a
/// throughput benchmark, and a pure function of `(seed, cluster)`.
fn degree_of(params: &ScaleParams, cluster: u32) -> usize {
    if params.clusters <= 1 {
        return 0;
    }
    let cap = (params.clusters - 1).min(SCALE_MAX_CLUSTER);
    let alpha = params.avg_outdegree / (params.avg_outdegree - 1.0);
    let u = unit(keyed(SALT_DEGREE, params.seed, cluster as u64, 0)).max(1e-12);
    let d = (1.0 / u.powf(1.0 / alpha)).floor() as usize;
    d.clamp(1, cap)
}

/// Out-neighbor for edge slot `j` of `cluster`: uniform over the other
/// clusters (duplicates permitted — a multi-edge just means a
/// duplicate copy, which the open-flood cost model charges anyway).
fn edge_target(params: &ScaleParams, cluster: u32, j: usize) -> u32 {
    let raw = keyed(SALT_EDGE, params.seed, cluster as u64, j as u64);
    let pick = (raw % (params.clusters as u64 - 1)) as u32;
    if pick >= cluster {
        pick + 1
    } else {
        pick
    }
}

/// Shared file count of a peer — the Section 5.3 election criterion.
fn files_of(seed: u64, peer: u64) -> u64 {
    keyed(SALT_FILES, seed, peer, 0) % 10_000
}

/// Ticks until the next query arrival of `peer` after arrival `n`:
/// a discretized exponential with the Table 1 per-user query rate,
/// at least one tick.
fn arrival_gap(params: &ScaleParams, peer: u64, n: u32) -> u32 {
    let u = unit(keyed(SALT_ARRIVAL, params.seed, peer, n as u64)).max(1e-12);
    let dt = (-u.ln() / params.query_rate.max(1e-9)).ceil();
    (dt as u32).max(1)
}

/// Fault windows active at tick `t`, refreshed once per tick.
#[derive(Default)]
struct ActiveWindows {
    /// `(fault index, drop_prob)` for active loss windows.
    loss: Vec<(usize, f64)>,
    /// `(fault index, delay_prob, delay_ticks)` for active delays.
    delay: Vec<(usize, f64, u32)>,
    /// `(fault index, flake_prob)` for active flaky-partner windows.
    flake: Vec<(usize, f64)>,
    /// Sorted partitioned-cluster lists for active partitions.
    partitions: Vec<Vec<u32>>,
}

impl ActiveWindows {
    fn refresh(&mut self, plan: &FaultPlan, params: &ScaleParams, t: u32) {
        let now = t as f64;
        let active = |from: f64, until: f64| now >= from && now < until;
        self.loss.clear();
        self.delay.clear();
        self.flake.clear();
        self.partitions.clear();
        for (i, fault) in plan.faults.iter().enumerate() {
            match fault {
                FaultSpec::MessageLoss {
                    from_secs,
                    until_secs,
                    drop_prob,
                } if active(*from_secs, *until_secs) => {
                    self.loss.push((i, *drop_prob));
                }
                FaultSpec::MessageDelay {
                    from_secs,
                    until_secs,
                    delay_prob,
                    delay_secs,
                } if active(*from_secs, *until_secs) => {
                    self.delay
                        .push((i, *delay_prob, (delay_secs.ceil() as u32).max(1)));
                }
                FaultSpec::FlakyPartners {
                    from_secs,
                    until_secs,
                    flake_prob,
                } if active(*from_secs, *until_secs) => {
                    self.flake.push((i, *flake_prob));
                }
                FaultSpec::Partition {
                    from_secs,
                    until_secs,
                    clusters,
                } if active(*from_secs, *until_secs) => {
                    // Indices address the static cluster list (the
                    // scale engine has no churn, so "alive at window
                    // start" is the full list), wrapped modulo.
                    let mut ids: Vec<u32> = clusters
                        .iter()
                        .map(|&c| (c % params.clusters) as u32)
                        .collect();
                    ids.sort_unstable();
                    self.partitions.push(ids);
                }
                _ => {}
            }
        }
    }

    fn is_partitioned(&self, cluster: u32) -> bool {
        self.partitions
            .iter()
            .any(|ids| ids.binary_search(&cluster).is_ok())
    }
}

/// Per-run mutable context of one shard's reactor.
struct Reactor<'a> {
    params: &'a ScaleParams,
    shard_starts: &'a [usize],
    me: usize,
    state: ShardState,
    queue: IndexedEventQueue<ScaleEvent>,
    /// Future-delivery ring, indexed by `deliver_tick % horizon`.
    ring: Vec<Vec<ShardMsg>>,
    /// Per-destination-shard outgoing batches for the current tick.
    outbox: Vec<Vec<ShardMsg>>,
    windows: ActiveWindows,
    metrics: ScaleMetrics,
    diag: ScaleDiag,
}

impl Reactor<'_> {
    fn shard_of(&self, cluster: u32) -> usize {
        // partition_point over ascending span starts: the owner is the
        // last shard whose start is <= cluster.
        self.shard_starts
            .partition_point(|&s| s <= cluster as usize)
            - 1
    }

    /// Emits one message at tick `t`: assigns the per-source sequence
    /// number, applies source-side loss/delay windows, and routes to
    /// the destination shard's batch (or the local ring).
    fn emit(&mut self, t: u32, src: u32, dst: u32, kind: MsgKind) {
        let local = self.state.local(src);
        let seq = self.state.seq[local];
        self.state.seq[local] += 1;
        self.metrics.msgs_sent += 1;
        for &(i, prob) in &self.windows.loss {
            if chance(
                keyed(
                    SALT_LOSS,
                    self.params.fault_seed ^ i as u64,
                    src as u64,
                    seq as u64,
                ),
                prob,
            ) {
                self.metrics.msgs_dropped_loss += 1;
                return;
            }
        }
        let mut delay = 0u32;
        for &(i, prob, ticks) in &self.windows.delay {
            if chance(
                keyed(
                    SALT_DELAY,
                    self.params.fault_seed ^ i as u64,
                    src as u64,
                    seq as u64,
                ),
                prob,
            ) {
                delay += ticks;
            }
        }
        if delay > 0 {
            self.metrics.msgs_delayed += 1;
        }
        let deliver = t + 1 + delay;
        if deliver >= self.params.ticks {
            self.metrics.msgs_expired += 1;
            return;
        }
        let msg = ShardMsg {
            deliver_tick: deliver,
            src_cluster: src,
            seq,
            dst_cluster: dst,
            kind,
        };
        let dst_shard = self.shard_of(dst);
        if dst_shard == self.me {
            self.diag.intra_shard_msgs += 1;
            self.ring[(deliver % self.params.horizon) as usize].push(msg);
        } else {
            self.diag.cross_shard_msgs += 1;
            self.outbox[dst_shard].push(msg);
        }
    }

    /// Kills the acting head and every founding partner of an owned
    /// cluster; schedules an election one tick later if anyone is left.
    fn crash(&mut self, t: u32, cluster: u32) {
        let local = self.state.local(cluster);
        let k = self.params.redundancy_k.min(SCALE_MAX_CLUSTER) as u32;
        let mut doomed = if k >= 64 { u64::MAX } else { (1u64 << k) - 1 };
        doomed |= 1u64 << (self.state.head[local] % 64);
        let before = self.state.alive[local];
        self.state.alive[local] = before & !doomed;
        self.metrics.crashes_injected += (before & doomed).count_ones() as u64;
        if self.state.alive[local] == 0 {
            if before != 0 {
                self.metrics.clusters_dead += 1;
            }
        } else if t + 1 < self.params.ticks {
            self.queue
                .schedule((t + 1) as f64, ScaleEvent::Election { cluster });
        }
    }

    /// Applies instantaneous faults due at tick `t`, in plan order and
    /// ascending cluster order within each fault.
    fn apply_instant_faults(&mut self, plan: &FaultPlan, t: u32) {
        let (start, end) = (
            self.state.base,
            self.state.base + (self.state.alive.len() as u32),
        );
        for (i, fault) in plan.faults.iter().enumerate() {
            match fault {
                FaultSpec::CrashCluster {
                    at_secs,
                    cluster_index,
                } if *at_secs as u32 == t => {
                    let target = (cluster_index % self.params.clusters) as u32;
                    if target >= start && target < end {
                        self.crash(t, target);
                    }
                }
                FaultSpec::CrashFraction { at_secs, fraction } if *at_secs as u32 == t => {
                    for c in start..end {
                        if chance(
                            keyed(
                                SALT_CRASH,
                                self.params.fault_seed ^ i as u64,
                                c as u64,
                                t as u64,
                            ),
                            *fraction,
                        ) {
                            self.crash(t, c);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// Processes one delivered message at tick `t`.
    fn deliver(&mut self, t: u32, msg: ShardMsg) {
        let local = self.state.local(msg.dst_cluster);
        match msg.kind {
            MsgKind::Flood {
                query_key,
                ttl_left,
                hops,
            } => {
                if self.state.alive[local] == 0 {
                    self.metrics.msgs_dropped_dead += 1;
                    return;
                }
                if self.windows.is_partitioned(msg.dst_cluster) {
                    self.metrics.msgs_dropped_partition += 1;
                    return;
                }
                self.metrics.msgs_delivered += 1;
                let bucket = (hops as usize).min(SCALE_MAX_HOPS - 1);
                self.metrics.hop_hist[bucket] += 1;
                if chance(
                    keyed(
                        SALT_HIT,
                        self.params.seed,
                        query_key,
                        msg.dst_cluster as u64,
                    ),
                    HIT_PROB,
                ) {
                    self.metrics.results_found += 1;
                }
                if ttl_left > 0 {
                    let deg = self.state.neighbors(local).len();
                    for e in 0..deg {
                        let dst = self.state.edges[self.state.offsets[local] as usize + e];
                        self.emit(
                            t,
                            msg.dst_cluster,
                            dst,
                            MsgKind::Flood {
                                query_key,
                                ttl_left: ttl_left - 1,
                                hops: hops + 1,
                            },
                        );
                    }
                }
            }
            MsgKind::Reindex => {
                if self.state.alive[local] != 0 {
                    self.metrics.reindex_received += 1;
                }
            }
        }
    }

    /// Processes one local event at tick `t`.
    fn handle_event(&mut self, t: u32, event: ScaleEvent) {
        match event {
            ScaleEvent::Query { peer, n } => {
                let cluster = (peer / self.params.cluster_size as u64) as u32;
                let local = self.state.local(cluster);
                let offset = (peer % self.params.cluster_size as u64) as u32;
                let peer_alive = self.state.alive[local] & (1u64 << (offset % 64)) != 0;
                if !peer_alive
                    || self.state.alive[local] == 0
                    || self.windows.is_partitioned(cluster)
                {
                    self.metrics.queries_failed += 1;
                } else {
                    if self.params.redundancy_k >= 2 {
                        for &(i, prob) in &self.windows.flake {
                            if chance(
                                keyed(
                                    SALT_FLAKE,
                                    self.params.fault_seed ^ i as u64,
                                    peer,
                                    n as u64,
                                ),
                                prob,
                            ) {
                                self.metrics.submissions_flaked += 1;
                                break;
                            }
                        }
                    }
                    self.metrics.queries_issued += 1;
                    let query_key = keyed(SALT_QUERY, self.params.seed, peer, n as u64);
                    // The origin cluster searches its own index first…
                    if chance(
                        keyed(SALT_HIT, self.params.seed, query_key, cluster as u64),
                        HIT_PROB,
                    ) {
                        self.metrics.results_found += 1;
                    }
                    // …then floods the overlay if any TTL remains.
                    if self.params.ttl > 0 {
                        let deg = self.state.neighbors(local).len();
                        for e in 0..deg {
                            let dst = self.state.edges[self.state.offsets[local] as usize + e];
                            self.emit(
                                t,
                                cluster,
                                dst,
                                MsgKind::Flood {
                                    query_key,
                                    ttl_left: self.params.ttl - 1,
                                    hops: 1,
                                },
                            );
                        }
                    }
                }
                let gap = arrival_gap(self.params, peer, n + 1);
                let next = t + gap;
                if next < self.params.ticks {
                    self.queue
                        .schedule(next as f64, ScaleEvent::Query { peer, n: n + 1 });
                }
            }
            ScaleEvent::Election { cluster } => {
                let local = self.state.local(cluster);
                let mask = self.state.alive[local];
                if mask == 0 {
                    return;
                }
                // Section 5.3: the peer sharing the most files wins;
                // ties go to the lowest peer id. Pure hash draws, so
                // the outcome is identical at any layout.
                let base_peer = cluster as u64 * self.params.cluster_size as u64;
                let mut best_offset = 0u32;
                let mut best_files = 0u64;
                let mut found = false;
                for offset in 0..self.params.cluster_size as u32 {
                    if mask & (1u64 << (offset % 64)) != 0 {
                        let files = files_of(self.params.seed, base_peer + offset as u64);
                        if !found || files > best_files {
                            found = true;
                            best_files = files;
                            best_offset = offset;
                        }
                    }
                }
                self.state.head[local] = best_offset;
                self.metrics.elections_held += 1;
                // Announce the new head to every overlay neighbor so
                // they re-index — the cross-shard repair path.
                let deg = self.state.neighbors(local).len();
                for e in 0..deg {
                    let dst = self.state.edges[self.state.offsets[local] as usize + e];
                    self.emit(t, cluster, dst, MsgKind::Reindex);
                }
            }
        }
    }
}

/// Runs one shard's reactor over the full tick range and returns its
/// metrics slice and diagnostics.
fn run_shard(
    params: &ScaleParams,
    plan: &FaultPlan,
    shard_starts: &[usize],
    me: usize,
    span: (usize, usize),
    txs: Vec<Option<SyncSender<Batch>>>,
    rxs: Vec<Option<Receiver<Batch>>>,
) -> (ScaleMetrics, ScaleDiag) {
    let (start, end) = span;
    let own = end - start;

    // Build this shard's overlay slice: pure hash draws keyed by global
    // cluster id, so the same cluster gets the same edges at any
    // layout. CSR keeps it to two flat allocations.
    let mut offsets = Vec::with_capacity(own + 1);
    offsets.push(0u32);
    let mut edges = Vec::new();
    for c in start..end {
        let deg = degree_of(params, c as u32);
        for j in 0..deg {
            edges.push(edge_target(params, c as u32, j));
        }
        offsets.push(edges.len() as u32);
    }
    let full_mask = if params.cluster_size >= 64 {
        u64::MAX
    } else {
        (1u64 << params.cluster_size) - 1
    };
    let state = ShardState {
        base: start as u32,
        offsets,
        edges,
        alive: vec![full_mask; own],
        head: vec![0; own],
        seq: vec![0; own],
    };

    let mut reactor = Reactor {
        params,
        shard_starts,
        me,
        state,
        queue: IndexedEventQueue::new(),
        ring: (0..params.horizon).map(|_| Vec::new()).collect(),
        outbox: (0..shard_starts.len()).map(|_| Vec::new()).collect(),
        windows: ActiveWindows::default(),
        metrics: ScaleMetrics::default(),
        diag: ScaleDiag::default(),
    };

    // Seed every owned peer's first query arrival. Ascending peer
    // order fixes the intra-cluster event order identically at every
    // layout (clusters never split across shards).
    for peer in (start * params.cluster_size) as u64..(end * params.cluster_size) as u64 {
        let t0 = arrival_gap(params, peer, 0) - 1;
        if t0 < params.ticks {
            reactor
                .queue
                .schedule(t0 as f64, ScaleEvent::Query { peer, n: 0 });
        }
    }

    let mut due: Vec<ShardMsg> = Vec::new();
    for t in 0..params.ticks {
        // 1. Barrier receive: exactly one batch tagged t−1 from every
        // peer shard, slotted into the delivery ring.
        if t > 0 {
            for rx in rxs.iter().flatten() {
                let batch = rx.recv().expect("peer shard hung up before the barrier");
                debug_assert_eq!(batch.tick, t - 1, "barrier batch out of order");
                for msg in batch.msgs {
                    let slot = (msg.deliver_tick % params.horizon) as usize;
                    reactor.ring[slot].push(msg);
                }
            }
        }

        // 2. Fault windows for this tick, then instantaneous faults.
        reactor.windows.refresh(plan, params, t);
        reactor.apply_instant_faults(plan, t);

        // 3. Deliver the messages due now, in (src_cluster, seq)
        // order — the layout-invariant global delivery order.
        let slot = (t % params.horizon) as usize;
        std::mem::swap(&mut due, &mut reactor.ring[slot]);
        due.sort_unstable_by_key(|m| (m.src_cluster, m.seq));
        for msg in due.drain(..) {
            reactor.deliver(t, msg);
        }

        // 4. Local events due now (query arrivals, elections).
        while let Some(time) = reactor.queue.peek_time() {
            if time > t as f64 {
                break;
            }
            if let Some((_, event)) = reactor.queue.pop() {
                reactor.handle_event(t, event);
            }
        }

        // 5. Barrier send: one batch tagged t to every peer shard,
        // empty or not. The final tick's emissions were already
        // discarded symmetrically by the expiry check in emit().
        if t + 1 < params.ticks {
            for (j, tx) in txs.iter().enumerate() {
                if let Some(tx) = tx {
                    let msgs = std::mem::take(&mut reactor.outbox[j]);
                    tx.send(Batch { tick: t, msgs })
                        .expect("peer shard hung up before the barrier");
                }
            }
        } else {
            for box_ in reactor.outbox.iter_mut() {
                box_.clear();
            }
        }
    }

    reactor.diag.queue_high_water = reactor.queue.high_water() as u64;
    (reactor.metrics, reactor.diag)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Config {
        Config {
            graph_size: 400,
            cluster_size: 10,
            ttl: 3,
            ..Config::default()
        }
    }

    fn run_at(config: &Config, shards: usize, plan: &FaultPlan) -> (ScaleMetrics, ScaleDiag) {
        let mut sim = ShardedSimulation::with_faults(
            config,
            ScaleOptions {
                duration_secs: 400.0,
                seed: 42,
                fault_seed: 7,
                shards,
            },
            plan,
        );
        let m = sim.run();
        (m, *sim.diag())
    }

    #[test]
    fn fault_free_run_is_shard_count_invariant() {
        let config = small();
        let (base, base_diag) = run_at(&config, 1, &FaultPlan::default());
        assert!(base.queries_issued > 0, "workload was inert");
        assert!(base.msgs_delivered > 0);
        assert!(base.results_found > 0);
        assert_eq!(base.peers, 400);
        assert_eq!(base.clusters, 40);
        assert_eq!(base_diag.cross_shard_msgs, 0);
        for shards in [2, 4, 8] {
            let (m, d) = run_at(&config, shards, &FaultPlan::default());
            assert_eq!(base, m, "metrics diverged at {shards} shards");
            assert_eq!(d.shards, shards as u64);
            assert!(d.cross_shard_msgs > 0, "no cross-shard traffic at {shards}");
            assert_eq!(
                d.cross_shard_msgs + d.intra_shard_msgs,
                base_diag.intra_shard_msgs,
                "routed message total changed at {shards} shards"
            );
        }
    }

    #[test]
    fn crash_storm_elects_and_stays_invariant() {
        let config = small();
        let plan = FaultPlan {
            faults: vec![
                FaultSpec::CrashFraction {
                    at_secs: 50.0,
                    fraction: 0.5,
                },
                FaultSpec::CrashCluster {
                    at_secs: 120.0,
                    cluster_index: 3,
                },
            ],
            ..Default::default()
        };
        let (base, _) = run_at(&config, 1, &plan);
        assert!(base.crashes_injected > 0);
        assert!(base.elections_held > 0, "no elections ran");
        assert!(base.reindex_received > 0, "no re-index announcements");
        for shards in [2, 4, 8] {
            let (m, _) = run_at(&config, shards, &plan);
            assert_eq!(base, m, "crash-storm metrics diverged at {shards} shards");
        }
    }

    #[test]
    fn windowed_faults_stay_invariant_and_count() {
        let config = small();
        let plan = FaultPlan {
            faults: vec![
                FaultSpec::MessageLoss {
                    from_secs: 20.0,
                    until_secs: 200.0,
                    drop_prob: 0.3,
                },
                FaultSpec::MessageDelay {
                    from_secs: 50.0,
                    until_secs: 300.0,
                    delay_prob: 0.4,
                    delay_secs: 2.0,
                },
                FaultSpec::Partition {
                    from_secs: 80.0,
                    until_secs: 160.0,
                    clusters: vec![0, 5, 11],
                },
            ],
            ..Default::default()
        };
        let (base, _) = run_at(&config, 1, &plan);
        assert!(base.msgs_dropped_loss > 0);
        assert!(base.msgs_delayed > 0);
        assert!(base.msgs_dropped_partition > 0 || base.queries_failed > 0);
        for shards in [2, 4, 8] {
            let (m, _) = run_at(&config, shards, &plan);
            assert_eq!(
                base, m,
                "windowed-fault metrics diverged at {shards} shards"
            );
        }
    }

    #[test]
    fn flaky_partners_count_under_redundancy() {
        let config = small().with_redundancy(true);
        let plan = FaultPlan {
            faults: vec![FaultSpec::FlakyPartners {
                from_secs: 0.0,
                until_secs: 400.0,
                flake_prob: 0.5,
            }],
            ..Default::default()
        };
        let (base, _) = run_at(&config, 1, &plan);
        assert!(base.submissions_flaked > 0, "flake window never drew");
        let (two, _) = run_at(&config, 2, &plan);
        assert_eq!(base, two);
    }

    #[test]
    fn lone_super_peer_crash_kills_cluster() {
        // cluster_size 1, k 1: the crash leaves nobody to elect, so the
        // cluster dies and floods to it are dropped as dead.
        let config = Config {
            graph_size: 20,
            cluster_size: 1,
            ttl: 2,
            ..Config::default()
        };
        let plan = FaultPlan {
            faults: vec![FaultSpec::CrashFraction {
                at_secs: 10.0,
                fraction: 1.0,
            }],
            ..Default::default()
        };
        let (m, _) = run_at(&config, 1, &plan);
        assert_eq!(m.clusters_dead, 20);
        assert_eq!(m.elections_held, 0);
        assert!(m.queries_failed > 0);
    }

    #[test]
    fn shard_count_clamps_to_cluster_count() {
        let config = Config {
            graph_size: 30,
            cluster_size: 10,
            ttl: 2,
            ..Config::default()
        };
        let (base, _) = run_at(&config, 1, &FaultPlan::default());
        let (wide, diag) = run_at(&config, 64, &FaultPlan::default());
        assert_eq!(base, wide);
        assert_eq!(diag.shards, 3);
    }

    #[test]
    fn merge_and_json_are_consistent() {
        let (m, _) = run_at(&small(), 2, &FaultPlan::default());
        let mut folded = ScaleMetrics::default();
        folded.merge(&m);
        folded.merge(&m);
        assert_eq!(folded.msgs_delivered, 2 * m.msgs_delivered);
        assert_eq!(folded.results_found, 2 * m.results_found);
        let json = m.to_json();
        assert!(json.contains("\"events_processed\""));
        assert!(json.contains("\"hop_hist\": ["));
        assert!(json.contains(&format!("\"msgs_delivered\": {}", m.msgs_delivered)));
        assert!(m.events_processed() > m.queries_issued);
    }

    #[test]
    fn reruns_are_identical_and_seeds_differ() {
        let config = small();
        let mut sim = ShardedSimulation::new(
            &config,
            ScaleOptions {
                duration_secs: 200.0,
                seed: 1,
                ..Default::default()
            },
        );
        let first = sim.run();
        let second = sim.run();
        assert_eq!(first, second, "rerun diverged");
        let other = ShardedSimulation::new(
            &config,
            ScaleOptions {
                duration_secs: 200.0,
                seed: 2,
                ..Default::default()
            },
        )
        .run();
        assert_ne!(first, other, "seed had no effect");
    }

    #[test]
    #[should_panic(expected = "cluster_size <= 64")]
    fn oversized_clusters_are_rejected() {
        let config = Config {
            graph_size: 1000,
            cluster_size: 100,
            ..Config::default()
        };
        let _ = ShardedSimulation::new(&config, ScaleOptions::default());
    }
}
