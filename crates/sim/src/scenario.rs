//! Packaged experiments over the simulation engine.
//!
//! * [`steady_state`] — measure per-role loads from real message
//!   traffic under churn; used to validate the mean-value analysis.
//! * [`reliability`] — the Section 3.2 redundancy claim: client
//!   availability and downtime with k = 1 versus k = 2 virtual
//!   super-peers under identical churn.
//! * [`adaptive`] — the Section 5.3 local rules in action: start from a
//!   deliberately bad configuration and watch the network reorganize.

use serde::{Deserialize, Serialize};

use sp_model::config::Config;
use sp_model::load::Load;
use sp_stats::OnlineStats;

use crate::engine::{
    AdaptSettings, ForwardPolicy, RawMetrics, SimOptions, Simulation, TimelinePoint,
};

/// Adaptive-scenario options (re-exported engine settings).
pub type AdaptOptions = AdaptSettings;

/// Condensed report of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Mean partner load rate (bps/bps/Hz).
    pub sp_load: Load,
    /// Mean client load rate.
    pub client_load: Load,
    /// Mean results per query.
    pub results_per_query: f64,
    /// Queries simulated.
    pub queries: u64,
    /// Cluster failures (every partner gone).
    pub cluster_failures: u64,
    /// Client orphanings.
    pub orphan_events: u64,
    /// Client availability in [0, 1].
    pub availability: f64,
    /// Mean downtime per orphaning, seconds (0 if none).
    pub mean_downtime_secs: f64,
    /// Local-rule actions applied.
    pub adapt_actions: u64,
    /// Periodic samples of network shape.
    pub timeline: Vec<TimelinePoint>,
}

impl SimReport {
    fn from_raw(m: RawMetrics) -> Self {
        let mean = |s: &OnlineStats| s.mean();
        SimReport {
            sp_load: Load {
                in_bw: mean(&m.sp_in),
                out_bw: mean(&m.sp_out),
                proc: mean(&m.sp_proc),
            },
            client_load: Load {
                in_bw: mean(&m.client_in),
                out_bw: mean(&m.client_out),
                proc: mean(&m.client_proc),
            },
            results_per_query: m.results.mean(),
            queries: m.queries,
            cluster_failures: m.cluster_failures,
            orphan_events: m.orphan_events,
            availability: m.availability(),
            mean_downtime_secs: m.downtime.mean(),
            adapt_actions: m.adapt_actions,
            timeline: m.timeline,
        }
    }
}

/// Runs the plain steady-state scenario.
pub fn steady_state(config: &Config, duration_secs: f64, seed: u64) -> SimReport {
    let mut sim = Simulation::new(
        config,
        SimOptions {
            duration_secs,
            seed,
            ..Default::default()
        },
    );
    SimReport::from_raw(sim.run())
}

/// Reliability comparison: the same configuration and churn, with and
/// without 2-redundancy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReliabilityComparison {
    /// Availability with a single super-peer per cluster.
    pub availability_k1: f64,
    /// Availability with 2-redundant virtual super-peers.
    pub availability_k2: f64,
    /// Cluster failures with k = 1.
    pub failures_k1: u64,
    /// Cluster failures with k = 2.
    pub failures_k2: u64,
    /// Mean client downtime per orphaning with k = 1, seconds.
    pub downtime_k1: f64,
    /// Mean client downtime per orphaning with k = 2, seconds.
    pub downtime_k2: f64,
}

/// Runs the Section 3.2 reliability experiment.
pub fn reliability(config: &Config, duration_secs: f64, seed: u64) -> ReliabilityComparison {
    let run = |cfg: &Config| {
        let mut sim = Simulation::new(
            cfg,
            SimOptions {
                duration_secs,
                seed,
                ..Default::default()
            },
        );
        SimReport::from_raw(sim.run())
    };
    let k1 = run(&config.clone().with_redundancy(false));
    let k2 = run(&config.clone().with_redundancy(true));
    ReliabilityComparison {
        availability_k1: k1.availability,
        availability_k2: k2.availability,
        failures_k1: k1.cluster_failures,
        failures_k2: k2.cluster_failures,
        downtime_k1: k1.mean_downtime_secs,
        downtime_k2: k2.mean_downtime_secs,
    }
}

/// Flooding vs bounded-fanout forwarding on the same network: the
/// routing protocol is orthogonal to the super-peer design (Section 2),
/// trading reach/results for load.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoutingComparison {
    /// Results per query under full flooding.
    pub results_flood: f64,
    /// Results per query under bounded fanout.
    pub results_subset: f64,
    /// Mean super-peer total bandwidth under full flooding (bps).
    pub sp_bw_flood: f64,
    /// Mean super-peer total bandwidth under bounded fanout (bps).
    pub sp_bw_subset: f64,
    /// The fanout compared.
    pub fanout: usize,
}

/// Runs the routing-policy comparison.
pub fn routing(config: &Config, fanout: usize, duration_secs: f64, seed: u64) -> RoutingComparison {
    let run = |policy: ForwardPolicy| {
        let mut sim = Simulation::new(
            config,
            SimOptions {
                duration_secs,
                seed,
                forward_policy: policy,
                ..Default::default()
            },
        );
        SimReport::from_raw(sim.run())
    };
    let flood = run(ForwardPolicy::FloodAll);
    let subset = run(ForwardPolicy::RandomSubset { fanout });
    RoutingComparison {
        results_flood: flood.results_per_query,
        results_subset: subset.results_per_query,
        sp_bw_flood: flood.sp_load.total_bw(),
        sp_bw_subset: subset.sp_load.total_bw(),
        fanout,
    }
}

/// Runs the Section 5.3 adaptive scenario.
pub fn adaptive(config: &Config, duration_secs: f64, seed: u64, adapt: AdaptOptions) -> SimReport {
    let mut sim = Simulation::new(
        config,
        SimOptions {
            duration_secs,
            seed,
            adapt: Some(adapt),
            ..Default::default()
        },
    );
    SimReport::from_raw(sim.run())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_model::population::PopulationModel;

    fn churny_config() -> Config {
        Config {
            graph_size: 120,
            cluster_size: 12,
            population: PopulationModel {
                lifespan_mean_secs: 400.0,
                ..Default::default()
            },
            ..Config::default()
        }
    }

    #[test]
    fn steady_state_produces_traffic() {
        let r = steady_state(
            &Config {
                graph_size: 100,
                cluster_size: 10,
                ..Config::default()
            },
            600.0,
            1,
        );
        assert!(r.queries > 100);
        assert!(r.sp_load.proc > r.client_load.proc);
        assert!(r.results_per_query > 0.0);
    }

    #[test]
    fn reliability_favors_redundancy() {
        let c = reliability(&churny_config(), 2400.0, 7);
        assert!(
            c.availability_k2 > c.availability_k1,
            "k2 {} vs k1 {}",
            c.availability_k2,
            c.availability_k1
        );
        assert!(c.failures_k2 < c.failures_k1);
    }

    #[test]
    fn bounded_fanout_trades_results_for_load() {
        let cfg = Config {
            graph_size: 300,
            cluster_size: 10,
            avg_outdegree: 8.0,
            ttl: 4,
            ..Config::default()
        };
        let c = routing(&cfg, 2, 900.0, 9);
        assert!(
            c.sp_bw_subset < c.sp_bw_flood,
            "subset bw {} !< flood {}",
            c.sp_bw_subset,
            c.sp_bw_flood
        );
        assert!(
            c.results_subset < c.results_flood,
            "subset results {} !< flood {}",
            c.results_subset,
            c.results_flood
        );
        assert!(c.results_subset > 0.0);
    }

    #[test]
    fn adaptive_reduces_overload_pressure() {
        // A deliberately over-clustered start (few, large clusters) with
        // a tight limit: the rules should split clusters / promote
        // partners, changing the cluster count over time.
        let cfg = Config {
            graph_size: 150,
            cluster_size: 50,
            ..Config::default()
        };
        let r = adaptive(
            &cfg,
            2400.0,
            3,
            AdaptOptions {
                interval_secs: 120.0,
                limit: Load {
                    in_bw: 2e5,
                    out_bw: 2e5,
                    proc: 2e7,
                },
            },
        );
        assert!(r.adapt_actions > 0);
        assert!(!r.timeline.is_empty());
    }
}
