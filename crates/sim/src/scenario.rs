//! Packaged experiments over the simulation engine.
//!
//! * [`steady_state`] — measure per-role loads from real message
//!   traffic under churn; used to validate the mean-value analysis.
//! * [`reliability`] — the Section 3.2 redundancy claim: client
//!   availability and downtime with k = 1 versus k = 2 virtual
//!   super-peers under identical churn.
//! * [`adaptive`] — the Section 5.3 local rules in action: start from a
//!   deliberately bad configuration and watch the network reorganize.
//!
//! Every scenario also has a *sharded trials* variant
//! ([`reliability_trials`], [`routing_trials`], [`adaptive_trials`],
//! [`steady_trials`]) built on [`run_sim_trials`]: independent trials
//! fan out over the same thread-budget cascade as
//! `sp_model::run_trials`, each trial draws from its own RNG split,
//! and per-trial results are collected *by trial index* before
//! reduction — so the output is bitwise identical at any thread count
//! (the `Engine::Fast` contract, enforced by
//! `tests/sim_determinism.rs`).

use serde::{Deserialize, Serialize};

use sp_model::config::Config;
use sp_model::faults::{FaultPlan, FaultSpec};
use sp_model::load::Load;
use sp_model::repair::RepairPolicy;
use sp_model::trials::{resolve_thread_budget, split_thread_budget};
use sp_stats::{ConfidenceInterval, OnlineStats, SpRng};

use crate::engine::{
    AdaptSettings, ForwardPolicy, RawMetrics, SimOptions, Simulation, TimelinePoint,
};

/// Adaptive-scenario options (re-exported engine settings).
pub type AdaptOptions = AdaptSettings;

/// Condensed report of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Mean partner load rate (bps/bps/Hz).
    pub sp_load: Load,
    /// Mean client load rate.
    pub client_load: Load,
    /// Mean results per query.
    pub results_per_query: f64,
    /// Queries simulated.
    pub queries: u64,
    /// Cluster failures (every partner gone).
    pub cluster_failures: u64,
    /// Client orphanings.
    pub orphan_events: u64,
    /// Client availability in [0, 1].
    pub availability: f64,
    /// Mean downtime per orphaning, seconds (0 if none).
    pub mean_downtime_secs: f64,
    /// Local-rule actions applied.
    pub adapt_actions: u64,
    /// Periodic samples of network shape.
    pub timeline: Vec<TimelinePoint>,
}

impl SimReport {
    /// Condenses raw engine metrics into the report shape.
    ///
    /// Public so callers that need both the report and the engine's
    /// [`RunManifest`](crate::metrics::RunManifest) (e.g. `spnet
    /// simulate --metrics-json`) can drive [`Simulation`] themselves
    /// and still produce the standard summary.
    pub fn from_raw(m: RawMetrics) -> Self {
        let mean = |s: &OnlineStats| s.mean();
        SimReport {
            sp_load: Load {
                in_bw: mean(&m.sp_in),
                out_bw: mean(&m.sp_out),
                proc: mean(&m.sp_proc),
            },
            client_load: Load {
                in_bw: mean(&m.client_in),
                out_bw: mean(&m.client_out),
                proc: mean(&m.client_proc),
            },
            results_per_query: m.results.mean(),
            queries: m.queries,
            cluster_failures: m.cluster_failures,
            orphan_events: m.orphan_events,
            availability: m.availability(),
            mean_downtime_secs: m.downtime.mean(),
            adapt_actions: m.adapt_actions,
            timeline: m.timeline,
        }
    }
}

/// Runs the plain steady-state scenario.
pub fn steady_state(config: &Config, duration_secs: f64, seed: u64) -> SimReport {
    let mut sim = Simulation::new(
        config,
        SimOptions {
            duration_secs,
            seed,
            ..Default::default()
        },
    );
    SimReport::from_raw(sim.run())
}

/// Reliability comparison: the same configuration and churn, with and
/// without 2-redundancy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityComparison {
    /// Availability with a single super-peer per cluster.
    pub availability_k1: f64,
    /// Availability with 2-redundant virtual super-peers.
    pub availability_k2: f64,
    /// Cluster failures with k = 1.
    pub failures_k1: u64,
    /// Cluster failures with k = 2.
    pub failures_k2: u64,
    /// Mean client downtime per orphaning with k = 1, seconds.
    pub downtime_k1: f64,
    /// Mean client downtime per orphaning with k = 2, seconds.
    pub downtime_k2: f64,
}

/// Runs the Section 3.2 reliability experiment.
pub fn reliability(config: &Config, duration_secs: f64, seed: u64) -> ReliabilityComparison {
    let run = |cfg: &Config| {
        let mut sim = Simulation::new(
            cfg,
            SimOptions {
                duration_secs,
                seed,
                ..Default::default()
            },
        );
        SimReport::from_raw(sim.run())
    };
    let k1 = run(&config.clone().with_redundancy(false));
    let k2 = run(&config.clone().with_redundancy(true));
    ReliabilityComparison {
        availability_k1: k1.availability,
        availability_k2: k2.availability,
        failures_k1: k1.cluster_failures,
        failures_k2: k2.cluster_failures,
        downtime_k1: k1.mean_downtime_secs,
        downtime_k2: k2.mean_downtime_secs,
    }
}

/// Flooding vs bounded-fanout forwarding on the same network: the
/// routing protocol is orthogonal to the super-peer design (Section 2),
/// trading reach/results for load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingComparison {
    /// Results per query under full flooding.
    pub results_flood: f64,
    /// Results per query under bounded fanout.
    pub results_subset: f64,
    /// Mean super-peer total bandwidth under full flooding (bps).
    pub sp_bw_flood: f64,
    /// Mean super-peer total bandwidth under bounded fanout (bps).
    pub sp_bw_subset: f64,
    /// The fanout compared.
    pub fanout: usize,
}

/// Runs the routing-policy comparison.
pub fn routing(config: &Config, fanout: usize, duration_secs: f64, seed: u64) -> RoutingComparison {
    let run = |policy: ForwardPolicy| {
        let mut sim = Simulation::new(
            config,
            SimOptions {
                duration_secs,
                seed,
                forward_policy: policy,
                ..Default::default()
            },
        );
        SimReport::from_raw(sim.run())
    };
    let flood = run(ForwardPolicy::FloodAll);
    let subset = run(ForwardPolicy::RandomSubset { fanout });
    RoutingComparison {
        results_flood: flood.results_per_query,
        results_subset: subset.results_per_query,
        sp_bw_flood: flood.sp_load.total_bw(),
        sp_bw_subset: subset.sp_load.total_bw(),
        fanout,
    }
}

/// The canonical crash-storm fault plan for a run of the given length:
/// two waves each crashing a quarter of the live super-peers, inside a
/// long message-loss window that stresses the submission retry path.
pub fn crash_storm_plan(duration_secs: f64) -> FaultPlan {
    FaultPlan {
        faults: vec![
            FaultSpec::CrashFraction {
                at_secs: duration_secs * 0.25,
                fraction: 0.25,
            },
            FaultSpec::CrashFraction {
                at_secs: duration_secs * 0.5,
                fraction: 0.25,
            },
            FaultSpec::MessageLoss {
                from_secs: duration_secs * 0.2,
                until_secs: duration_secs * 0.8,
                drop_prob: 0.3,
            },
        ],
        ..Default::default()
    }
}

/// One arm of the crash-storm comparison (see [`crash_storm`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrashStormReport {
    /// Queries that reached the submission path.
    pub queries_issued: u64,
    /// Queries that exhausted retry and failover.
    pub queries_lost: u64,
    /// Queries recovered by retrying the same partner.
    pub recovered_retry: u64,
    /// Queries recovered by failing over to the second partner.
    pub recovered_failover: u64,
    /// Super-peers crashed by the plan.
    pub injected_crash: u64,
    /// Cluster failures (every partner gone).
    pub cluster_failures: u64,
    /// Client orphanings.
    pub orphan_events: u64,
    /// Orphaned clients that exhausted the rejoin-attempt cap.
    pub orphan_gave_up: u64,
    /// Client availability in [0, 1].
    pub availability: f64,
    /// Mean time-to-reconnect for recovered orphans, seconds.
    pub mean_reconnect_secs: f64,
    /// Repair elections completed (clients promoted in place).
    pub repair_promotions: u64,
    /// Replacement partners recruited by repaired clusters.
    pub repair_partner_recruitments: u64,
    /// Headless clusters abandoned (all clients left before repair).
    pub repair_abandoned: u64,
    /// Smallest largest-component peer fraction observed from the first
    /// crash wave onward — the storm's worst connectivity.
    pub min_reachable_since_storm: f64,
    /// Super-peer overlay components at run end.
    pub final_components: u32,
    /// Largest-component peer fraction at run end.
    pub final_reachable_fraction: f64,
}

impl CrashStormReport {
    fn from_raw(m: &RawMetrics, storm_from_secs: f64) -> Self {
        CrashStormReport {
            queries_issued: m.faults.queries_issued,
            queries_lost: m.faults.queries_lost,
            recovered_retry: m.faults.recovered_retry,
            recovered_failover: m.faults.recovered_failover,
            injected_crash: m.faults.injected_crash,
            cluster_failures: m.cluster_failures,
            orphan_events: m.orphan_events,
            orphan_gave_up: m.faults.orphan_gave_up,
            availability: m.availability(),
            mean_reconnect_secs: m.faults.reconnect.mean_secs(),
            repair_promotions: m.repair.promotions,
            repair_partner_recruitments: m.repair.partner_recruitments,
            repair_abandoned: m.repair.abandoned,
            min_reachable_since_storm: m.repair.min_reachable_since(storm_from_secs),
            final_components: m.repair.final_components,
            final_reachable_fraction: m.repair.final_reachable_fraction,
        }
    }
}

/// Crash-storm comparison: the same fault plan against k = 1 and k = 2
/// virtual super-peers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrashStormComparison {
    /// Metrics with a single super-peer per cluster.
    pub k1: CrashStormReport,
    /// Metrics with 2-redundant virtual super-peers.
    pub k2: CrashStormReport,
}

/// Runs the crash-storm reliability experiment: the
/// [`crash_storm_plan`] under identical seeds against k = 1 and k = 2.
/// Redundancy should strictly reduce lost queries — the failover leg of
/// the retry state machine only exists with a second partner. The
/// repair policy applies to both arms, so `--repair=off` versus a
/// promoting policy isolates the self-healing contribution.
pub fn crash_storm(
    config: &Config,
    duration_secs: f64,
    seed: u64,
    fault_seed: u64,
    repair: RepairPolicy,
) -> CrashStormComparison {
    let plan = crash_storm_plan(duration_secs);
    let storm_from = duration_secs * 0.25; // first crash wave
    let run = |cfg: &Config| {
        let mut sim = Simulation::with_faults(
            cfg,
            SimOptions {
                duration_secs,
                seed,
                fault_seed,
                repair,
                ..Default::default()
            },
            &plan,
        );
        CrashStormReport::from_raw(&sim.run(), storm_from)
    };
    let k1 = run(&config.clone().with_redundancy(false));
    let k2 = run(&config.clone().with_redundancy(true));
    CrashStormComparison { k1, k2 }
}

/// Runs the Section 5.3 adaptive scenario.
pub fn adaptive(config: &Config, duration_secs: f64, seed: u64, adapt: AdaptOptions) -> SimReport {
    let mut sim = Simulation::new(
        config,
        SimOptions {
            duration_secs,
            seed,
            adapt: Some(adapt),
            ..Default::default()
        },
    );
    SimReport::from_raw(sim.run())
}

/// Options for a sharded simulation-trial run.
#[derive(Debug, Clone, Copy)]
pub struct SimTrialOptions {
    /// Number of independent trials to simulate.
    pub trials: usize,
    /// Root seed; trial `t` simulates with the seed drawn from the RNG
    /// split `seed → t`.
    pub seed: u64,
    /// Worker-thread budget; 0 = one per available core (resolved by
    /// [`sp_model::trials::resolve_thread_budget`]).
    pub threads: usize,
    /// Overlay repair policy for fault-injecting scenarios (ignored by
    /// scenarios without a fault plan; also stamped into worker-panic
    /// payloads so a dying trial identifies its full configuration).
    pub repair: RepairPolicy,
    /// Scenario kind stamped into worker-panic payloads (the trial
    /// wrappers set it — `steady-state`, `crash-storm`, … — so a dying
    /// trial names *which* experiment it was running).
    pub kind: &'static str,
}

impl Default for SimTrialOptions {
    fn default() -> Self {
        SimTrialOptions {
            trials: 5,
            seed: 0xC0FFEE,
            threads: 0,
            repair: RepairPolicy::Off,
            kind: "sim",
        }
    }
}

/// Fans `opts.trials` independent trials out over scoped threads and
/// returns their results **ordered by trial index**.
///
/// `run_one(seed, trial)` runs one trial: `seed` is drawn from the RNG
/// split `opts.seed → trial`, so every trial has its own stream no
/// matter which worker executes it. Workers stride over trial indices
/// and tag each result with its index; results are placed back into
/// index order before returning. Together these make the output bitwise
/// identical at any thread count — the same contract as
/// `sp_model::run_trials` and `Engine::Fast`.
///
/// The thread budget goes through [`split_thread_budget`] for
/// consistency with the analysis cascade, but a simulation run is
/// single-threaded, so only the outer (trial-level) share is used; the
/// inner share is intentionally left idle rather than oversubscribing.
///
/// # Panics
///
/// Panics if `opts.trials == 0` or a trial panics.
pub fn run_sim_trials<T, F>(opts: &SimTrialOptions, run_one: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64, usize) -> T + Sync,
{
    assert!(opts.trials > 0, "need at least one trial");
    let root = SpRng::seed_from_u64(opts.seed);
    let trial_seed = |t: usize| root.split(t as u64).next_raw();

    let budget = resolve_thread_budget(opts.threads);
    let (outer, _inner) = split_thread_budget(budget, opts.trials);

    if outer == 1 {
        return (0..opts.trials)
            .map(|t| run_one(trial_seed(t), t))
            .collect();
    }

    let tagged = std::thread::scope(|scope| {
        let run_one = &run_one;
        let trial_seed = &trial_seed;
        let handles: Vec<_> = (0..outer)
            .map(|w| {
                scope.spawn(move || {
                    // Wrap each trial so a panic carries *which* trial
                    // (index and seed) died, not just a bare payload.
                    let mut local = Vec::new();
                    let mut t = w;
                    while t < opts.trials {
                        let seed = trial_seed(t);
                        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            run_one(seed, t)
                        })) {
                            Ok(v) => local.push((t, v)),
                            Err(payload) => {
                                return Err(format!(
                                    "trial {t} (scenario {}, seed {seed:#x}, repair {}) \
                                     panicked: {}",
                                    opts.kind,
                                    opts.repair,
                                    panic_message(payload.as_ref())
                                ))
                            }
                        }
                        t += outer;
                    }
                    Ok(local)
                })
            })
            .collect();
        let mut tagged = Vec::new();
        for h in handles {
            match h.join() {
                Ok(Ok(local)) => tagged.extend(local),
                Ok(Err(msg)) => panic!("{msg}"),
                Err(payload) => {
                    panic!("trial worker panicked: {}", panic_message(payload.as_ref()))
                }
            }
        }
        tagged
    });

    let mut slots: Vec<Option<T>> = (0..opts.trials).map(|_| None).collect();
    for (t, value) in tagged {
        slots[t] = Some(value);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every trial index produced"))
        .collect()
}

// Panic payloads are rendered by the shared `sp_model::trials`
// implementation, which also unwraps the boxed payloads that nested
// `catch_unwind` layers produce (a local copy here used to miss them
// and render "opaque panic payload").
pub(crate) use sp_model::trials::panic_message;

fn ci_of<I: IntoIterator<Item = f64>>(values: I) -> ConfidenceInterval {
    let mut stats = OnlineStats::default();
    for v in values {
        stats.push(v);
    }
    stats.ci95()
}

/// Mean ± 95% CI over sharded [`steady_state`] trials.
#[derive(Debug, Clone)]
pub struct SteadyTrialSummary {
    /// Client availability in [0, 1].
    pub availability: ConfidenceInterval,
    /// Mean results per query.
    pub results_per_query: ConfidenceInterval,
    /// Mean super-peer total bandwidth (bps).
    pub sp_total_bw: ConfidenceInterval,
    /// The full reports, ordered by trial index.
    pub per_trial: Vec<SimReport>,
}

/// Runs sharded [`steady_state`] trials.
pub fn steady_trials(
    config: &Config,
    duration_secs: f64,
    opts: &SimTrialOptions,
) -> SteadyTrialSummary {
    let opts = SimTrialOptions {
        kind: "steady-state",
        ..*opts
    };
    let per_trial = run_sim_trials(&opts, |seed, _| steady_state(config, duration_secs, seed));
    SteadyTrialSummary {
        availability: ci_of(per_trial.iter().map(|r| r.availability)),
        results_per_query: ci_of(per_trial.iter().map(|r| r.results_per_query)),
        sp_total_bw: ci_of(per_trial.iter().map(|r| r.sp_load.total_bw())),
        per_trial,
    }
}

/// Mean ± 95% CI over sharded [`reliability`] trials.
#[derive(Debug, Clone)]
pub struct ReliabilityTrialSummary {
    /// Availability with a single super-peer per cluster.
    pub availability_k1: ConfidenceInterval,
    /// Availability with 2-redundant virtual super-peers.
    pub availability_k2: ConfidenceInterval,
    /// Mean downtime per orphaning with k = 1, seconds.
    pub downtime_k1: ConfidenceInterval,
    /// Mean downtime per orphaning with k = 2, seconds.
    pub downtime_k2: ConfidenceInterval,
    /// The full comparisons, ordered by trial index.
    pub per_trial: Vec<ReliabilityComparison>,
}

/// Runs sharded [`reliability`] trials.
pub fn reliability_trials(
    config: &Config,
    duration_secs: f64,
    opts: &SimTrialOptions,
) -> ReliabilityTrialSummary {
    let opts = SimTrialOptions {
        kind: "reliability",
        ..*opts
    };
    let per_trial = run_sim_trials(&opts, |seed, _| reliability(config, duration_secs, seed));
    ReliabilityTrialSummary {
        availability_k1: ci_of(per_trial.iter().map(|c| c.availability_k1)),
        availability_k2: ci_of(per_trial.iter().map(|c| c.availability_k2)),
        downtime_k1: ci_of(per_trial.iter().map(|c| c.downtime_k1)),
        downtime_k2: ci_of(per_trial.iter().map(|c| c.downtime_k2)),
        per_trial,
    }
}

/// Mean ± 95% CI over sharded [`crash_storm`] trials.
#[derive(Debug, Clone)]
pub struct CrashStormTrialSummary {
    /// Queries lost with a single super-peer per cluster.
    pub lost_k1: ConfidenceInterval,
    /// Queries lost with 2-redundant virtual super-peers.
    pub lost_k2: ConfidenceInterval,
    /// Availability with k = 1.
    pub availability_k1: ConfidenceInterval,
    /// Availability with k = 2.
    pub availability_k2: ConfidenceInterval,
    /// Worst storm-window reachable fraction with k = 1.
    pub min_reachable_k1: ConfidenceInterval,
    /// Worst storm-window reachable fraction with k = 2.
    pub min_reachable_k2: ConfidenceInterval,
    /// The full comparisons, ordered by trial index.
    pub per_trial: Vec<CrashStormComparison>,
}

/// Runs sharded [`crash_storm`] trials (each trial's fault stream is
/// seeded from its own trial seed) under `opts.repair`.
pub fn crash_storm_trials(
    config: &Config,
    duration_secs: f64,
    opts: &SimTrialOptions,
) -> CrashStormTrialSummary {
    let opts = SimTrialOptions {
        kind: "crash-storm",
        ..*opts
    };
    let per_trial = run_sim_trials(&opts, |seed, _| {
        crash_storm(config, duration_secs, seed, seed, opts.repair)
    });
    CrashStormTrialSummary {
        lost_k1: ci_of(per_trial.iter().map(|c| c.k1.queries_lost as f64)),
        lost_k2: ci_of(per_trial.iter().map(|c| c.k2.queries_lost as f64)),
        availability_k1: ci_of(per_trial.iter().map(|c| c.k1.availability)),
        availability_k2: ci_of(per_trial.iter().map(|c| c.k2.availability)),
        min_reachable_k1: ci_of(per_trial.iter().map(|c| c.k1.min_reachable_since_storm)),
        min_reachable_k2: ci_of(per_trial.iter().map(|c| c.k2.min_reachable_since_storm)),
        per_trial,
    }
}

/// Mean ± 95% CI over sharded [`routing`] trials.
#[derive(Debug, Clone)]
pub struct RoutingTrialSummary {
    /// Results per query under full flooding.
    pub results_flood: ConfidenceInterval,
    /// Results per query under bounded fanout.
    pub results_subset: ConfidenceInterval,
    /// Mean super-peer total bandwidth under full flooding (bps).
    pub sp_bw_flood: ConfidenceInterval,
    /// Mean super-peer total bandwidth under bounded fanout (bps).
    pub sp_bw_subset: ConfidenceInterval,
    /// The full comparisons, ordered by trial index.
    pub per_trial: Vec<RoutingComparison>,
}

/// Runs sharded [`routing`] trials.
pub fn routing_trials(
    config: &Config,
    fanout: usize,
    duration_secs: f64,
    opts: &SimTrialOptions,
) -> RoutingTrialSummary {
    let opts = SimTrialOptions {
        kind: "routing",
        ..*opts
    };
    let per_trial = run_sim_trials(&opts, |seed, _| {
        routing(config, fanout, duration_secs, seed)
    });
    RoutingTrialSummary {
        results_flood: ci_of(per_trial.iter().map(|c| c.results_flood)),
        results_subset: ci_of(per_trial.iter().map(|c| c.results_subset)),
        sp_bw_flood: ci_of(per_trial.iter().map(|c| c.sp_bw_flood)),
        sp_bw_subset: ci_of(per_trial.iter().map(|c| c.sp_bw_subset)),
        per_trial,
    }
}

/// Mean ± 95% CI over sharded [`adaptive`] trials.
#[derive(Debug, Clone)]
pub struct AdaptiveTrialSummary {
    /// Local-rule actions applied per trial.
    pub adapt_actions: ConfidenceInterval,
    /// Client availability in [0, 1].
    pub availability: ConfidenceInterval,
    /// The full reports, ordered by trial index.
    pub per_trial: Vec<SimReport>,
}

/// Runs sharded [`adaptive`] trials.
pub fn adaptive_trials(
    config: &Config,
    duration_secs: f64,
    adapt: AdaptOptions,
    opts: &SimTrialOptions,
) -> AdaptiveTrialSummary {
    let opts = SimTrialOptions {
        kind: "adaptive",
        ..*opts
    };
    let per_trial = run_sim_trials(&opts, |seed, _| {
        adaptive(config, duration_secs, seed, adapt)
    });
    AdaptiveTrialSummary {
        adapt_actions: ci_of(per_trial.iter().map(|r| r.adapt_actions as f64)),
        availability: ci_of(per_trial.iter().map(|r| r.availability)),
        per_trial,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_model::population::PopulationModel;

    fn churny_config() -> Config {
        Config {
            graph_size: 120,
            cluster_size: 12,
            population: PopulationModel {
                lifespan_mean_secs: 400.0,
                ..Default::default()
            },
            ..Config::default()
        }
    }

    #[test]
    fn steady_state_produces_traffic() {
        let r = steady_state(
            &Config {
                graph_size: 100,
                cluster_size: 10,
                ..Config::default()
            },
            600.0,
            1,
        );
        assert!(r.queries > 100);
        assert!(r.sp_load.proc > r.client_load.proc);
        assert!(r.results_per_query > 0.0);
    }

    #[test]
    fn reliability_favors_redundancy() {
        let c = reliability(&churny_config(), 2400.0, 7);
        assert!(
            c.availability_k2 > c.availability_k1,
            "k2 {} vs k1 {}",
            c.availability_k2,
            c.availability_k1
        );
        assert!(c.failures_k2 < c.failures_k1);
    }

    #[test]
    fn bounded_fanout_trades_results_for_load() {
        let cfg = Config {
            graph_size: 300,
            cluster_size: 10,
            avg_outdegree: 8.0,
            ttl: 4,
            ..Config::default()
        };
        let c = routing(&cfg, 2, 900.0, 9);
        assert!(
            c.sp_bw_subset < c.sp_bw_flood,
            "subset bw {} !< flood {}",
            c.sp_bw_subset,
            c.sp_bw_flood
        );
        assert!(
            c.results_subset < c.results_flood,
            "subset results {} !< flood {}",
            c.results_subset,
            c.results_flood
        );
        assert!(c.results_subset > 0.0);
    }

    #[test]
    fn sim_trials_are_ordered_and_thread_invariant() {
        let base = SimTrialOptions {
            trials: 5,
            seed: 42,
            threads: 1,
            repair: RepairPolicy::Off,
            ..Default::default()
        };
        let a = run_sim_trials(&base, |seed, t| (t, seed));
        for (i, &(t, _)) in a.iter().enumerate() {
            assert_eq!(i, t, "results must come back in trial order");
        }
        let seeds: std::collections::BTreeSet<u64> = a.iter().map(|&(_, s)| s).collect();
        assert_eq!(seeds.len(), base.trials, "per-trial seeds must be distinct");
        for threads in [2, 8] {
            let b = run_sim_trials(&SimTrialOptions { threads, ..base }, |seed, t| (t, seed));
            assert_eq!(a, b, "thread count changed trial results");
        }
    }

    #[test]
    fn steady_trials_reduce_with_cis_and_shard_deterministically() {
        let cfg = Config {
            graph_size: 60,
            cluster_size: 10,
            ..Config::default()
        };
        let opts = SimTrialOptions {
            trials: 3,
            seed: 5,
            threads: 2,
            repair: RepairPolicy::Off,
            kind: "sim",
        };
        let s = steady_trials(&cfg, 300.0, &opts);
        assert_eq!(s.per_trial.len(), 3);
        assert_eq!(s.availability.count, 3);
        assert!(s.sp_total_bw.mean > 0.0);
        let s1 = steady_trials(&cfg, 300.0, &SimTrialOptions { threads: 1, ..opts });
        assert_eq!(
            s.per_trial, s1.per_trial,
            "sharded trials must be bitwise identical at any thread count"
        );
    }

    #[test]
    fn crash_storm_redundancy_cuts_losses() {
        let c = crash_storm(&churny_config(), 2400.0, 7, 7, RepairPolicy::Off);
        assert!(
            c.k1.queries_lost > 0,
            "the storm must actually lose queries"
        );
        assert!(
            c.k2.queries_lost < c.k1.queries_lost,
            "k2 lost {} !< k1 lost {}",
            c.k2.queries_lost,
            c.k1.queries_lost
        );
        assert!(c.k2.recovered_failover > 0, "k2 must exercise failover");
        assert_eq!(c.k1.recovered_failover, 0, "k1 has no failover partner");
        assert!(c.k1.injected_crash > 0 && c.k2.injected_crash > 0);
    }

    #[test]
    #[should_panic(expected = "trial 1 (scenario steady-state, seed ")]
    fn sim_trial_panics_carry_trial_seed_and_kind() {
        run_sim_trials(
            &SimTrialOptions {
                trials: 3,
                seed: 42,
                threads: 2,
                repair: RepairPolicy::Off,
                kind: "steady-state",
            },
            |_, t| {
                if t == 1 {
                    panic!("boom");
                }
                t
            },
        );
    }

    #[test]
    #[should_panic(expected = ", repair promote+partner) panicked: boom")]
    fn sim_trial_panics_carry_repair_policy() {
        run_sim_trials(
            &SimTrialOptions {
                trials: 3,
                seed: 42,
                threads: 2,
                repair: RepairPolicy::PromotePartner,
                ..Default::default()
            },
            |_, t| {
                if t == 1 {
                    panic!("boom");
                }
                t
            },
        );
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_sim_trials_panics() {
        run_sim_trials(
            &SimTrialOptions {
                trials: 0,
                ..Default::default()
            },
            |seed, _| seed,
        );
    }

    #[test]
    fn adaptive_reduces_overload_pressure() {
        // A deliberately over-clustered start (few, large clusters) with
        // a tight limit: the rules should split clusters / promote
        // partners, changing the cluster count over time.
        let cfg = Config {
            graph_size: 150,
            cluster_size: 50,
            ..Config::default()
        };
        let r = adaptive(
            &cfg,
            2400.0,
            3,
            AdaptOptions {
                interval_secs: 120.0,
                limit: Load {
                    in_bw: 2e5,
                    out_bw: 2e5,
                    proc: 2e7,
                },
            },
        );
        assert!(r.adapt_actions > 0);
        assert!(!r.timeline.is_empty());
    }
}
